"""Persistence of uncertain tables: CSV (tuples + rules files) and JSON.

* :mod:`~repro.io.csvio` — two-file layout mirroring how uncertain-data
  sets are usually shipped: a tuples CSV (id, score, probability, extra
  attribute columns) and a rules CSV (rule id, member list).
* :mod:`~repro.io.jsonio` — a single self-contained JSON document, handy
  for fixtures and experiment snapshots.

Both round-trip exactly: ``read(write(table)) == table`` in tuples,
probabilities, attributes and rules.
"""

from repro.io.csvio import read_table_csv, write_table_csv
from repro.io.jsonio import read_table_json, table_to_dict, write_table_json

__all__ = [
    "read_table_csv",
    "read_table_json",
    "table_to_dict",
    "write_table_csv",
    "write_table_json",
]
