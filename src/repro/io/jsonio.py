"""JSON persistence: one self-contained document per uncertain table.

Schema::

    {
      "name": "...",
      "tuples": [
        {"tid": ..., "score": ..., "probability": ..., "attributes": {...}},
        ...
      ],
      "rules": [
        {"rule_id": ..., "members": [...]},
        ...
      ]
    }

Attribute values must be JSON-serialisable; tuple ids round-trip exactly
for JSON-native id types (strings, ints).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.exceptions import ValidationError
from repro.model.table import UncertainTable


def table_to_dict(table: UncertainTable) -> Dict[str, Any]:
    """The JSON-ready dictionary form of a table."""
    return {
        "name": table.name,
        "tuples": [
            {
                "tid": tup.tid,
                "score": float(tup.score),
                "probability": float(tup.probability),
                "attributes": dict(tup.attributes),
            }
            for tup in table
        ],
        "rules": [
            {"rule_id": rule.rule_id, "members": list(rule.tuple_ids)}
            for rule in table.multi_rules()
        ],
    }


def table_from_dict(document: Dict[str, Any]) -> UncertainTable:
    """Rebuild a table from :func:`table_to_dict` output.

    :raises ValidationError: when required keys are missing.
    """
    try:
        name = document.get("name", "uncertain_table")
        table = UncertainTable(name=name)
        for entry in document["tuples"]:
            table.add(
                entry["tid"],
                score=entry["score"],
                probability=entry["probability"],
                **entry.get("attributes", {}),
            )
        for entry in document.get("rules", []):
            table.add_exclusive(entry["rule_id"], *entry["members"])
    except KeyError as missing:
        raise ValidationError(f"table document missing key {missing}") from None
    table.validate()
    return table


def write_table_json(table: UncertainTable, path: Union[str, Path]) -> None:
    """Write the table as a JSON document (overwrites)."""
    with open(path, "w") as handle:
        json.dump(table_to_dict(table), handle, indent=2)


def read_table_json(path: Union[str, Path]) -> UncertainTable:
    """Read a table written by :func:`write_table_json`."""
    with open(path) as handle:
        document = json.load(handle)
    return table_from_dict(document)
