"""JSON persistence: one self-contained document per uncertain table.

Schema::

    {
      "name": "...",
      "tuples": [
        {"tid": ..., "score": ..., "probability": ..., "attributes": {...}},
        ...
      ],
      "rules": [
        {"rule_id": ..., "members": [...]},
        ...
      ]
    }

Attribute values must be JSON-serialisable.  Tuple ids round-trip
exactly for JSON-native id types (strings, ints) **and** for Python
tuples: JSON has no tuple type, so a tuple tid is written as an array
and converted back to a (possibly nested) tuple on read — an array can
never be a live tid anyway (lists are unhashable), so the conversion is
unambiguous.  Other non-native id types (e.g. ``frozenset``) are not
supported by this format.

Documents are validated on read: a duplicate tuple id or a rule member
referencing an unknown tuple id raises a
:class:`~repro.exceptions.ValidationError` naming the offending id, so
a corrupt document fails loudly instead of building a skewed table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.exceptions import ValidationError
from repro.model.table import UncertainTable


def table_to_dict(table: UncertainTable) -> Dict[str, Any]:
    """The JSON-ready dictionary form of a table."""
    return {
        "name": table.name,
        "tuples": [
            {
                "tid": tup.tid,
                "score": float(tup.score),
                "probability": float(tup.probability),
                "attributes": dict(tup.attributes),
            }
            for tup in table
        ],
        "rules": [
            {"rule_id": rule.rule_id, "members": list(rule.tuple_ids)}
            for rule in table.multi_rules()
        ],
    }


def _revive_tid(tid: Any) -> Any:
    """Map a JSON-decoded tid back to its Python form.

    Tuple tids serialise as arrays; arrays therefore decode back to
    tuples (recursively).  Everything else passes through.
    """
    if isinstance(tid, list):
        return tuple(_revive_tid(item) for item in tid)
    return tid


def table_from_dict(document: Dict[str, Any]) -> UncertainTable:
    """Rebuild a table from :func:`table_to_dict` output.

    :raises ValidationError: when required keys are missing, a tuple id
        appears twice, or a rule references an id that is not in the
        document (the error names the offending id).
    """
    try:
        name = document.get("name", "uncertain_table")
        table = UncertainTable(name=name)
        seen: set = set()
        for entry in document["tuples"]:
            tid = _revive_tid(entry["tid"])
            if tid in seen:
                raise ValidationError(
                    f"table document {name!r} contains duplicate "
                    f"tuple id {tid!r}"
                )
            seen.add(tid)
            table.add(
                tid,
                score=entry["score"],
                probability=entry["probability"],
                **entry.get("attributes", {}),
            )
        for entry in document.get("rules", []):
            members = [_revive_tid(member) for member in entry["members"]]
            for member in members:
                if member not in seen:
                    raise ValidationError(
                        f"rule {entry['rule_id']!r} references unknown "
                        f"tuple id {member!r}"
                    )
            table.add_exclusive(_revive_tid(entry["rule_id"]), *members)
    except KeyError as missing:
        raise ValidationError(f"table document missing key {missing}") from None
    table.validate()
    return table


def write_table_json(table: UncertainTable, path: Union[str, Path]) -> None:
    """Write the table as a JSON document (overwrites)."""
    with open(path, "w") as handle:
        json.dump(table_to_dict(table), handle, indent=2)


def read_table_json(path: Union[str, Path]) -> UncertainTable:
    """Read a table written by :func:`write_table_json`."""
    with open(path) as handle:
        document = json.load(handle)
    return table_from_dict(document)
