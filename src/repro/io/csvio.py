"""CSV persistence: a tuples file plus a rules file.

Layout:

* ``<stem>.tuples.csv`` — header ``tid,score,probability,<attr>...``;
  attribute columns are the union of attribute keys over all tuples
  (missing values are empty cells and are dropped on read).
* ``<stem>.rules.csv`` — header ``rule_id,members``; members are
  ``|``-separated tuple ids.

Tuple ids are written as strings; tables whose ids are not strings will
round-trip with stringified ids, which is the usual expectation for CSV.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

from repro.exceptions import ValidationError
from repro.model.table import UncertainTable

_MEMBER_SEPARATOR = "|"


def _paths(stem: Union[str, Path]) -> tuple:
    stem = Path(stem)
    return (
        stem.with_suffix(".tuples.csv"),
        stem.with_suffix(".rules.csv"),
    )


def write_table_csv(table: UncertainTable, stem: Union[str, Path]) -> None:
    """Write ``table`` to ``<stem>.tuples.csv`` and ``<stem>.rules.csv``.

    Existing files are overwritten.
    """
    tuples_path, rules_path = _paths(stem)
    attribute_keys: List[str] = []
    seen = set()
    for tup in table:
        for key in tup.attributes:
            if key not in seen:
                seen.add(key)
                attribute_keys.append(key)
    reserved = {"tid", "score", "probability"}
    clash = reserved & set(attribute_keys)
    if clash:
        raise ValidationError(
            f"attribute names clash with reserved CSV columns: {sorted(clash)}"
        )

    with open(tuples_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["tid", "score", "probability", *attribute_keys])
        for tup in table:
            row = [str(tup.tid), repr(float(tup.score)), repr(float(tup.probability))]
            for key in attribute_keys:
                value = tup.attributes.get(key, "")
                row.append("" if value == "" else str(value))
            writer.writerow(row)

    with open(rules_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["rule_id", "members"])
        for rule in table.multi_rules():
            writer.writerow(
                [
                    str(rule.rule_id),
                    _MEMBER_SEPARATOR.join(str(tid) for tid in rule.tuple_ids),
                ]
            )


def read_table_csv(
    stem: Union[str, Path], name: str = "uncertain_table"
) -> UncertainTable:
    """Read a table written by :func:`write_table_csv`.

    The rules file is optional: a missing ``<stem>.rules.csv`` yields an
    all-independent table.
    """
    tuples_path, rules_path = _paths(stem)
    table = UncertainTable(name=name)
    with open(tuples_path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValidationError(f"{tuples_path} is empty")
        for row in reader:
            attributes = {
                key: value
                for key, value in row.items()
                if key not in ("tid", "score", "probability") and value != ""
            }
            table.add(
                row["tid"],
                score=float(row["score"]),
                probability=float(row["probability"]),
                **attributes,
            )
    if rules_path.exists():
        with open(rules_path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                members = row["members"].split(_MEMBER_SEPARATOR)
                table.add_exclusive(row["rule_id"], *members)
    table.validate()
    return table
