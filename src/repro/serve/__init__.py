"""repro.serve — the network-facing query serving layer.

An asyncio HTTP/1.1 service (stdlib only) hosting an
:class:`~repro.query.engine.UncertainDB`:

* :mod:`~repro.serve.server` — :class:`ServeApp` (routing, batch
  execution, deadline-aware exact-vs-sampled degradation) and the TCP
  front-end; ``repro serve`` on the CLI.
* :mod:`~repro.serve.coalescer` — per-table micro-batching so one warm
  :class:`~repro.query.prepare.PreparedRanking` serves a whole burst of
  concurrent requests.
* :mod:`~repro.serve.scheduler` — cost-based batch scheduling: exact
  work cheapest-first, pre-execution deadline re-checks, budgeted
  resumable scans (``--scheduler fifo|cost``).
* :mod:`~repro.serve.admission` — bounded queue, ``max_inflight``, 429
  rejection with ``Retry-After``.
* :mod:`~repro.serve.protocol` — JSON request/response schema and the
  service error types.
* :mod:`~repro.serve.client` — blocking :class:`ServeClient` over TCP or
  the hermetic in-process :class:`LoopbackTransport`.

With a replication role attached (``ServeApp(db, replication=...)``)
the app additionally serves ``/replicate/wal|bootstrap|status`` and
``POST /mutate`` on primaries, and stamps staleness (enforcing
``max_staleness_s``) on replicas — see :mod:`repro.replication` and
``docs/replication.md``.

See ``docs/serving.md`` for endpoints and the degradation policy.
"""

from repro.serve.admission import AdmissionController
from repro.serve.client import (
    HTTPTransport,
    LoopbackTransport,
    ServeClient,
    ServeClientError,
)
from repro.serve.coalescer import RequestCoalescer
from repro.serve.scheduler import (
    CostScheduler,
    ExactTask,
    FifoScheduler,
    make_scheduler,
)
from repro.serve.protocol import (
    DeadlineExceededError,
    MutationRequest,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    RejectedError,
    StaleReadError,
)
from repro.serve.server import ServeApp, ServeConfig, run, serve

__all__ = [
    "AdmissionController",
    "CostScheduler",
    "DeadlineExceededError",
    "ExactTask",
    "FifoScheduler",
    "HTTPTransport",
    "LoopbackTransport",
    "MutationRequest",
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "RejectedError",
    "RequestCoalescer",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "StaleReadError",
    "make_scheduler",
    "run",
    "serve",
]
