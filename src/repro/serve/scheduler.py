"""Cost-based batch scheduling: cheapest-first exact dispatch.

The coalescer hands ``_run_batch`` a micro-batch whose exact work used
to execute in arrival order with deadlines checked once, at batch
start — a request whose deadline expired *while earlier items ran*
still burned a full exact scan.  The scheduler closes that hole with
the litmus discipline (sort by cost, propagate timeouts to costlier
queries, re-execute interrupted work incrementally):

1. **Order.**  After the planner prices every item
   (:class:`~repro.query.planner.LatencyEstimate`), exact work runs
   cheapest-first by ``exact_seconds``.  Cheap, tight-deadline queries
   no longer queue behind one expensive scan; under a convex cost
   distribution this is the SJF ordering that minimises mean wait.
2. **Re-decide.**  Immediately before each item executes, its
   *remaining* deadline is re-read against the scheduler's running
   clock and the item's own estimate.  An item that can no longer fit
   degrades to the sampler (with a
   :meth:`~repro.core.sampling.SamplingConfig.for_deadline` budget)
   *before* the exact scan starts — counted by
   ``repro_serve_degraded_preexec_total`` — and an item whose deadline
   already passed fails fast (``repro_serve_deadline_expired_total``,
   stage ``pre-exec``).
3. **Budget.**  Exact scans run under a wall-clock budget
   (:func:`~repro.core.exact.exact_ptk_query` ``deadline_seconds``), so
   a mispriced scan is cut off at its deadline instead of blowing it:
   the client gets a partial answer and the server keeps a
   :class:`~repro.core.exact.ScanCheckpoint` to resume on retry.

:class:`FifoScheduler` preserves the historical deadline-blind
behaviour — arrival order, no re-check, no budget — both as an escape
hatch (``repro serve --scheduler fifo``) and as the baseline the
``bench_serve`` skewed-cost closed loop measures against.

Decisions are plain strings so the serving layer can stamp them
verbatim into flight-recorder profiles and response ``scheduler``
blocks: ``"run"``, ``"degrade"``, or ``"expired"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.query.planner import LatencyEstimate

#: Scheduler policies selectable via ``ServeConfig.scheduler`` / the
#: ``repro serve --scheduler`` flag.
SCHEDULERS = ("fifo", "cost")


@dataclass(frozen=True)
class ExactTask:
    """One batch item planned for the exact engine, awaiting dispatch.

    :param position: index of the item in the original batch (arrival
        order; responses are keyed by it).
    :param estimate: the planner's latency estimate for the item.
    """

    position: int
    estimate: LatencyEstimate


class FifoScheduler:
    """Arrival-order dispatch, deadlines checked only at batch start.

    This is the pre-scheduler behaviour, kept bit-for-bit: no
    reordering, every planned item runs unbudgeted even if its deadline
    has since expired.  It exists as the benchmark baseline and as an
    operational escape hatch.
    """

    name = "fifo"

    def order(self, tasks: Sequence[ExactTask]) -> List[ExactTask]:
        """Arrival order, unchanged."""
        return list(tasks)

    def decide(
        self, remaining: Optional[float], estimated_seconds: float,
        safety: float, can_degrade: bool = True,
    ) -> str:
        """Always ``"run"`` — FIFO never re-checks deadlines."""
        return "run"

    def budget(
        self, remaining: Optional[float], safety: float
    ) -> Optional[float]:
        """No budget: FIFO scans run to their natural stop."""
        return None


class CostScheduler:
    """Cheapest-first dispatch with pre-execution deadline re-checks.

    Ordering is by the planner's ``exact_seconds`` (ties broken by
    arrival order, so equal-cost items keep FIFO fairness).  Before an
    item runs, :meth:`decide` re-prices it against the time actually
    left; :meth:`budget` clips the exact scan itself so even a
    mispredicted run cannot execute past its deadline.
    """

    name = "cost"

    def order(self, tasks: Sequence[ExactTask]) -> List[ExactTask]:
        """Cheapest predicted exact scan first; arrival order on ties."""
        return sorted(
            tasks, key=lambda t: (t.estimate.exact_seconds, t.position)
        )

    def decide(
        self, remaining: Optional[float], estimated_seconds: float,
        safety: float, can_degrade: bool = True,
    ) -> str:
        """Re-check one item against its remaining deadline.

        :param remaining: seconds until the item's deadline (``None``
            when it has no deadline).
        :param estimated_seconds: predicted cost of the work left for
            this item — the full scan, or the remainder after a
            checkpoint.
        :param safety: fraction of the remaining deadline the estimate
            must fit within (``ServeConfig.deadline_safety``).
        :param can_degrade: False for forced-``exact`` requests, whose
            contract forbids silently answering with the sampler; they
            run budgeted instead (a miss yields a partial answer, not a
            mode switch).
        :returns: ``"run"``, ``"degrade"``, or ``"expired"``.
        """
        if remaining is None:
            return "run"
        if remaining <= 0:
            return "expired"
        if can_degrade and estimated_seconds > remaining * safety:
            return "degrade"
        return "run"

    def budget(
        self, remaining: Optional[float], safety: float
    ) -> Optional[float]:
        """Wall-clock budget for an exact scan about to run.

        The same safety fraction used for the degrade decision: the
        slack absorbs estimation error and response serialisation, and
        guarantees the scan is cut off *before* the deadline itself.
        """
        if remaining is None:
            return None
        return max(remaining, 0.0) * safety


def make_scheduler(name: str):
    """Resolve a scheduler policy by name (``fifo`` or ``cost``)."""
    if name == "fifo":
        return FifoScheduler()
    if name == "cost":
        return CostScheduler()
    raise ValueError(
        f"unknown scheduler {name!r}; expected one of {list(SCHEDULERS)}"
    )
