"""Admission control: bounded concurrency with honest backpressure.

A serving process protecting a CPU-bound engine has exactly two levers:
how many queries execute at once (``max_inflight`` — beyond the core
count, extra concurrency only adds context switching) and how many may
wait (``max_queue`` — beyond a few service times of work, waiting
requests are doomed to miss their deadlines anyway, so accepting them
just converts future 504s into wasted work).  Everything over those
bounds is rejected *immediately* with a 429 and a ``Retry-After`` hint
derived from the observed service rate — fail fast, keep the queue
short, let the client back off.

:class:`AdmissionController` implements the counters.  It is intended
to be driven from a single asyncio event loop (the server), so methods
do plain arithmetic; the executing-side concurrency limit itself is an
``asyncio.Semaphore`` owned by the server.
"""

from __future__ import annotations

from repro.obs import OBS, catalogued
from repro.serve.protocol import RejectedError

#: Fallback mean service time (seconds) before any query has finished.
_PRIOR_SERVICE_SECONDS = 0.05

#: Per-request EWMA weight of the mean-service-time estimate.
_SERVICE_ALPHA = 0.2


class AdmissionController:
    """Counts admitted work and rejects beyond the configured bounds.

    :param max_inflight: queries allowed to execute concurrently.
    :param max_queue: queries allowed to wait (coalescing window plus
        executor backlog) on top of the inflight ones.

    A request's lifecycle: :meth:`admit` on arrival (may raise
    :class:`RejectedError`), :meth:`release` exactly once when its
    response (or error) is ready.  :meth:`observe_service` feeds
    measured batch service times back into the ``Retry-After`` estimate.
    """

    def __init__(self, max_inflight: int = 4, max_queue: int = 64) -> None:
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._pending = 0
        self._mean_service_seconds = _PRIOR_SERVICE_SECONDS
        self._admitted_total = 0
        self._rejected_total = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests admitted and not yet released (queued + executing)."""
        return self._pending

    @property
    def capacity(self) -> int:
        """Total requests the controller will hold at once."""
        return self.max_inflight + self.max_queue

    def admit(self) -> None:
        """Account one arriving request.

        :raises RejectedError: when the service is at capacity; carries
            a ``retry_after`` estimate of when a slot should free up.
        """
        if self._pending >= self.capacity:
            self._rejected_total += 1
            retry_after = self.retry_after_seconds()
            if OBS.enabled:
                catalogued("repro_serve_rejections_total").inc(
                    reason="queue-full"
                )
            raise RejectedError(
                f"service at capacity ({self._pending} pending, "
                f"limit {self.capacity}); retry after "
                f"{retry_after:.2f}s",
                retry_after=retry_after,
            )
        self._pending += 1
        self._admitted_total += 1
        if OBS.enabled:
            catalogued("repro_serve_queue_depth").set(self._pending)

    def release(self) -> None:
        """Account one finished (answered or failed) request."""
        self._pending = max(0, self._pending - 1)
        if OBS.enabled:
            catalogued("repro_serve_queue_depth").set(self._pending)

    # ------------------------------------------------------------------
    def observe_service(self, seconds: float, requests: int = 1) -> None:
        """Fold a measured batch service time into the rate estimate.

        A batch of ``m`` requests carries ``m`` samples of the same
        per-request time, so it compounds the per-request EWMA ``m``
        times: the effective weight is ``1 - (1 - alpha)^m``.  (A fixed
        weight regardless of ``m`` made the estimate — and every
        ``Retry-After`` hint derived from it — track the batch *count*
        rather than the traffic actually served.)
        """
        if requests <= 0 or seconds < 0:
            return
        per_request = seconds / requests
        weight = 1.0 - (1.0 - _SERVICE_ALPHA) ** requests
        self._mean_service_seconds += weight * (
            per_request - self._mean_service_seconds
        )

    def retry_after_seconds(self) -> float:
        """Predicted wait until a rejected client is worth retrying.

        The backlog drains at ``max_inflight`` requests per mean service
        time; a full queue therefore clears in ``pending / max_inflight``
        service times.  Clamped to [0.05s, 30s] so the hint is always
        actionable.
        """
        drain = (
            self._pending / self.max_inflight
        ) * self._mean_service_seconds
        return min(max(drain, 0.05), 30.0)

    def stats(self) -> dict:
        """Point-in-time counters (exposed via ``/healthz``)."""
        return {
            "pending": self._pending,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "admitted_total": self._admitted_total,
            "rejected_total": self._rejected_total,
            "mean_service_ms": round(self._mean_service_seconds * 1000, 3),
        }
