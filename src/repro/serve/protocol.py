"""Wire protocol of the serving layer: request/response bodies.

Everything crossing the service boundary is JSON.  A query request::

    {"table": "sightings", "k": 5, "threshold": 0.5,
     "mode": "auto", "deadline_ms": 250}

and the corresponding response::

    {"table": "sightings", "k": 5, "threshold": 0.5,
     "mode": "exact",            # or "sampled" when degraded/forced
     "degraded": false,
     "answers": ["t3", "t7"],
     "probabilities": {"t3": 0.81, "t7": 0.64},
     "intervals": {"t3": [0.78, 0.84]},   # sampled responses only
     "batch_size": 4,            # requests coalesced into the dispatch
     "elapsed_ms": 1.9,
     "units_drawn": 1800,        # sampled responses only
     "partial": true,            # only when a deadline cut the scan
     "scheduler": {"policy": "cost", "queue_position": 0,
                   "estimated_seconds": 0.004, "decision": "run"}}

Tuple ids are stringified in JSON object keys (JSON objects cannot key
on non-strings); the ``answers`` array keeps the original id values when
they are JSON-native.

:class:`QueryRequest` validates untrusted payloads and raises
:class:`ProtocolError` (HTTP 400) naming the offending field; the
server never lets a malformed request reach the query engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ReproError

#: Query modes a client may request.  ``auto`` lets the server pick:
#: exact when the planner predicts the deadline is met, else sampled.
MODES = ("auto", "exact", "sampled")


class ProtocolError(ReproError):
    """A request body violates the wire protocol (HTTP 400)."""


class RejectedError(ReproError):
    """Admission control refused the request (HTTP 429).

    :param retry_after: seconds the client should wait before retrying.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ReproError):
    """The request's deadline expired before an answer was ready (504)."""


class StaleReadError(ReproError):
    """A replica's staleness exceeds the request's bound (HTTP 503).

    Raised only on replicas, for requests carrying ``max_staleness_s``,
    when the replica cannot prove it was caught up with the primary
    recently enough.  The response carries ``Retry-After`` sized to the
    follower's poll interval — by then the replica has either caught up
    or learned its new lag.

    :param staleness: the replica's staleness block at rejection time.
    :param retry_after: seconds the client should wait before retrying.
    """

    def __init__(
        self,
        message: str,
        staleness: Optional[Dict[str, Any]] = None,
        retry_after: float = 0.5,
    ) -> None:
        super().__init__(message)
        self.staleness = staleness or {}
        self.retry_after = retry_after


def _require(payload: Mapping[str, Any], key: str) -> Any:
    try:
        return payload[key]
    except KeyError:
        raise ProtocolError(f"query request is missing {key!r}") from None


@dataclass(frozen=True)
class QueryRequest:
    """One validated PT-k query request.

    :param table: registered table name.
    :param k: top-k size, positive.
    :param threshold: PT-k probability threshold in (0, 1].
    :param mode: ``auto`` (server decides), ``exact``, or ``sampled``.
    :param deadline_ms: wall-clock budget for this request; ``None``
        means the server's default (possibly unbounded).
    :param sample_budget: explicit unit budget for ``mode=sampled``;
        ignored in other modes (``auto`` sizes the budget from the
        remaining deadline when it degrades).
    :param confidence: confidence level of the Wilson intervals stamped
        on sampled responses.
    :param max_staleness_s: bounded-staleness read guard, meaningful on
        replicas: reject with 503 instead of answering from state whose
        staleness bound exceeds this many seconds.  A primary always
        satisfies any bound (its data is never stale).
    """

    table: str
    k: int
    threshold: float
    mode: str = "auto"
    deadline_ms: Optional[float] = None
    sample_budget: Optional[int] = None
    confidence: float = 0.95
    max_staleness_s: Optional[float] = None

    @classmethod
    def from_dict(cls, payload: Any) -> "QueryRequest":
        """Validate an untrusted JSON payload into a request.

        :raises ProtocolError: naming the first offending field.
        """
        if not isinstance(payload, Mapping):
            raise ProtocolError(
                f"query request must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        table = _require(payload, "table")
        if not isinstance(table, str) or not table:
            raise ProtocolError(f"table must be a non-empty string, got {table!r}")
        k = _require(payload, "k")
        if isinstance(k, bool) or not isinstance(k, int) or k <= 0:
            raise ProtocolError(f"k must be a positive integer, got {k!r}")
        threshold = _require(payload, "threshold")
        if (
            isinstance(threshold, bool)
            or not isinstance(threshold, (int, float))
            or not (0.0 < float(threshold) <= 1.0)
        ):
            raise ProtocolError(
                f"threshold must be a number in (0, 1], got {threshold!r}"
            )
        mode = payload.get("mode", "auto")
        if mode not in MODES:
            raise ProtocolError(
                f"mode must be one of {list(MODES)}, got {mode!r}"
            )
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or float(deadline_ms) <= 0
            ):
                raise ProtocolError(
                    f"deadline_ms must be a positive number, got {deadline_ms!r}"
                )
            deadline_ms = float(deadline_ms)
        sample_budget = payload.get("sample_budget")
        if sample_budget is not None:
            if (
                isinstance(sample_budget, bool)
                or not isinstance(sample_budget, int)
                or sample_budget <= 0
            ):
                raise ProtocolError(
                    f"sample_budget must be a positive integer, "
                    f"got {sample_budget!r}"
                )
        confidence = payload.get("confidence", 0.95)
        if (
            isinstance(confidence, bool)
            or not isinstance(confidence, (int, float))
            or not (0.0 < float(confidence) < 1.0)
        ):
            raise ProtocolError(
                f"confidence must be a number in (0, 1), got {confidence!r}"
            )
        max_staleness_s = payload.get("max_staleness_s")
        if max_staleness_s is not None:
            if (
                isinstance(max_staleness_s, bool)
                or not isinstance(max_staleness_s, (int, float))
                or float(max_staleness_s) < 0
            ):
                raise ProtocolError(
                    f"max_staleness_s must be a non-negative number, "
                    f"got {max_staleness_s!r}"
                )
            max_staleness_s = float(max_staleness_s)
        unknown = set(payload) - {
            "table", "k", "threshold", "mode", "deadline_ms",
            "sample_budget", "confidence", "max_staleness_s",
        }
        if unknown:
            raise ProtocolError(
                f"unknown query request field(s): {sorted(unknown)}"
            )
        return cls(
            table=table,
            k=int(k),
            threshold=float(threshold),
            mode=mode,
            deadline_ms=deadline_ms,
            sample_budget=sample_budget,
            confidence=float(confidence),
            max_staleness_s=max_staleness_s,
        )


@dataclass
class QueryResponse:
    """One answered query, ready to serialise.

    ``mode`` is the algorithm that actually ran; ``degraded`` is True
    only when the client asked for ``auto``/``exact`` and the server
    fell back to sampling to meet the deadline.

    ``partial`` is True when an exact scan was cut off at its deadline
    budget: ``answers``/``probabilities`` cover only the scanned ranked
    prefix, and the server holds a checkpoint from which an identical
    retry resumes instead of restarting.  ``scheduler`` carries the
    batch scheduler's per-item trace (policy, queue position, estimate,
    decision) for requests that went through exact-work scheduling.
    """

    table: str
    k: int
    threshold: float
    mode: str
    degraded: bool = False
    answers: List[Any] = field(default_factory=list)
    probabilities: Dict[str, float] = field(default_factory=dict)
    intervals: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    batch_size: int = 1
    elapsed_ms: float = 0.0
    units_drawn: Optional[int] = None
    partial: bool = False
    scheduler: Optional[Dict[str, Any]] = None
    #: Replica responses only: the staleness block at answer time
    #: (cursor, caught_up, lag_records, lag_bytes, staleness_seconds).
    staleness: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "table": self.table,
            "k": self.k,
            "threshold": self.threshold,
            "mode": self.mode,
            "degraded": self.degraded,
            "answers": list(self.answers),
            "probabilities": dict(self.probabilities),
            "batch_size": self.batch_size,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }
        if self.mode == "sampled":
            body["intervals"] = {
                tid: [round(low, 6), round(high, 6)]
                for tid, (low, high) in self.intervals.items()
            }
            body["units_drawn"] = self.units_drawn
        if self.partial:
            body["partial"] = True
        if self.scheduler is not None:
            body["scheduler"] = dict(self.scheduler)
        if self.staleness is not None:
            body["staleness"] = dict(self.staleness)
        return body


#: Mutation operations ``POST /mutate`` accepts (any writable server).
MUTATION_OPS = ("add", "remove", "update", "score", "rule")


@dataclass(frozen=True)
class MutationRequest:
    """One validated write request (``POST /mutate``, not on replicas).

    Writes are accepted by any server that owns its state — a plain
    server or a replication primary (journalled, so replicas and the
    failover smoke test observe them flowing through the WAL stream).
    Replicas refuse: their state is the primary's.

    :param op: ``add`` / ``remove`` / ``update`` / ``score`` / ``rule``.
    :param table: registered table name.
    :param tid: tuple id (``add`` / ``remove`` / ``update`` / ``score``).
    :param score: ranking score (``add`` / ``score``).
    :param probability: membership probability (``add`` / ``update``).
    :param attributes: extra tuple attributes (``add``).
    :param rule_id: generation-rule id (``rule``).
    :param members: tuple ids of the exclusion rule (``rule``).
    """

    op: str
    table: str
    tid: Any = None
    score: Optional[float] = None
    probability: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    rule_id: Any = None
    members: Tuple[Any, ...] = ()

    @classmethod
    def from_dict(cls, payload: Any) -> "MutationRequest":
        """Validate an untrusted JSON payload into a mutation.

        :raises ProtocolError: naming the first offending field.
        """
        if not isinstance(payload, Mapping):
            raise ProtocolError(
                f"mutation request must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        op = _require(payload, "op")
        if op not in MUTATION_OPS:
            raise ProtocolError(
                f"op must be one of {list(MUTATION_OPS)}, got {op!r}"
            )
        table = _require(payload, "table")
        if not isinstance(table, str) or not table:
            raise ProtocolError(
                f"table must be a non-empty string, got {table!r}"
            )
        known = {"op", "table"}
        tid = score = probability = rule_id = None
        attributes: Dict[str, Any] = {}
        members: Tuple[Any, ...] = ()
        if op in ("add", "remove", "update", "score"):
            tid = _require(payload, "tid")
            known.add("tid")
        if op in ("add", "score"):
            score = _number(payload, "score")
            known.add("score")
        if op in ("add", "update"):
            probability = _number(payload, "probability")
            if not (0.0 < probability <= 1.0):
                raise ProtocolError(
                    f"probability must be in (0, 1], got {probability!r}"
                )
            known.add("probability")
        if op == "add":
            attributes = payload.get("attributes", {})
            if not isinstance(attributes, Mapping):
                raise ProtocolError(
                    f"attributes must be a JSON object, got {attributes!r}"
                )
            attributes = dict(attributes)
            known.add("attributes")
        if op == "rule":
            rule_id = _require(payload, "rule_id")
            raw_members = _require(payload, "members")
            if not isinstance(raw_members, (list, tuple)) or len(raw_members) < 2:
                raise ProtocolError(
                    f"members must be a list of >= 2 tuple ids, "
                    f"got {raw_members!r}"
                )
            members = tuple(raw_members)
            known.update(("rule_id", "members"))
        unknown = set(payload) - known
        if unknown:
            raise ProtocolError(
                f"unknown mutation request field(s) for op {op!r}: "
                f"{sorted(unknown)}"
            )
        return cls(
            op=op,
            table=table,
            tid=tid,
            score=score,
            probability=probability,
            attributes=attributes,
            rule_id=rule_id,
            members=members,
        )


def _number(payload: Mapping[str, Any], key: str) -> float:
    value = _require(payload, key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{key} must be a number, got {value!r}")
    return float(value)


def error_body(error: str, message: str, **extra: Any) -> Dict[str, Any]:
    """The uniform JSON error body: ``{"error", "message", ...}``."""
    body = {"error": error, "message": message}
    body.update(extra)
    return body
