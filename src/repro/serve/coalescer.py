"""Request coalescing: micro-batching concurrent same-table queries.

The expensive shared step of every PT-k query is preparation (selection
+ ranking + rule indexing); the per-request work on top of a warm
:class:`~repro.query.prepare.PreparedRanking` is small for practical k.
Under concurrent load the cheapest thing a server can do is therefore
*wait a moment*: hold the first request for a table for a short window
(default a few milliseconds), let concurrent requests for the same
table pile onto it, and dispatch the whole batch through the engine's
batch path so one prepared ranking — and one profile scan — serves all
of them.

:class:`RequestCoalescer` is the generic machinery: callers ``await
submit(key, item)``; items sharing a ``key`` within the window are
dispatched together via the supplied async ``dispatch(key, items)``
callable, which returns one result per item (an ``Exception`` instance
as a result rejects just that item).  A window of zero disables
coalescing — every request dispatches alone, which is also the honest
baseline configuration for the serving benchmarks.
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Any, Awaitable, Callable, Dict, Generic, List, TypeVar

K = TypeVar("K")
T = TypeVar("T")

#: ``dispatch(key, items) -> results`` contract; results align with items.
#: A dispatch callable that accepts a third parameter is additionally
#: handed a thread-safe ``complete(index, result)`` callback it may
#: invoke to resolve individual items *before* the batch returns — how
#: the cost scheduler gets cheap, tight-deadline responses out from
#: behind an expensive scan still running in the same batch.
DispatchFn = Callable[[Any, List[Any]], Awaitable[List[Any]]]


def _accepts_complete(dispatch: Callable) -> bool:
    """True when ``dispatch`` takes a per-item completion callback."""
    try:
        parameters = inspect.signature(dispatch).parameters.values()
    except (TypeError, ValueError):  # builtins, odd callables
        return False
    positional = [
        p for p in parameters
        if p.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
    ]
    return len(positional) >= 3 or any(
        p.kind is inspect.Parameter.VAR_POSITIONAL for p in parameters
    )


class _Batch:
    """One open batch: items plus the futures awaiting their results."""

    __slots__ = ("items", "futures", "closed")

    def __init__(self) -> None:
        self.items: List[Any] = []
        self.futures: List[asyncio.Future] = []
        self.closed = False


class RequestCoalescer:
    """Groups concurrent ``submit`` calls by key within a time window.

    :param dispatch: async callable answering a whole batch; must return
        exactly one result per item, in item order.  A result that is an
        ``Exception`` instance is raised to that item's submitter alone;
        a *raised* exception fails the whole batch.
    :param window_seconds: how long the first request of a batch waits
        for company.  ``0`` dispatches every item alone, immediately.
    :param max_batch: dispatch early once a batch reaches this size.
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        window_seconds: float = 0.002,
        max_batch: int = 64,
    ) -> None:
        if window_seconds < 0:
            raise ValueError(
                f"window_seconds must be >= 0, got {window_seconds}"
            )
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self._dispatch = dispatch
        self._wants_complete = _accepts_complete(dispatch)
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self._open: Dict[Any, _Batch] = {}
        self._batches_dispatched = 0
        self._items_dispatched = 0

    # ------------------------------------------------------------------
    async def submit(self, key: Any, item: Any) -> Any:
        """Join (or open) the batch for ``key``; resolves with the result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if self.window_seconds <= 0:
            await self._run_batch_now(key, [item], [future])
            return await future
        batch = self._open.get(key)
        if batch is None or batch.closed:
            batch = _Batch()
            self._open[key] = batch
            loop.create_task(self._close_after_window(key, batch))
        batch.items.append(item)
        batch.futures.append(future)
        if len(batch.items) >= self.max_batch:
            self._detach(key, batch)
            await self._run_batch_now(key, batch.items, batch.futures)
        return await future

    # ------------------------------------------------------------------
    async def _close_after_window(self, key: Any, batch: _Batch) -> None:
        await asyncio.sleep(self.window_seconds)
        if batch.closed:
            return  # already dispatched by the max_batch overflow path
        self._detach(key, batch)
        await self._run_batch_now(key, batch.items, batch.futures)

    def _detach(self, key: Any, batch: _Batch) -> None:
        batch.closed = True
        if self._open.get(key) is batch:
            del self._open[key]

    async def _run_batch_now(
        self, key: Any, items: List[Any], futures: List[asyncio.Future]
    ) -> None:
        self._batches_dispatched += 1
        self._items_dispatched += len(items)
        loop = asyncio.get_running_loop()

        def complete(index: int, result: Any) -> None:
            """Resolve one item early; callable from any thread."""

            def _set() -> None:
                future = futures[index]
                if future.done():
                    return
                if isinstance(result, Exception):
                    future.set_exception(result)
                else:
                    future.set_result(result)

            loop.call_soon_threadsafe(_set)

        try:
            if self._wants_complete:
                results = await self._dispatch(key, list(items), complete)
            else:
                results = await self._dispatch(key, list(items))
        except Exception as error:  # noqa: BLE001 - fan the failure out
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        if len(results) != len(items):
            error = RuntimeError(
                f"coalescer dispatch returned {len(results)} results "
                f"for {len(items)} items"
            )
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, result in zip(futures, results):
            if future.done():
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Batching effectiveness counters (exposed via ``/healthz``)."""
        batches = self._batches_dispatched
        return {
            "batches_dispatched": batches,
            "items_dispatched": self._items_dispatched,
            "mean_batch_size": (
                round(self._items_dispatched / batches, 3) if batches else 0.0
            ),
            "open_batches": len(self._open),
        }
