"""The PT-k query service: asyncio HTTP front-end over an UncertainDB.

Architecture (one process, one event loop, a small thread pool)::

    client -> HTTP/1.1 -> ServeApp.handle
                            |  parse + validate      (protocol)
                            |  admission control     (admission)
                            v
                      RequestCoalescer  -- per-table micro-batches
                            |
                            v  (thread pool, max_inflight wide)
                      _run_batch: one PrepareCache.get for the batch,
                      exact requests as pruned scans over the shared
                      preparation, degraded requests through the
                      sampler with a deadline-sized budget

The interesting decision is **deadline-aware degradation**: before
running the exact algorithm for a request carrying a deadline, the
planner's scan-depth estimate is converted to predicted seconds
(:func:`repro.query.planner.estimate_latency`, self-calibrating).  When
the prediction does not fit in the remaining budget, the request is
answered by the paper's sampling estimator instead, with a unit budget
sized from the time actually left
(:meth:`repro.core.sampling.SamplingConfig.for_deadline`) — a smaller,
honest answer with a Wilson confidence interval beats a timeout.  The
response carries ``mode: "exact" | "sampled"`` and ``degraded: true``
so clients can tell.

Endpoints: ``POST /query``, ``GET /healthz``, ``GET /tables``,
``GET /metrics`` (Prometheus text from :mod:`repro.obs`).

:class:`ServeApp` is transport-independent — tests and the loopback
client drive :meth:`ServeApp.dispatch` directly, no sockets involved;
:func:`serve` binds it to a real asyncio TCP server.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.core.exact import exact_ptk_query
from repro.core.results import PTKAnswer
from repro.core.sampling import SamplingConfig, sampled_ptk_query
from repro.exceptions import ReproError, UnknownTableError
from repro.model.statistics import TableStatistics, collect_statistics
from repro.obs import OBS, catalogued
from repro.obs import export as obs_export
from repro.query.engine import UncertainDB
from repro.query.planner import LatencyModel, estimate_latency
from repro.query.prepare import PreparedRanking
from repro.query.topk import TopKQuery
from repro.serve.admission import AdmissionController
from repro.serve.coalescer import RequestCoalescer
from repro.serve.protocol import (
    DeadlineExceededError,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    RejectedError,
    error_body,
)
from repro.stats.intervals import wilson_interval

_JSON = [("Content-Type", "application/json")]
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 504: "Gateway Timeout",
}


@dataclass
class ServeConfig:
    """Operational knobs of the serving layer.

    :param host: bind address of the TCP server.
    :param port: bind port; ``0`` picks an ephemeral one.
    :param window_ms: coalescing window — how long the first request for
        a table waits for concurrent company; ``0`` disables coalescing.
    :param max_batch: dispatch a batch early once it reaches this size.
    :param max_inflight: micro-batches executing concurrently (thread
        pool width).
    :param max_queue: requests allowed to wait beyond the inflight ones;
        arrivals past the bound are rejected with 429 + ``Retry-After``.
    :param default_deadline_ms: deadline applied to requests that do not
        carry one; ``None`` means such requests run unbounded.
    :param deadline_safety: fraction of the remaining deadline the
        planner's exact-latency prediction must fit within; the rest
        absorbs estimation error and response serialisation.
    :param min_sample_budget: floor on degraded sampling budgets.
    :param seed: seed for degraded sampling runs (deterministic tests).
    :param enable_obs: turn the observability layer on at startup so
        ``/metrics`` has content.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    window_ms: float = 2.0
    max_batch: int = 64
    max_inflight: int = 4
    max_queue: int = 64
    default_deadline_ms: Optional[float] = None
    deadline_safety: float = 0.5
    min_sample_budget: int = 100
    seed: Optional[int] = 7
    enable_obs: bool = True


@dataclass
class _Work:
    """One admitted query riding through the coalescer."""

    request: QueryRequest
    deadline: Optional[float]  # absolute time.monotonic() timestamp
    arrived: float


class ServeApp:
    """The transport-independent service: routing, batching, degradation.

    :param db: the engine to serve; tables are registered by the caller
        (the CLI loads a directory, tests register fixtures).
    :param config: operational knobs; defaults suit tests.
    :param latency_model: injectable cost model (tests pin coefficients
        to force or forbid degradation deterministically).
    """

    def __init__(
        self,
        db: UncertainDB,
        config: Optional[ServeConfig] = None,
        latency_model: Optional[LatencyModel] = None,
    ) -> None:
        self.db = db
        self.config = config or ServeConfig()
        self.latency_model = latency_model or LatencyModel()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
        )
        self.coalescer = RequestCoalescer(
            self._dispatch_batch,
            window_seconds=self.config.window_ms / 1000.0,
            max_batch=self.config.max_batch,
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._inflight: Optional[asyncio.Semaphore] = None
        self._stats_cache: Dict[int, Tuple[int, TableStatistics]] = {}
        self._started = time.monotonic()
        if self.config.enable_obs:
            obs.enable()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def startup(self) -> None:
        """Allocate the executor and concurrency gate (idempotent)."""
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.max_inflight,
                thread_name_prefix="repro-serve",
            )
        if self._inflight is None:
            self._inflight = asyncio.Semaphore(self.config.max_inflight)

    def shutdown(self) -> None:
        """Release the executor; in-flight batches finish first."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def dispatch(
        self, method: str, path: str, body: bytes = b""
    ) -> Tuple[int, List[Tuple[str, str]], bytes]:
        """Route one request; returns ``(status, headers, body)``.

        The single entry point shared by the TCP server and the
        loopback transport — everything a client can observe goes
        through here.
        """
        path = path.split("?", 1)[0]
        route = (method.upper(), path)
        if route == ("POST", "/query"):
            return await self._endpoint_query(body)
        if route == ("GET", "/healthz"):
            return self._endpoint_healthz()
        if route == ("GET", "/tables"):
            return self._endpoint_tables()
        if route == ("GET", "/metrics"):
            return self._endpoint_metrics()
        if path in ("/query", "/healthz", "/tables", "/metrics"):
            return _json_response(
                405, error_body("method-not-allowed", f"{method} {path}")
            )
        return _json_response(
            404, error_body("not-found", f"no route for {method} {path}")
        )

    # ------------------------------------------------------------------
    # Operational endpoints
    # ------------------------------------------------------------------
    def _endpoint_healthz(self):
        self._count_request("healthz")
        body = {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "tables": len(self.db.tables()),
            "admission": self.admission.stats(),
            "coalescer": self.coalescer.stats(),
        }
        return _json_response(200, body)

    def _endpoint_tables(self):
        self._count_request("tables")
        tables = []
        for name in self.db.tables():
            table = self.db.table(name)
            tables.append(
                {
                    "name": name,
                    "tuples": len(table),
                    "multi_rules": len(table.multi_rules()),
                    "version": table.version,
                    "expected_world_size": round(table.expected_size(), 3),
                }
            )
        return _json_response(200, {"tables": tables})

    def _endpoint_metrics(self):
        self._count_request("metrics")
        text = obs_export.to_prometheus()
        return (
            200,
            [("Content-Type", "text/plain; version=0.0.4")],
            text.encode("utf-8"),
        )

    # ------------------------------------------------------------------
    # /query
    # ------------------------------------------------------------------
    async def _endpoint_query(self, body: bytes):
        self._count_request("query")
        timer = (
            catalogued("repro_serve_request_seconds").time(endpoint="query")
            if OBS.enabled
            else None
        )
        try:
            if timer is not None:
                with timer:
                    return await self._answer_query(body)
            return await self._answer_query(body)
        except ProtocolError as error:
            return _json_response(400, error_body("bad-request", str(error)))
        except UnknownTableError as error:
            return _json_response(404, error_body("unknown-table", str(error)))
        except RejectedError as error:
            return _json_response(
                429,
                error_body(
                    "rejected", str(error), retry_after=round(error.retry_after, 3)
                ),
                extra_headers=[("Retry-After", f"{error.retry_after:.3f}")],
            )
        except DeadlineExceededError as error:
            if OBS.enabled:
                catalogued("repro_serve_rejections_total").inc(reason="deadline")
            return _json_response(
                504, error_body("deadline-exceeded", str(error))
            )
        except ReproError as error:
            return _json_response(400, error_body("query-error", str(error)))

    async def _answer_query(self, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"request body is not valid JSON: {error}")
        request = QueryRequest.from_dict(payload)
        self.db.table(request.table)  # 404 before admission
        self.startup()
        self.admission.admit()
        now = time.monotonic()
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.config.default_deadline_ms
        )
        work = _Work(
            request=request,
            deadline=(now + deadline_ms / 1000.0) if deadline_ms else None,
            arrived=now,
        )
        try:
            response = await self.coalescer.submit(request.table, work)
        finally:
            self.admission.release()
        return _json_response(200, response.to_dict())

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    async def _dispatch_batch(self, name: str, items: List[_Work]):
        """Coalescer callback: run one micro-batch on the thread pool."""
        self.startup()
        if OBS.enabled:
            catalogued("repro_serve_batch_size").observe(len(items))
        loop = asyncio.get_running_loop()
        async with self._inflight:
            start = time.monotonic()
            results = await loop.run_in_executor(
                self._executor, self._run_batch, name, items
            )
            self.admission.observe_service(
                time.monotonic() - start, requests=len(items)
            )
        self._schedule_serve_flush(loop)
        return results

    def _schedule_serve_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        """Journal serve keys buffered during dispatch, off the loop.

        ``_run_batch`` only *buffers* the keys it notes (``defer=True``)
        — the WAL append, and under ``--fsync always`` the fsync, happen
        here on an executor thread, fire-and-forget, so neither the
        event loop nor the batch's response ever waits on the journal.
        A durable engine also flushes on snapshot and close, so a skipped
        flush (executor already shut down) loses nothing permanent.
        """
        flush = getattr(self.db, "flush_serves", None)
        if flush is None or self._executor is None:
            return
        try:
            future = loop.run_in_executor(self._executor, flush)
        except RuntimeError:  # executor shut down mid-request
            return
        future.add_done_callback(_consume_flush_outcome)

    def _run_batch(self, name: str, items: List[_Work]) -> List[Any]:
        """Answer one micro-batch (thread pool; blocking engine calls).

        One :meth:`PrepareCache.get` covers the whole batch — the cache
        key ignores k, so mixed-k requests still share the entry — and
        both the exact path and the degraded sampling path take the
        shared preparation via explicit ``prepared=``.  Returns one
        ``QueryResponse`` or ``Exception`` per item.
        """
        try:
            table = self.db.table(name)
        except UnknownTableError as error:
            # Dropped between admission and dispatch: fail the batch's
            # items individually so each client sees a clean 404.
            return [error for _ in items]
        max_k = max(w.request.k for w in items)
        prepared = self.db.prepare_cache.get(table, TopKQuery(k=max_k))
        # A durable engine journals served keys so a restart re-prepares
        # what production traffic was actually using (cache warm start).
        # defer=True: buffer only — the WAL append (and any fsync) runs
        # later via _schedule_serve_flush, never inside dispatch.
        note_served = getattr(self.db, "note_served", None)
        if note_served is not None:
            note_served(name, max_k, defer=True)
        statistics = self._statistics_for(table)

        results: List[Any] = [None] * len(items)
        exact_positions: List[int] = []
        sampled_plans: List[Tuple[int, SamplingConfig, bool]] = []
        now = time.monotonic()
        for position, work in enumerate(items):
            remaining = None if work.deadline is None else work.deadline - now
            if remaining is not None and remaining <= 0:
                results[position] = DeadlineExceededError(
                    f"deadline expired before dispatch "
                    f"(table {name!r}, k={work.request.k})"
                )
                continue
            mode, config, degraded = self._plan(
                table, work.request, remaining, statistics
            )
            if mode == "exact":
                exact_positions.append(position)
            else:
                sampled_plans.append((position, config, degraded))
                if OBS.enabled and degraded:
                    catalogued("repro_serve_degraded_total").inc()

        if exact_positions:
            # One pruned RC+LR scan per request over the *shared*
            # preparation.  The unpruned shared-profile path
            # (``batch_ptk_queries``) would answer every k from one
            # scan, but it computes the full n-deep profile — quadratic
            # on large tables — while pruned scans stop at the depth
            # the latency model actually prices.
            started = time.monotonic()
            depth = 0
            for position in exact_positions:
                work = items[position]
                answer = exact_ptk_query(
                    table,
                    TopKQuery(k=work.request.k),
                    work.request.threshold,
                    prepared=prepared,
                )
                depth = max(depth, answer.stats.scan_depth)
                results[position] = self._response(
                    work, answer, "exact", False, len(items)
                )
            elapsed = time.monotonic() - started
            self.latency_model.observe_exact(
                depth, elapsed / len(exact_positions)
            )

        for position, config, degraded in sampled_plans:
            work = items[position]
            started = time.monotonic()
            answer = sampled_ptk_query(
                table,
                TopKQuery(k=work.request.k),
                work.request.threshold,
                config=config,
                prepared=prepared,
            )
            elapsed = time.monotonic() - started
            self.latency_model.observe_sampled(
                answer.stats.sample_units,
                answer.stats.avg_sample_length,
                elapsed,
            )
            results[position] = self._response(
                work, answer, "sampled", degraded, len(items)
            )
        return results

    def _plan(
        self,
        table,
        request: QueryRequest,
        remaining: Optional[float],
        statistics: TableStatistics,
    ) -> Tuple[str, Optional[SamplingConfig], bool]:
        """Pick the algorithm for one request: ``(mode, config, degraded)``.

        ``degraded`` is True only when the client did not ask for
        sampling but the planner predicted the exact scan would miss the
        deadline.
        """
        if request.mode == "exact":
            return "exact", None, False
        estimate = estimate_latency(
            table,
            request.k,
            request.threshold,
            model=self.latency_model,
            statistics=statistics,
        )
        if request.mode == "sampled":
            return "sampled", self._sampling_config(request, remaining, estimate), False
        # auto: exact unless the prediction busts the deadline budget
        if remaining is None:
            return "exact", None, False
        budget = remaining * self.config.deadline_safety
        if estimate.exact_seconds <= budget:
            return "exact", None, False
        return "sampled", self._sampling_config(request, remaining, estimate), True

    def _sampling_config(
        self, request: QueryRequest, remaining: Optional[float], estimate
    ) -> SamplingConfig:
        if request.sample_budget is not None:
            return SamplingConfig(
                sample_size=request.sample_budget,
                progressive=False,
                seed=self.config.seed,
            )
        if remaining is None:
            return SamplingConfig(seed=self.config.seed)
        return SamplingConfig.for_deadline(
            remaining * self.config.deadline_safety,
            unit_length=estimate.expected_unit_length,
            seconds_per_unit=max(estimate.sampled_seconds_per_unit, 1e-9),
            min_units=self.config.min_sample_budget,
            seed=self.config.seed,
        )

    def _response(
        self,
        work: _Work,
        answer: PTKAnswer,
        mode: str,
        degraded: bool,
        batch_size: int,
    ) -> QueryResponse:
        request = work.request
        response = QueryResponse(
            table=request.table,
            k=request.k,
            threshold=request.threshold,
            mode=mode,
            degraded=degraded,
            answers=list(answer.answers),
            probabilities={
                str(tid): round(answer.probabilities[tid], 6)
                for tid in answer.answers
            },
            batch_size=batch_size,
            elapsed_ms=(time.monotonic() - work.arrived) * 1000.0,
        )
        if mode == "sampled":
            units = max(answer.stats.sample_units, 1)
            response.units_drawn = answer.stats.sample_units
            response.intervals = {
                str(tid): wilson_interval(
                    answer.probabilities[tid] * units,
                    units,
                    confidence=request.confidence,
                )
                for tid in answer.answers
            }
        return response

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _statistics_for(self, table) -> TableStatistics:
        """Catalog statistics per (table, version), cached for planning."""
        key = id(table)
        cached = self._stats_cache.get(key)
        if cached is not None and cached[0] == table.version:
            return cached[1]
        statistics = collect_statistics(table)
        self._stats_cache[key] = (table.version, statistics)
        return statistics

    @staticmethod
    def _count_request(endpoint: str) -> None:
        if OBS.enabled:
            catalogued("repro_serve_requests_total").inc(endpoint=endpoint)


def _consume_flush_outcome(future: "asyncio.Future[int]") -> None:
    """Retrieve a fire-and-forget flush's outcome so nothing is logged
    as an unretrieved exception; serve keys are warm-start hints, and a
    key missed here is re-journalled from the recent-serves set at the
    next snapshot."""
    if not future.cancelled():
        future.exception()


def _json_response(
    status: int,
    body: Dict[str, Any],
    extra_headers: Optional[List[Tuple[str, str]]] = None,
) -> Tuple[int, List[Tuple[str, str]], bytes]:
    headers = list(_JSON)
    if extra_headers:
        headers.extend(extra_headers)
    return status, headers, (json.dumps(body) + "\n").encode("utf-8")


# ----------------------------------------------------------------------
# The hand-rolled HTTP/1.1 layer (stdlib asyncio streams, no new deps)
# ----------------------------------------------------------------------
_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 16 * 1024 * 1024


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; ``None`` on clean EOF before a request line."""
    try:
        request_line = await reader.readuntil(b"\r\n")
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {request_line!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readuntil(b"\r\n")
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise ValueError("headers too large")
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > _MAX_BODY_BYTES:
        raise ValueError(f"unacceptable content-length {length}")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _encode_response(
    status: int, headers: List[Tuple[str, str]], body: bytes, keep_alive: bool
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _handle_connection(
    app: ServeApp, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except (ValueError, asyncio.IncompleteReadError):
                writer.write(
                    _encode_response(
                        400,
                        list(_JSON),
                        (json.dumps(error_body("bad-request", "malformed HTTP")) + "\n").encode(),
                        keep_alive=False,
                    )
                )
                break
            if parsed is None:
                break
            method, path, headers, body = parsed
            status, response_headers, payload = await app.dispatch(
                method, path, body
            )
            keep_alive = headers.get("connection", "keep-alive") != "close"
            writer.write(
                _encode_response(status, response_headers, payload, keep_alive)
            )
            await writer.drain()
            if not keep_alive:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def serve(app: ServeApp) -> asyncio.AbstractServer:
    """Bind ``app`` to a TCP server (caller owns the returned server)."""
    app.startup()
    return await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w),
        host=app.config.host,
        port=app.config.port,
    )


async def _serve_forever(app: ServeApp) -> None:
    server = await serve(app)
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets or []
    )
    print(
        f"repro serve: {len(app.db.tables())} table(s) on {addresses} "
        f"(window {app.config.window_ms}ms, "
        f"max_inflight {app.config.max_inflight}, "
        f"queue {app.config.max_queue})",
        flush=True,
    )
    async with server:
        await server.serve_forever()


def run(app: ServeApp) -> None:
    """Blocking entry point used by ``repro serve``; Ctrl-C to stop."""
    try:
        asyncio.run(_serve_forever(app))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        app.shutdown()
