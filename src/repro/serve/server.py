"""The PT-k query service: asyncio HTTP front-end over an UncertainDB.

Architecture (one process, one event loop, a small thread pool)::

    client -> HTTP/1.1 -> ServeApp.handle
                            |  parse + validate      (protocol)
                            |  admission control     (admission)
                            v
                      RequestCoalescer  -- per-table micro-batches
                            |
                            v  (thread pool, max_inflight wide)
                      _run_batch: one PrepareCache.get for the batch,
                      exact work ordered cheapest-first by the batch
                      scheduler (re-checking deadlines before each
                      item), degraded requests through the sampler
                      with a deadline-sized budget

The interesting decision is **deadline-aware degradation**: before
running the exact algorithm for a request carrying a deadline, the
planner's scan-depth estimate is converted to predicted seconds
(:func:`repro.query.planner.estimate_latency`, self-calibrating).  When
the prediction does not fit in the remaining budget, the request is
answered by the paper's sampling estimator instead, with a unit budget
sized from the time actually left
(:meth:`repro.core.sampling.SamplingConfig.for_deadline`) — a smaller,
honest answer with a Wilson confidence interval beats a timeout.  The
response carries ``mode: "exact" | "sampled"`` and ``degraded: true``
so clients can tell.

Within a batch, **scheduling** (:mod:`repro.serve.scheduler`) extends
the same discipline to execution time: exact work runs cheapest-first,
each item's remaining deadline is re-checked immediately before it
executes (degrading or failing it *before* any scan starts), and the
scan itself runs under a wall-clock budget — a cut-off scan returns a
partial answer and parks a :class:`~repro.core.exact.ScanCheckpoint`
keyed by (table, version, k, threshold, variant) so an identical retry
resumes from the scanned prefix instead of restarting.

Endpoints: ``POST /query``, ``GET /healthz``, ``GET /tables``,
``GET /metrics`` (Prometheus text from :mod:`repro.obs`).

:class:`ServeApp` is transport-independent — tests and the loopback
client drive :meth:`ServeApp.dispatch` directly, no sockets involved;
:func:`serve` binds it to a real asyncio TCP server.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import urllib.parse

from repro import obs
from repro.core.exact import ScanCheckpoint, exact_ptk_query
from repro.core.results import PTKAnswer
from repro.core.sampling import SamplingConfig, sampled_ptk_query
from repro.durable.stream import WalCursor
from repro.durable.wal import decode_tid
from repro.exceptions import (
    CursorLostError,
    ReplicationError,
    ReproError,
    UnknownTableError,
    UnknownTupleError,
)
from repro.model.statistics import TableStatistics, collect_statistics
from repro.obs import OBS, catalogued
from repro.obs import export as obs_export
from repro.obs import flight
from repro.query.engine import UncertainDB
from repro.query.planner import LatencyModel, estimate_latency
from repro.query.prepare import PreparedRanking
from repro.query.topk import TopKQuery
from repro.serve.admission import AdmissionController
from repro.serve.coalescer import RequestCoalescer
from repro.serve.scheduler import ExactTask, make_scheduler
from repro.serve.protocol import (
    DeadlineExceededError,
    MutationRequest,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    RejectedError,
    StaleReadError,
    error_body,
)
from repro.stats.intervals import wilson_interval

_JSON = [("Content-Type", "application/json")]
_REASONS = {
    200: "OK", 400: "Bad Request", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 410: "Gone", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServeConfig:
    """Operational knobs of the serving layer.

    :param host: bind address of the TCP server.
    :param port: bind port; ``0`` picks an ephemeral one.
    :param window_ms: coalescing window — how long the first request for
        a table waits for concurrent company; ``0`` disables coalescing.
    :param max_batch: dispatch a batch early once it reaches this size.
    :param max_inflight: micro-batches executing concurrently (thread
        pool width).
    :param max_queue: requests allowed to wait beyond the inflight ones;
        arrivals past the bound are rejected with 429 + ``Retry-After``.
    :param default_deadline_ms: deadline applied to requests that do not
        carry one; ``None`` means such requests run unbounded.
    :param deadline_safety: fraction of the remaining deadline the
        planner's exact-latency prediction must fit within; the rest
        absorbs estimation error and response serialisation.
    :param scheduler: batch-scheduling policy for exact work: ``cost``
        (cheapest-first, pre-execution deadline re-checks, budgeted
        resumable scans) or ``fifo`` (arrival order, deadline-blind —
        the historical behaviour, kept as baseline/escape hatch).
    :param max_checkpoints: bound on parked deadline checkpoints held
        for resumption (oldest evicted first).
    :param min_sample_budget: floor on degraded sampling budgets.
    :param seed: seed for degraded sampling runs (deterministic tests).
    :param enable_obs: turn the observability layer on at startup so
        ``/metrics`` has content.
    :param enable_flight: turn the query flight recorder on (per-query
        profiles behind ``/debug/queries`` et al.); requires
        ``enable_obs``.
    :param flight_dir: directory for the recorder's on-disk artefacts
        (``slow.jsonl``, ``metrics.json``, ``spans.jsonl``); ``None``
        keeps profiles in memory only.
    :param slow_ms: queries at least this slow are appended to the
        slow-query log (0 logs everything).
    :param flight_ring: in-memory profile ring capacity.
    :param metrics_flush_s: period of the background flusher that
        snapshots registry metrics (and span trees) into ``flight_dir``;
        0 disables it.
    :param dynamic: maintain incremental PT-k indexes
        (:mod:`repro.dynamic`): each ``POST /mutate`` becomes an answer
        delta instead of a cache invalidation, and default-shape reads
        are served straight from the refreshed index with no cold
        re-prepare.
    :param dynamic_cap: largest ``k`` the dynamic indexes serve; larger
        requests fall back to the ordinary planned path.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    window_ms: float = 2.0
    max_batch: int = 64
    max_inflight: int = 4
    max_queue: int = 64
    default_deadline_ms: Optional[float] = None
    deadline_safety: float = 0.5
    scheduler: str = "cost"
    max_checkpoints: int = 64
    min_sample_budget: int = 100
    seed: Optional[int] = 7
    enable_obs: bool = True
    enable_flight: bool = True
    flight_dir: Optional[str] = None
    slow_ms: float = 100.0
    flight_ring: int = 256
    metrics_flush_s: float = 30.0
    dynamic: bool = False
    dynamic_cap: int = 64


@dataclass
class _Work:
    """One admitted query riding through the coalescer."""

    request: QueryRequest
    deadline: Optional[float]  # absolute time.monotonic() timestamp
    arrived: float


class ServeApp:
    """The transport-independent service: routing, batching, degradation.

    :param db: the engine to serve; tables are registered by the caller
        (the CLI loads a directory, tests register fixtures).
    :param config: operational knobs; defaults suit tests.
    :param latency_model: injectable cost model (tests pin coefficients
        to force or forbid degradation deterministically).
    :param replication: optional replication role — a
        :class:`~repro.replication.primary.ReplicationServer` (serves
        ``/replicate/*`` and accepts ``POST /mutate``) or a
        :class:`~repro.replication.replica.ReplicaApplier` (stamps
        staleness onto query responses and enforces
        ``max_staleness_s``).  Duck-typed via its ``role`` attribute so
        this module never imports :mod:`repro.replication`.
    """

    def __init__(
        self,
        db: UncertainDB,
        config: Optional[ServeConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        replication: Optional[Any] = None,
    ) -> None:
        self.db = db
        self.replication = replication
        self.config = config or ServeConfig()
        self.latency_model = latency_model or LatencyModel()
        self.scheduler = make_scheduler(self.config.scheduler)
        # Deadline checkpoints parked for resumption, keyed by
        # (table name, table version, k, threshold).  Bounded FIFO:
        # checkpoints are best-effort latency savings, not state.
        self._checkpoints: "OrderedDict[Tuple, ScanCheckpoint]" = OrderedDict()
        self._checkpoints_lock = threading.Lock()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
        )
        self.coalescer = RequestCoalescer(
            self._dispatch_batch,
            window_seconds=self.config.window_ms / 1000.0,
            max_batch=self.config.max_batch,
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._inflight: Optional[asyncio.Semaphore] = None
        self._stats_cache: Dict[int, Tuple[int, TableStatistics]] = {}
        self._started = time.monotonic()
        self._flusher_task: Optional[asyncio.Task] = None
        self._exported_traces: set = set()
        if self.config.dynamic:
            self.db.enable_dynamic(cap=self.config.dynamic_cap)
        if self.config.enable_obs:
            obs.enable()
            if self.config.enable_flight:
                slow_log = (
                    str(Path(self.config.flight_dir) / "slow.jsonl")
                    if self.config.flight_dir
                    else None
                )
                OBS.flight.configure(
                    ring_size=self.config.flight_ring,
                    slow_log_path=slow_log,
                    slow_threshold_ms=self.config.slow_ms,
                )
                OBS.flight.enable()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def startup(self) -> None:
        """Allocate the executor and concurrency gate (idempotent).

        When a flight directory is configured and an event loop is
        running, also start the periodic metrics/span flusher.
        """
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.max_inflight,
                thread_name_prefix="repro-serve",
            )
        if self._inflight is None:
            self._inflight = asyncio.Semaphore(self.config.max_inflight)
        if (
            self._flusher_task is None
            and self.config.enable_obs
            and self.config.flight_dir
            and self.config.metrics_flush_s > 0
        ):
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                return  # no loop yet (sync caller); retried on dispatch
            self._flusher_task = loop.create_task(self._flush_periodically())

    def shutdown(self) -> None:
        """Release the executor; in-flight batches finish first."""
        if self._flusher_task is not None:
            try:
                self._flusher_task.cancel()
            except RuntimeError:
                # The owning event loop already closed (``asyncio.run``
                # returned); the task died with it.
                pass
            self._flusher_task = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def stop_flusher(self) -> None:
        """Cancel and await the periodic flusher (run on its loop).

        Transports that outlive their event loop (the loopback) call
        this before stopping the loop so the task finishes cleanly
        instead of being destroyed while pending.
        """
        task = self._flusher_task
        self._flusher_task = None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def _flush_periodically(self) -> None:
        """Snapshot registry metrics and span trees into ``flight_dir``.

        Runs immediately on startup (so short-lived servers still leave
        artefacts) and then every ``metrics_flush_s`` seconds.  The
        files are small; writing them inline on the loop is fine.
        """
        directory = Path(self.config.flight_dir)
        while True:
            try:
                self.flush_observability(directory)
            except OSError:  # disk trouble must not kill the server
                pass
            await asyncio.sleep(self.config.metrics_flush_s)

    def flush_observability(self, directory: Path) -> None:
        """One flush tick: ``metrics.json`` + new spans to ``spans.jsonl``."""
        directory.mkdir(parents=True, exist_ok=True)
        obs_export.write_json(directory / "metrics.json")
        written = flight.write_spans_jsonl(
            directory / "spans.jsonl", skip_trace_ids=self._exported_traces
        )
        self._exported_traces.update(written)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def dispatch(
        self, method: str, path: str, body: bytes = b""
    ) -> Tuple[int, List[Tuple[str, str]], bytes]:
        """Route one request; returns ``(status, headers, body)``.

        The single entry point shared by the TCP server and the
        loopback transport — everything a client can observe goes
        through here.
        """
        path, _, query_string = path.partition("?")
        params = urllib.parse.parse_qs(query_string) if query_string else {}
        route = (method.upper(), path)
        if route == ("POST", "/query"):
            return await self._endpoint_query(body)
        if route == ("GET", "/healthz"):
            return self._endpoint_healthz()
        if route == ("GET", "/tables"):
            return self._endpoint_tables()
        if route == ("GET", "/metrics"):
            return self._endpoint_metrics()
        if route == ("GET", "/debug/queries"):
            return self._endpoint_debug("queries")
        if route == ("GET", "/debug/slow"):
            return self._endpoint_debug("slow")
        if route == ("GET", "/debug/calibration"):
            return self._endpoint_debug("calibration")
        if route == ("GET", "/replicate/wal"):
            return self._endpoint_replicate_wal(params)
        if route == ("GET", "/replicate/bootstrap"):
            return self._endpoint_replicate_bootstrap(params)
        if route == ("GET", "/replicate/status"):
            return self._endpoint_replicate_status()
        if route == ("POST", "/mutate"):
            return self._endpoint_mutate(body)
        if path in (
            "/query", "/healthz", "/tables", "/metrics",
            "/debug/queries", "/debug/slow", "/debug/calibration",
            "/replicate/wal", "/replicate/bootstrap", "/replicate/status",
            "/mutate",
        ):
            return _json_response(
                405, error_body("method-not-allowed", f"{method} {path}")
            )
        return _json_response(
            404, error_body("not-found", f"no route for {method} {path}")
        )

    # ------------------------------------------------------------------
    # Operational endpoints
    # ------------------------------------------------------------------
    def _table_epochs(self) -> Dict[str, int]:
        """Registration epochs, from whichever layer tracks them.

        A ``DurableDB`` primary exposes ``epochs()`` directly; a replica
        tracks them on its applier; a plain in-memory engine has none
        (every table is implicitly epoch 0).
        """
        for source in (self.db, self.replication):
            epochs_fn = getattr(source, "epochs", None)
            if callable(epochs_fn):
                return dict(epochs_fn())
        return {}

    def _table_versions(self) -> Dict[str, Dict[str, int]]:
        epochs = self._table_epochs()
        return {
            name: {
                "version": self.db.table(name).version,
                "epoch": int(epochs.get(name, 0)),
            }
            for name in self.db.tables()
        }

    def _endpoint_healthz(self):
        self._count_request("healthz")
        body = {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "tables": len(self.db.tables()),
            "table_versions": self._table_versions(),
            "admission": self.admission.stats(),
            "coalescer": self.coalescer.stats(),
            "scheduler": self.scheduler.name,
            "checkpoints": self.checkpoint_stats(),
        }
        if self.replication is not None:
            body["replication"] = self.replication.status()
        if self.db.dynamic is not None:
            body["dynamic"] = self.db.dynamic.stats()
        return _json_response(200, body)

    def _endpoint_tables(self):
        self._count_request("tables")
        epochs = self._table_epochs()
        tables = []
        for name in self.db.tables():
            table = self.db.table(name)
            tables.append(
                {
                    "name": name,
                    "tuples": len(table),
                    "multi_rules": len(table.multi_rules()),
                    "version": table.version,
                    "epoch": int(epochs.get(name, 0)),
                    "expected_world_size": round(table.expected_size(), 3),
                }
            )
        return _json_response(200, {"tables": tables})

    def _endpoint_metrics(self):
        self._count_request("metrics")
        text = obs_export.to_prometheus()
        # Tell scrapers whether the export is live or frozen: with
        # observability off the text is empty/stale, and silently
        # serving it reads as "everything is zero".
        return (
            200,
            [
                ("Content-Type", "text/plain; version=0.0.4"),
                ("X-Repro-Obs-Enabled", "true" if OBS.enabled else "false"),
            ],
            text.encode("utf-8"),
        )

    # ------------------------------------------------------------------
    # /debug — flight-recorder introspection
    # ------------------------------------------------------------------
    def _endpoint_debug(self, view: str):
        if OBS.enabled:
            catalogued("repro_serve_debug_requests_total").inc(view=view)
        recorder = OBS.flight
        if view == "queries":
            body: Dict[str, Any] = {
                "flight": recorder.stats(),
                "profiles": recorder.recent(limit=100),
            }
        elif view == "slow":
            body = {
                "slow_threshold_ms": recorder.stats()["slow_threshold_ms"],
                "slow_log_path": (
                    str(recorder.slow_log_path)
                    if recorder.slow_log_path
                    else None
                ),
                "profiles": recorder.slow_recent(limit=100),
            }
        else:
            body = recorder.calibration()
            body["latency_model"] = self.latency_model.coefficients()
        return _json_response(200, body)

    # ------------------------------------------------------------------
    # /replicate + /mutate — WAL-shipping replication (primary role)
    # ------------------------------------------------------------------
    def _replication_role(self) -> Optional[str]:
        return getattr(self.replication, "role", None)

    def _require_primary(self):
        """403 body when this node cannot serve primary-only routes."""
        role = self._replication_role()
        if role == "primary":
            return None
        reason = (
            f"this node is a {role}" if role else "replication not configured"
        )
        return _json_response(
            403, error_body("not-primary", f"primary role required: {reason}")
        )

    def _require_writable(self):
        """403 body when this node cannot accept writes.

        Only a replica refuses — its state is the primary's, and a local
        write would fork the lineage.  Plain servers and replication
        primaries both own their tables and accept ``POST /mutate``.
        """
        if self._replication_role() == "replica":
            return _json_response(
                403,
                error_body(
                    "read-only",
                    "replicas do not accept writes; mutate the primary",
                ),
            )
        return None

    def _endpoint_replicate_wal(self, params: Dict[str, List[str]]):
        self._count_request("replicate-wal")
        denied = self._require_primary()
        if denied is not None:
            return denied
        replica = _param(params, "replica")
        if not replica:
            return _json_response(
                400, error_body("bad-request", "missing 'replica' parameter")
            )
        try:
            cursor = WalCursor.decode(_param(params, "cursor", "0:0"))
            max_records = _int_param(params, "max_records")
            max_bytes = _int_param(params, "max_bytes")
        except (ReplicationError, ProtocolError) as error:
            return _json_response(400, error_body("bad-request", str(error)))
        try:
            payload = self.replication.handle_fetch(
                replica,
                cursor.encode(),
                max_records=max_records,
                max_bytes=max_bytes,
                advertise=_param(params, "advertise"),
            )
        except CursorLostError as error:
            return _json_response(410, error_body("cursor-lost", str(error)))
        except ReplicationError as error:
            return _json_response(
                400, error_body("replication-error", str(error))
            )
        return _json_response(200, payload)

    def _endpoint_replicate_bootstrap(self, params: Dict[str, List[str]]):
        self._count_request("replicate-bootstrap")
        denied = self._require_primary()
        if denied is not None:
            return denied
        replica = _param(params, "replica")
        if not replica:
            return _json_response(
                400, error_body("bad-request", "missing 'replica' parameter")
            )
        return _json_response(200, self.replication.handle_bootstrap(replica))

    def _endpoint_replicate_status(self):
        self._count_request("replicate-status")
        if self.replication is None:
            return _json_response(
                404, error_body("not-found", "replication not configured")
            )
        return _json_response(200, self.replication.status())

    def _endpoint_mutate(self, body: bytes):
        self._count_request("mutate")
        denied = self._require_writable()
        if denied is not None:
            return denied
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return _json_response(
                400,
                error_body(
                    "bad-request", f"request body is not valid JSON: {error}"
                ),
            )
        try:
            mutation = MutationRequest.from_dict(payload)
        except ProtocolError as error:
            return _json_response(400, error_body("bad-request", str(error)))
        try:
            if mutation.op == "add":
                self.db.add(
                    mutation.table,
                    decode_tid(mutation.tid),
                    mutation.score,
                    mutation.probability,
                    **mutation.attributes,
                )
            elif mutation.op == "remove":
                self.db.remove_tuple(mutation.table, decode_tid(mutation.tid))
            elif mutation.op == "update":
                self.db.update_probability(
                    mutation.table,
                    decode_tid(mutation.tid),
                    mutation.probability,
                )
            elif mutation.op == "score":
                self.db.update_score(
                    mutation.table, decode_tid(mutation.tid), mutation.score
                )
            else:  # rule
                self.db.add_exclusive(
                    mutation.table,
                    mutation.rule_id,
                    *[decode_tid(tid) for tid in mutation.members],
                )
        except (UnknownTableError, UnknownTupleError) as error:
            return _json_response(404, error_body("unknown", str(error)))
        except ReproError as error:
            return _json_response(400, error_body("mutation-error", str(error)))
        body_out: Dict[str, Any] = {
            "op": mutation.op,
            "table": mutation.table,
            "version": self.db.table(mutation.table).version,
        }
        # The post-mutation end cursor lets a writer wait for a replica
        # to confirm it has applied at least this much history.
        end_cursor = getattr(self.replication, "end_cursor", None)
        if callable(end_cursor):
            body_out["cursor"] = end_cursor().encode()
        return _json_response(200, body_out)

    # ------------------------------------------------------------------
    # /query
    # ------------------------------------------------------------------
    async def _endpoint_query(self, body: bytes):
        self._count_request("query")
        timer = (
            catalogued("repro_serve_request_seconds").time(endpoint="query")
            if OBS.enabled
            else None
        )
        try:
            if timer is not None:
                with timer:
                    return await self._answer_query(body)
            return await self._answer_query(body)
        except ProtocolError as error:
            return _json_response(400, error_body("bad-request", str(error)))
        except UnknownTableError as error:
            return _json_response(404, error_body("unknown-table", str(error)))
        except RejectedError as error:
            return _json_response(
                429,
                error_body(
                    "rejected", str(error), retry_after=round(error.retry_after, 3)
                ),
                extra_headers=[("Retry-After", f"{error.retry_after:.3f}")],
            )
        except DeadlineExceededError as error:
            if OBS.enabled:
                catalogued("repro_serve_rejections_total").inc(reason="deadline")
            return _json_response(
                504, error_body("deadline-exceeded", str(error))
            )
        except StaleReadError as error:
            if OBS.enabled:
                catalogued("repro_repl_stale_reads_rejected_total").inc()
            return _json_response(
                503,
                error_body(
                    "stale-read",
                    str(error),
                    staleness=error.staleness,
                    retry_after=round(error.retry_after, 3),
                ),
                extra_headers=[("Retry-After", f"{error.retry_after:.3f}")],
            )
        except ReproError as error:
            return _json_response(400, error_body("query-error", str(error)))

    async def _answer_query(self, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"request body is not valid JSON: {error}")
        request = QueryRequest.from_dict(payload)
        self.db.table(request.table)  # 404 before admission
        staleness = self._check_staleness(request)
        self.startup()
        self.admission.admit()
        now = time.monotonic()
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.config.default_deadline_ms
        )
        work = _Work(
            request=request,
            deadline=(now + deadline_ms / 1000.0) if deadline_ms else None,
            arrived=now,
        )
        try:
            response = await self.coalescer.submit(request.table, work)
        finally:
            self.admission.release()
        headers: Optional[List[Tuple[str, str]]] = None
        if staleness is not None:
            response.staleness = staleness
            headers = [
                (
                    "X-Repro-Repl-Lag-Records",
                    str(int(staleness.get("lag_records") or 0)),
                )
            ]
            age = staleness.get("staleness_seconds")
            if age is not None:
                headers.append(
                    ("X-Repro-Repl-Staleness-Seconds", f"{age:.3f}")
                )
        return _json_response(200, response.to_dict(), extra_headers=headers)

    def _check_staleness(
        self, request: QueryRequest
    ) -> Optional[Dict[str, Any]]:
        """On a replica, measure lag and enforce ``max_staleness_s``.

        Returns the staleness block to stamp onto the response (``None``
        on non-replicas).  A replica that has *never* confirmed itself
        caught up has unbounded staleness, so any bound rejects it.

        :raises StaleReadError: staleness exceeds the request's bound.
        """
        if self._replication_role() != "replica":
            return None
        staleness = self.replication.staleness()
        bound = request.max_staleness_s
        if bound is None:
            return staleness
        age = staleness.get("staleness_seconds")
        if age is None or age > bound:
            shown = "unbounded (never synced)" if age is None else f"{age:.3f}s"
            raise StaleReadError(
                f"replica staleness {shown} exceeds max_staleness_s={bound}",
                staleness=staleness,
            )
        return staleness

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    async def _dispatch_batch(self, name: str, items: List[_Work], complete):
        """Coalescer callback: run one micro-batch on the thread pool.

        ``complete`` is the coalescer's thread-safe per-item resolver:
        ``_run_batch`` calls it the moment each item's response (or
        error) is ready, so a cheap query scheduled ahead of an
        expensive scan answers its client immediately instead of
        waiting for the whole batch to drain.
        """
        self.startup()
        if OBS.enabled:
            catalogued("repro_serve_batch_size").observe(len(items))
        loop = asyncio.get_running_loop()
        async with self._inflight:
            start = time.monotonic()
            results = await loop.run_in_executor(
                self._executor, self._run_batch, name, items, complete
            )
            self.admission.observe_service(
                time.monotonic() - start, requests=len(items)
            )
        self._schedule_serve_flush(loop)
        return results

    def _schedule_serve_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        """Journal serve keys buffered during dispatch, off the loop.

        ``_run_batch`` only *buffers* the keys it notes (``defer=True``)
        — the WAL append, and under ``--fsync always`` the fsync, happen
        here on an executor thread, fire-and-forget, so neither the
        event loop nor the batch's response ever waits on the journal.
        A durable engine also flushes on snapshot and close, so a skipped
        flush (executor already shut down) loses nothing permanent.
        """
        flush = getattr(self.db, "flush_serves", None)
        if flush is None or self._executor is None:
            return
        try:
            future = loop.run_in_executor(self._executor, flush)
        except RuntimeError:  # executor shut down mid-request
            return
        future.add_done_callback(_consume_flush_outcome)

    def _run_batch(
        self, name: str, items: List[_Work], complete=None
    ) -> List[Any]:
        """Answer one micro-batch (thread pool; blocking engine calls).

        One :meth:`PrepareCache.get` covers the whole batch — the cache
        key ignores k, so mixed-k requests still share the entry — and
        both the exact path and the degraded sampling path take the
        shared preparation via explicit ``prepared=``.  Returns one
        ``QueryResponse`` or ``Exception`` per item; when ``complete``
        is given, each item is additionally resolved through it the
        moment its result is ready (items the scheduler answers early
        do not wait for the rest of the batch).
        """
        try:
            table = self.db.table(name)
        except UnknownTableError as error:
            # Dropped between admission and dispatch: fail the batch's
            # items individually so each client sees a clean 404.
            return [error for _ in items]
        max_k = max(w.request.k for w in items)
        prepared = self.db.prepare_cache.get(table, TopKQuery(k=max_k))
        # A durable engine journals served keys so a restart re-prepares
        # what production traffic was actually using (cache warm start).
        # defer=True: buffer only — the WAL append (and any fsync) runs
        # later via _schedule_serve_flush, never inside dispatch.
        note_served = getattr(self.db, "note_served", None)
        if note_served is not None:
            note_served(name, max_k, defer=True)
        statistics = self._statistics_for(table)
        recorder = OBS.flight if OBS.enabled else None
        # The batch-level PrepareCache.get above ran before any per-item
        # profile opened; its outcome was parked per-thread.
        prepare_hit = recorder.consume_prepare() if recorder else None

        results: List[Any] = [None] * len(items)

        def finish(position: int, result: Any) -> None:
            results[position] = result
            if complete is not None:
                complete(position, result)

        exact_tasks: List[ExactTask] = []
        sampled_plans: List[
            Tuple[int, SamplingConfig, bool, Any, Optional[float]]
        ] = []
        registry = self.db.dynamic
        now = time.monotonic()
        for position, work in enumerate(items):
            remaining = None if work.deadline is None else work.deadline - now
            if remaining is not None and remaining <= 0:
                finish(position, self._expired_item(
                    name, work, remaining, "dispatch", len(items),
                    recorder, prepare_hit,
                ))
                continue
            # Dynamic fast path: serve straight from the maintained
            # incremental index (byte-identical to the cold columnar
            # scan).  Explicitly sampled requests keep their semantics;
            # k above the registry cap falls through to planning.
            if registry is not None and work.request.mode != "sampled":
                started = time.perf_counter()
                answer = registry.answer(
                    name, table, work.request.k, work.request.threshold
                )
                if answer is not None:
                    elapsed = time.perf_counter() - started
                    if recorder is not None:
                        profile = recorder.begin(
                            "served",
                            table=name,
                            k=work.request.k,
                            threshold=work.request.threshold,
                        )
                        if profile is not None:
                            recorder.finish(
                                profile,
                                served=True,
                                outcome="ok",
                                mode="dynamic",
                                degraded=False,
                                batch_size=len(items),
                                actual_seconds=elapsed,
                                deadline_remaining_ms=(
                                    remaining * 1000.0
                                    if remaining is not None
                                    else None
                                ),
                                prepare_hit=prepare_hit,
                                dynamic=self._dynamic_profile(name),
                            )
                    finish(position, self._response(
                        work, answer, "dynamic", False, len(items),
                    ))
                    continue
            mode, config, degraded, estimate = self._plan(
                table, work.request, remaining, statistics
            )
            if mode == "exact":
                exact_tasks.append(ExactTask(position, estimate))
            else:
                sampled_plans.append(
                    (position, config, degraded, estimate, remaining)
                )
                if OBS.enabled and degraded:
                    catalogued("repro_serve_degraded_total").inc()

        # Exact work: one pruned RC+LR scan per request over the
        # *shared* preparation, dispatched in the scheduler's order
        # (cheapest predicted scan first under the cost policy) with a
        # pre-execution deadline re-check per item.  The unpruned
        # shared-profile path (``batch_ptk_queries``) would answer
        # every k from one scan, but it computes the full n-deep
        # profile — quadratic on large tables — while pruned scans stop
        # at the depth the latency model actually prices.
        safety = self.config.deadline_safety
        for queue_position, task in enumerate(self.scheduler.order(exact_tasks)):
            work = items[task.position]
            now = time.monotonic()
            remaining = None if work.deadline is None else work.deadline - now
            checkpoint_key = (
                name, table.version, work.request.k, work.request.threshold,
            )
            checkpoint = self._take_checkpoint(checkpoint_key)
            estimated = (
                self.latency_model.predict_resume_seconds(
                    checkpoint.depth, task.estimate.depth
                )
                if checkpoint is not None
                else task.estimate.exact_seconds
            )
            decision = self.scheduler.decide(
                remaining, estimated, safety,
                can_degrade=work.request.mode != "exact",
            )
            sched_info: Dict[str, Any] = {
                "policy": self.scheduler.name,
                "queue_position": queue_position,
                "estimated_seconds": estimated,
                "decision": decision,
            }
            if checkpoint is not None:
                sched_info["resumed_from_depth"] = checkpoint.depth
            if decision == "expired":
                if checkpoint is not None:
                    self._store_checkpoint(checkpoint_key, checkpoint)
                finish(task.position, self._expired_item(
                    name, work, remaining, "pre-exec", len(items),
                    recorder, prepare_hit, sched_info,
                ))
                continue
            if decision == "degrade":
                if checkpoint is not None:
                    self._store_checkpoint(checkpoint_key, checkpoint)
                    sched_info.pop("resumed_from_depth", None)
                if OBS.enabled:
                    catalogued("repro_serve_degraded_preexec_total").inc()
                    catalogued("repro_serve_degraded_total").inc()
                config = self._sampling_config(
                    work.request, remaining, task.estimate
                )
                finish(task.position, self._run_sampled_item(
                    table, name, work, config, True, task.estimate,
                    remaining, prepared, recorder, prepare_hit,
                    len(items), sched_info,
                ))
                continue
            profile = (
                recorder.begin(
                    "served",
                    table=name,
                    k=work.request.k,
                    threshold=work.request.threshold,
                )
                if recorder
                else None
            )
            budget = self.scheduler.budget(remaining, safety)
            started = time.perf_counter()
            answer = exact_ptk_query(
                table,
                TopKQuery(k=work.request.k),
                work.request.threshold,
                prepared=prepared,
                deadline_seconds=budget,
                resume=checkpoint,
            )
            elapsed = time.perf_counter() - started
            partial = answer.checkpoint is not None
            if partial:
                self._store_checkpoint(checkpoint_key, answer.checkpoint)
                sched_info["checkpoint_depth"] = answer.stats.scan_depth
            if checkpoint is not None:
                if OBS.enabled:
                    catalogued("repro_serve_resumed_scans_total").inc()
            else:
                # Per-item calibration: this item's depth with this
                # item's clock.  (Batch-aggregated observations paired
                # one item's depth with another item's time and
                # corrupted the model the scheduler prices with.)
                # Resumed segments are skipped — their elapsed covers
                # only the suffix of the reported depth.
                self.latency_model.observe_exact(
                    answer.stats.scan_depth, elapsed
                )
            if profile is not None:
                recorder.finish(
                    profile,
                    served=True,
                    outcome="deadline-partial" if partial else "ok",
                    mode="exact",
                    degraded=False,
                    batch_size=len(items),
                    estimated_seconds=estimated,
                    actual_seconds=elapsed,
                    deadline_remaining_ms=(
                        remaining * 1000.0 if remaining is not None else None
                    ),
                    prepare_hit=prepare_hit,
                    scheduler=dict(sched_info),
                )
            finish(task.position, self._response(
                work, answer, "exact", False, len(items),
                partial=partial, scheduler=sched_info,
            ))

        for position, config, degraded, estimate, remaining in sampled_plans:
            finish(position, self._run_sampled_item(
                table, name, items[position], config, degraded, estimate,
                remaining, prepared, recorder, prepare_hit, len(items),
            ))
        return results

    def _expired_item(
        self,
        name: str,
        work: _Work,
        remaining: Optional[float],
        stage: str,
        batch_size: int,
        recorder,
        prepare_hit: Optional[bool],
        sched_info: Optional[Dict[str, Any]] = None,
    ) -> DeadlineExceededError:
        """Account one batch item whose deadline has already passed.

        ``stage`` says where the expiry was caught: ``dispatch`` (the
        batch-start sweep) or ``pre-exec`` (the scheduler's re-check
        immediately before the item would have run).
        """
        if OBS.enabled:
            catalogued("repro_serve_deadline_expired_total").inc(stage=stage)
        if recorder is not None:
            expired = recorder.begin(
                "served",
                table=name,
                k=work.request.k,
                threshold=work.request.threshold,
            )
            if expired is not None:
                recorder.finish(
                    expired,
                    served=True,
                    outcome="deadline-expired",
                    batch_size=batch_size,
                    deadline_remaining_ms=(
                        remaining * 1000.0 if remaining is not None else None
                    ),
                    prepare_hit=prepare_hit,
                    scheduler=dict(sched_info) if sched_info else None,
                )
        return DeadlineExceededError(
            f"deadline expired before {stage} "
            f"(table {name!r}, k={work.request.k})"
        )

    def _run_sampled_item(
        self,
        table,
        name: str,
        work: _Work,
        config: SamplingConfig,
        degraded: bool,
        estimate,
        remaining: Optional[float],
        prepared: PreparedRanking,
        recorder,
        prepare_hit: Optional[bool],
        batch_size: int,
        sched_info: Optional[Dict[str, Any]] = None,
    ) -> QueryResponse:
        """Answer one item through the sampler (planned or degraded)."""
        profile = (
            recorder.begin(
                "served",
                table=name,
                k=work.request.k,
                threshold=work.request.threshold,
            )
            if recorder
            else None
        )
        started = time.perf_counter()
        answer = sampled_ptk_query(
            table,
            TopKQuery(k=work.request.k),
            work.request.threshold,
            config=config,
            prepared=prepared,
        )
        elapsed = time.perf_counter() - started
        self.latency_model.observe_sampled(
            answer.stats.sample_units,
            answer.stats.avg_sample_length,
            elapsed,
        )
        if profile is not None:
            recorder.finish(
                profile,
                served=True,
                outcome="ok",
                mode="sampled",
                degraded=degraded,
                batch_size=batch_size,
                estimated_seconds=self.latency_model.predict_sampled_seconds(
                    config.resolved_sample_size(),
                    estimate.expected_unit_length,
                ),
                actual_seconds=elapsed,
                deadline_remaining_ms=(
                    remaining * 1000.0 if remaining is not None else None
                ),
                prepare_hit=prepare_hit,
                scheduler=dict(sched_info) if sched_info else None,
            )
        return self._response(
            work, answer, "sampled", degraded, batch_size,
            scheduler=sched_info,
        )

    # ------------------------------------------------------------------
    # Deadline checkpoints (resumable exact scans)
    # ------------------------------------------------------------------
    def _take_checkpoint(self, key: Tuple) -> Optional[ScanCheckpoint]:
        """Claim (and remove) a parked checkpoint for this query shape.

        Removal under the lock makes the claim exclusive: two batches
        racing for the same key cannot both resume one single-use
        checkpoint.
        """
        with self._checkpoints_lock:
            return self._checkpoints.pop(key, None)

    def _store_checkpoint(self, key: Tuple, checkpoint: ScanCheckpoint) -> None:
        """Park a checkpoint for a future identical query to resume."""
        with self._checkpoints_lock:
            self._checkpoints[key] = checkpoint
            self._checkpoints.move_to_end(key)
            while len(self._checkpoints) > self.config.max_checkpoints:
                self._checkpoints.popitem(last=False)

    def checkpoint_stats(self) -> Dict[str, Any]:
        """Point-in-time view of the parked-checkpoint store (tests)."""
        with self._checkpoints_lock:
            return {
                "parked": len(self._checkpoints),
                "capacity": self.config.max_checkpoints,
            }

    def _plan(
        self,
        table,
        request: QueryRequest,
        remaining: Optional[float],
        statistics: TableStatistics,
    ) -> Tuple[str, Optional[SamplingConfig], bool, Any]:
        """Pick the algorithm: ``(mode, config, degraded, estimate)``.

        ``degraded`` is True only when the client did not ask for
        sampling but the planner predicted the exact scan would miss the
        deadline.  The latency estimate is always computed (it is cheap:
        a closed form over cached statistics) so the flight recorder can
        compare it against the measured latency on every path.
        """
        estimate = estimate_latency(
            table,
            request.k,
            request.threshold,
            model=self.latency_model,
            statistics=statistics,
        )
        if request.mode == "exact":
            return "exact", None, False, estimate
        if request.mode == "sampled":
            return (
                "sampled",
                self._sampling_config(request, remaining, estimate),
                False,
                estimate,
            )
        # auto: exact unless the prediction busts the deadline budget
        if remaining is None:
            return "exact", None, False, estimate
        budget = remaining * self.config.deadline_safety
        if estimate.exact_seconds <= budget:
            return "exact", None, False, estimate
        return (
            "sampled",
            self._sampling_config(request, remaining, estimate),
            True,
            estimate,
        )

    def _sampling_config(
        self, request: QueryRequest, remaining: Optional[float], estimate
    ) -> SamplingConfig:
        if request.sample_budget is not None:
            return SamplingConfig(
                sample_size=request.sample_budget,
                progressive=False,
                seed=self.config.seed,
            )
        if remaining is None:
            return SamplingConfig(seed=self.config.seed)
        return SamplingConfig.for_deadline(
            remaining * self.config.deadline_safety,
            unit_length=estimate.expected_unit_length,
            seconds_per_unit=max(estimate.sampled_seconds_per_unit, 1e-9),
            min_units=self.config.min_sample_budget,
            seed=self.config.seed,
        )

    def _response(
        self,
        work: _Work,
        answer: PTKAnswer,
        mode: str,
        degraded: bool,
        batch_size: int,
        partial: bool = False,
        scheduler: Optional[Dict[str, Any]] = None,
    ) -> QueryResponse:
        request = work.request
        response = QueryResponse(
            table=request.table,
            k=request.k,
            threshold=request.threshold,
            mode=mode,
            degraded=degraded,
            answers=list(answer.answers),
            probabilities={
                str(tid): round(answer.probabilities[tid], 6)
                for tid in answer.answers
            },
            batch_size=batch_size,
            elapsed_ms=(time.monotonic() - work.arrived) * 1000.0,
            partial=partial,
            scheduler=dict(scheduler) if scheduler is not None else None,
        )
        if mode == "sampled":
            units = max(answer.stats.sample_units, 1)
            response.units_drawn = answer.stats.sample_units
            response.intervals = {
                str(tid): wilson_interval(
                    answer.probabilities[tid] * units,
                    units,
                    confidence=request.confidence,
                )
                for tid in answer.answers
            }
        return response

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _dynamic_profile(self, name: str) -> Optional[Dict[str, Any]]:
        """The per-query ``dynamic`` block stamped onto flight profiles."""
        registry = self.db.dynamic
        if registry is None:
            return None
        stats = registry.stats()
        block: Dict[str, Any] = {
            "deltas_applied": stats["deltas_applied"],
            "reads": stats["reads"],
            "fallbacks": stats["fallbacks"],
        }
        table_stats = stats["tables"].get(name)
        if table_stats is not None:
            block["pending"] = table_stats["pending"]
            block["indexes"] = sorted(table_stats["indexes"])
        return block

    def _statistics_for(self, table) -> TableStatistics:
        """Catalog statistics per (table, version), cached for planning."""
        key = id(table)
        cached = self._stats_cache.get(key)
        if cached is not None and cached[0] == table.version:
            return cached[1]
        statistics = collect_statistics(table)
        self._stats_cache[key] = (table.version, statistics)
        return statistics

    @staticmethod
    def _count_request(endpoint: str) -> None:
        if OBS.enabled:
            catalogued("repro_serve_requests_total").inc(endpoint=endpoint)


def _consume_flush_outcome(future: "asyncio.Future[int]") -> None:
    """Retrieve a fire-and-forget flush's outcome so nothing is logged
    as an unretrieved exception; serve keys are warm-start hints, and a
    key missed here is re-journalled from the recent-serves set at the
    next snapshot."""
    if not future.cancelled():
        future.exception()


def _param(
    params: Dict[str, List[str]], name: str, default: Optional[str] = None
) -> Optional[str]:
    values = params.get(name)
    return values[0] if values else default


def _int_param(params: Dict[str, List[str]], name: str) -> Optional[int]:
    raw = _param(params, name)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ProtocolError(f"{name} must be an integer, got {raw!r}")
    if value <= 0:
        raise ProtocolError(f"{name} must be positive, got {value}")
    return value


def _json_response(
    status: int,
    body: Dict[str, Any],
    extra_headers: Optional[List[Tuple[str, str]]] = None,
) -> Tuple[int, List[Tuple[str, str]], bytes]:
    headers = list(_JSON)
    if extra_headers:
        headers.extend(extra_headers)
    return status, headers, (json.dumps(body) + "\n").encode("utf-8")


# ----------------------------------------------------------------------
# The hand-rolled HTTP/1.1 layer (stdlib asyncio streams, no new deps)
# ----------------------------------------------------------------------
_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 16 * 1024 * 1024


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; ``None`` on clean EOF before a request line."""
    try:
        request_line = await reader.readuntil(b"\r\n")
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {request_line!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readuntil(b"\r\n")
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise ValueError("headers too large")
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > _MAX_BODY_BYTES:
        raise ValueError(f"unacceptable content-length {length}")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _encode_response(
    status: int, headers: List[Tuple[str, str]], body: bytes, keep_alive: bool
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _handle_connection(
    app: ServeApp, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except (ValueError, asyncio.IncompleteReadError):
                writer.write(
                    _encode_response(
                        400,
                        list(_JSON),
                        (json.dumps(error_body("bad-request", "malformed HTTP")) + "\n").encode(),
                        keep_alive=False,
                    )
                )
                break
            if parsed is None:
                break
            method, path, headers, body = parsed
            status, response_headers, payload = await app.dispatch(
                method, path, body
            )
            keep_alive = headers.get("connection", "keep-alive") != "close"
            writer.write(
                _encode_response(status, response_headers, payload, keep_alive)
            )
            await writer.drain()
            if not keep_alive:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def serve(app: ServeApp) -> asyncio.AbstractServer:
    """Bind ``app`` to a TCP server (caller owns the returned server)."""
    app.startup()
    return await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w),
        host=app.config.host,
        port=app.config.port,
    )


async def _serve_forever(app: ServeApp) -> None:
    server = await serve(app)
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets or []
    )
    print(
        f"repro serve: {len(app.db.tables())} table(s) on {addresses} "
        f"(window {app.config.window_ms}ms, "
        f"max_inflight {app.config.max_inflight}, "
        f"queue {app.config.max_queue})",
        flush=True,
    )
    async with server:
        await server.serve_forever()


def run(app: ServeApp) -> None:
    """Blocking entry point used by ``repro serve``; Ctrl-C to stop."""
    try:
        asyncio.run(_serve_forever(app))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        app.shutdown()
