"""Blocking client for the serving layer, over TCP or in-process.

Two transports behind one tiny interface:

* :class:`HTTPTransport` — stdlib ``http.client`` against a running
  ``repro serve`` process (the CI smoke test and real deployments).
* :class:`LoopbackTransport` — hosts a :class:`~repro.serve.server.ServeApp`
  on a private event loop in a background thread and calls
  ``app.dispatch`` directly.  No sockets, no ports, fully hermetic —
  the unit tests and the serving benchmark drive the *entire* service
  stack (routing, admission, coalescing, degradation) this way, and
  concurrent client threads genuinely coalesce because their requests
  meet inside the single loop.

:class:`ServeClient` wraps either transport with typed helpers and
raises :class:`ServeClientError` (carrying the HTTP status and decoded
body) on non-2xx responses — except 429, which raises the sharper
:class:`~repro.serve.protocol.RejectedError` with the server's
``Retry-After`` so callers can implement honest backoff.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import urllib.parse
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.serve.protocol import RejectedError
from repro.serve.server import ServeApp

Headers = List[Tuple[str, str]]


class ServeClientError(ReproError):
    """A non-2xx response from the service.

    :param status: HTTP status code.
    :param body: decoded JSON error body (``{"error", "message", ...}``)
        or ``{"raw": ...}`` when the body was not JSON.
    """

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        super().__init__(
            f"HTTP {status}: {body.get('message', body.get('raw', ''))}"
        )
        self.status = status
        self.body = body


class HTTPTransport:
    """One request per call over stdlib ``http.client``."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def close(self) -> None:
        """Nothing persistent to release (connections are per-request)."""


class LoopbackTransport:
    """Runs a :class:`ServeApp` on a private loop; no sockets involved.

    The background thread owns the event loop, so the app's coalescing
    timers and semaphores behave exactly as under the TCP server; any
    number of caller threads may issue requests concurrently.

    Use as a context manager or call :meth:`close` explicitly.
    """

    def __init__(self, app: ServeApp) -> None:
        self.app = app
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-loopback", daemon=True
        )
        self._thread.start()
        # Bind loop-affine resources (semaphore, executor) on the loop.
        asyncio.run_coroutine_threadsafe(
            self._startup(), self._loop
        ).result(timeout=10)

    async def _startup(self) -> None:
        self.app.startup()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        future = asyncio.run_coroutine_threadsafe(
            self.app.dispatch(method, path, body or b""), self._loop
        )
        status, _headers, payload = future.result()
        return status, payload

    def close(self) -> None:
        if self._loop.is_running():
            # Stop the flusher while its loop is still alive, then stop
            # the loop itself.
            asyncio.run_coroutine_threadsafe(
                self.app.stop_flusher(), self._loop
            ).result(timeout=10)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
        self._loop.close()
        self.app.shutdown()

    def __enter__(self) -> "LoopbackTransport":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ServeClient:
    """Typed blocking access to the four service endpoints.

    ::

        with LoopbackTransport(ServeApp(db)) as transport:
            client = ServeClient(transport)
            result = client.query("sightings", k=5, threshold=0.5,
                                  deadline_ms=100)
            result["mode"]          # "exact" or "sampled"

    or against a live server::

        client = ServeClient.connect("127.0.0.1", 8080)
    """

    def __init__(self, transport: Any) -> None:
        self.transport = transport

    @classmethod
    def connect(
        cls, host: str, port: int, timeout: float = 30.0
    ) -> "ServeClient":
        return cls(HTTPTransport(host, port, timeout=timeout))

    # ------------------------------------------------------------------
    def query(
        self,
        table: str,
        k: int,
        threshold: float,
        mode: str = "auto",
        deadline_ms: Optional[float] = None,
        sample_budget: Optional[int] = None,
        confidence: Optional[float] = None,
        max_staleness_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Issue one PT-k query; returns the decoded response body.

        :raises RejectedError: on 429, with the server's retry hint.
        :raises ServeClientError: on any other non-2xx status (a 503
            from a replica means the staleness bound was exceeded).
        """
        payload: Dict[str, Any] = {
            "table": table,
            "k": k,
            "threshold": threshold,
            "mode": mode,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if sample_budget is not None:
            payload["sample_budget"] = sample_budget
        if confidence is not None:
            payload["confidence"] = confidence
        if max_staleness_s is not None:
            payload["max_staleness_s"] = max_staleness_s
        return self._json(
            "POST", "/query", json.dumps(payload).encode("utf-8")
        )

    def healthz(self) -> Dict[str, Any]:
        """Service liveness plus admission/coalescer counters."""
        return self._json("GET", "/healthz")

    def tables(self) -> List[Dict[str, Any]]:
        """The served tables with sizes and versions."""
        return self._json("GET", "/tables")["tables"]

    def metrics(self) -> str:
        """The Prometheus text exposition of the service's metrics."""
        status, body = self.transport.request("GET", "/metrics")
        if status != 200:
            raise ServeClientError(status, _decode(body))
        return body.decode("utf-8")

    # ------------------------------------------------------------------
    # Replication (primary-only routes; see docs/replication.md)
    # ------------------------------------------------------------------
    def fetch_wal(
        self,
        cursor: str,
        replica: str,
        max_records: Optional[int] = None,
        max_bytes: Optional[int] = None,
        advertise: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Fetch one batch of WAL records after ``cursor``.

        :raises ServeClientError: status 410 means the cursor fell
            outside the primary's retention — call :meth:`bootstrap`.
        """
        params = {"cursor": cursor, "replica": replica}
        if max_records is not None:
            params["max_records"] = str(max_records)
        if max_bytes is not None:
            params["max_bytes"] = str(max_bytes)
        if advertise is not None:
            params["advertise"] = advertise
        query = urllib.parse.urlencode(params)
        return self._json("GET", f"/replicate/wal?{query}")

    def bootstrap(self, replica: str) -> Dict[str, Any]:
        """Fetch full table documents plus the cursor to stream from."""
        query = urllib.parse.urlencode({"replica": replica})
        return self._json("GET", f"/replicate/bootstrap?{query}")

    def replicate_status(self) -> Dict[str, Any]:
        """The node's replication status (works on both roles)."""
        return self._json("GET", "/replicate/status")

    def mutate(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one write on a writable node (``POST /mutate``).

        ``payload`` follows :class:`~repro.serve.protocol.MutationRequest`
        — e.g. ``{"op": "add", "table": t, "tid": ..., "score": ...,
        "probability": ...}``; ops are ``add`` / ``remove`` / ``update``
        / ``score`` / ``rule``.  Returns the new table version and, on
        a replication primary, the post-mutation WAL end cursor.
        Replicas refuse with 403.
        """
        return self._json(
            "POST", "/mutate", json.dumps(payload).encode("utf-8")
        )

    # ------------------------------------------------------------------
    def _json(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Any:
        status, payload = self.transport.request(method, path, body)
        decoded = _decode(payload)
        if status == 429:
            raise RejectedError(
                decoded.get("message", "rejected"),
                retry_after=float(decoded.get("retry_after", 1.0)),
            )
        if not (200 <= status < 300):
            raise ServeClientError(status, decoded)
        return decoded

    def close(self) -> None:
        self.transport.close()


def _decode(payload: bytes) -> Dict[str, Any]:
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {"raw": payload[:200].decode("utf-8", "replace")}
    if not isinstance(decoded, dict):
        return {"raw": decoded}
    return decoded
