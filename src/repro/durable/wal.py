"""The write-ahead log: an append-only, checksummed journal of mutations.

Every mutation applied through :class:`repro.durable.db.DurableDB`
(``register``, ``add``, ``rule``, ``remove``, ``update``, ``drop``) is
serialised to one binary record *after* the in-memory table accepted it,
so the journal only ever contains mutations that passed validation.
``serve`` records additionally journal recently served query keys so
recovery can warm the prepare cache (:mod:`repro.durable.recover`).

Record framing::

    segment  := MAGIC ("RPWAL001") record*
    record   := <u32 payload_len> <u32 crc32(payload)> payload
    payload  := compact UTF-8 JSON object with an "op" field

A crash can leave a *torn tail*: a partial header, a payload shorter
than its declared length, or a payload that fails its CRC.  Scanning
(:func:`scan_segment`) stops at the first such record and reports the
bytes dropped; recovery simply replays the prefix — the torn record was
never acknowledged as durable.  Damage that a torn write cannot explain
(bad magic, a CRC-valid record that is not JSON) raises
:class:`~repro.exceptions.WalCorruptionError` from :func:`replay_wal`
and is reported by ``repro durable verify``.

Durability knobs (``fsync`` policy):

* ``always``   — fsync after every append; an acknowledged record
  survives power loss.
* ``interval`` — flush every append (survives SIGKILL of the process),
  fsync at most once per ``fsync_interval`` seconds (bounded loss on
  power failure).  The default.
* ``off``      — flush only; fsync is left to the OS.

A fresh segment is started on every open and on :meth:`rotate` — the
writer never appends to a file that might end in a torn record.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import DurabilityError, WalCorruptionError
from repro.obs import OBS, catalogued

MAGIC = b"RPWAL001"
_HEADER = struct.Struct("<II")

#: Records larger than this are assumed to be garbage from a torn write
#: (no legitimate payload approaches it), bounding memory during scans.
MAX_RECORD_BYTES = 64 * 1024 * 1024

FSYNC_POLICIES = ("always", "interval", "off")


def encode_tid(tid: Any) -> Any:
    """Map a tuple id to its JSON form (tuples become arrays)."""
    if isinstance(tid, tuple):
        return [encode_tid(item) for item in tid]
    return tid


def decode_tid(tid: Any) -> Any:
    """Inverse of :func:`encode_tid` (arrays become tuples, recursively)."""
    if isinstance(tid, list):
        return tuple(decode_tid(item) for item in tid)
    return tid


def encode_record(record: Dict[str, Any]) -> bytes:
    """Frame one record: length + CRC32 header, compact JSON payload."""
    payload = json.dumps(
        record, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class SegmentScan:
    """Result of scanning one WAL segment.

    :param records: the decoded records of the valid prefix.
    :param good_bytes: length of the valid prefix (magic included).
    :param total_bytes: physical file length.
    :param corrupt: True for damage a torn write cannot explain.
    :param problem: human-readable description of why the scan stopped
        early, or ``None`` when the segment is clean.
    """

    records: List[Dict[str, Any]] = field(default_factory=list)
    good_bytes: int = 0
    total_bytes: int = 0
    corrupt: bool = False
    problem: Optional[str] = None

    @property
    def torn_bytes(self) -> int:
        """Bytes past the valid prefix (0 for a clean segment)."""
        return self.total_bytes - self.good_bytes


def scan_segment(path: Union[str, Path]) -> SegmentScan:
    """Scan one segment, stopping at the first invalid record.

    Never raises for on-disk damage: a torn tail is normal after a
    crash, and structural corruption is reported via
    :attr:`SegmentScan.corrupt` so callers decide how loud to be.
    """
    data = Path(path).read_bytes()
    scan = SegmentScan(total_bytes=len(data))
    if len(data) < len(MAGIC):
        # A crash can tear even the 8-byte magic write; a short file that
        # is a prefix of the magic is a torn header, anything else is not
        # a WAL segment at all.
        if data and not MAGIC.startswith(data):
            scan.corrupt = True
            scan.problem = "not a WAL segment (bad magic)"
        elif data:
            scan.problem = "torn segment header"
        return scan
    if data[: len(MAGIC)] != MAGIC:
        scan.corrupt = True
        scan.problem = "not a WAL segment (bad magic)"
        return scan
    offset = len(MAGIC)
    scan.good_bytes = offset
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            scan.problem = "torn record header"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            scan.problem = f"implausible record length {length} (torn header)"
            break
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            scan.problem = "torn record payload"
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            scan.problem = "record failed CRC32 (torn write)"
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            # The CRC matched, so these bytes were written on purpose;
            # this is a writer bug or tampering, not a torn tail.
            scan.corrupt = True
            scan.problem = f"CRC-valid record is not JSON: {error}"
            break
        scan.records.append(record)
        scan.good_bytes = end
        offset = end
    return scan


class WriteAheadLog:
    """Append-only journal over a directory of numbered segments.

    :param directory: segment directory (created if missing).
    :param fsync: durability policy — ``always`` / ``interval`` / ``off``.
    :param fsync_interval: maximum seconds between fsyncs under the
        ``interval`` policy.
    :param max_segment_bytes: when set, :meth:`append` rotates to a new
        segment once the active one reaches this size, so consumers
        (snapshot compaction, replication shipping) see bounded segments
        without anyone calling :meth:`rotate` by hand.

    Segments are named ``wal-<seq>.log``; sequence numbers only grow.
    The writer opens a *new* segment (it never appends to an existing
    file), so a torn tail left by a crash stays frozen where recovery
    can detect and skip it.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: str = "interval",
        fsync_interval: float = 0.05,
        max_segment_bytes: Optional[int] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if max_segment_bytes is not None and max_segment_bytes <= len(MAGIC):
            raise DurabilityError(
                f"max_segment_bytes must exceed the {len(MAGIC)}-byte "
                f"segment header, got {max_segment_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        self.max_segment_bytes = max_segment_bytes
        self.appended_records = 0
        self.appended_bytes = 0
        self.fsyncs = 0
        self.rotations = 0
        self.unsynced_bytes = 0
        self._file = None
        self._last_fsync = 0.0
        self._lock = threading.RLock()
        self._pins: Dict[str, int] = {}
        self._sequence = self._last_sequence()
        self._open_segment()

    # ------------------------------------------------------------------
    # Segment bookkeeping
    # ------------------------------------------------------------------
    @staticmethod
    def sequence_of(path: Union[str, Path]) -> int:
        """The integer sequence number in a segment name, or -1.

        Ordering must use this, never the path string: lexicographic
        comparison misorders ``wal-1000000.log`` before
        ``wal-999999.log`` once sequences outgrow the zero padding.
        """
        try:
            return int(Path(path).stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return -1

    @classmethod
    def segment_paths(cls, directory: Union[str, Path]) -> List[Path]:
        """All segments under ``directory``, oldest first (by sequence).

        Foreign directory entries that merely match the glob — editor
        temp files like ``wal-000003.log~x`` saved as ``wal-x.log``,
        subdirectories, anything whose name does not parse to a sequence
        number — are not segments and are skipped rather than scanned.
        """
        return sorted(
            (
                path
                for path in Path(directory).glob("wal-*.log")
                if path.is_file() and cls.sequence_of(path) >= 0
            ),
            key=lambda path: (cls.sequence_of(path), path.name),
        )

    def _last_sequence(self) -> int:
        # Scan the raw glob, not segment_paths(): a foreign *directory*
        # named like a segment must still push the writer past its
        # sequence or _open_segment's exclusive create would collide.
        sequences = [
            self.sequence_of(p) for p in Path(self.directory).glob("wal-*.log")
        ]
        return max([0] + sequences)

    def _open_segment(self) -> None:
        self._sequence += 1
        self._path = self.directory / f"wal-{self._sequence:06d}.log"
        self._file = open(self._path, "xb")
        self._file.write(MAGIC)
        self._file.flush()
        self._fsync()

    @property
    def path(self) -> Path:
        """Path of the segment currently being appended to."""
        return self._path

    @property
    def tell(self) -> int:
        """Byte length of the active segment written so far."""
        return self._file.tell()

    @property
    def sequence(self) -> int:
        """Sequence number of the active segment."""
        return self._sequence

    def position(self) -> Tuple[int, int]:
        """Consistent ``(sequence, offset)`` of the end of the journal.

        Taken under the append lock, so the offset never lands inside a
        half-written record — safe to hand out as a replication cursor
        while other threads append.
        """
        with self._lock:
            if self._file is None:
                return self._sequence, len(MAGIC)
            return self._sequence, self._file.tell()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._file is None

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> int:
        """Journal one record; returns the bytes appended.

        The record is flushed to the OS before returning (all policies),
        so a SIGKILL of the process cannot lose an acknowledged append;
        the fsync policy decides what a *power* failure can lose.

        Appends are serialised by an internal lock — the serving layer
        flushes buffered serve keys from executor threads while the
        owning thread may be journalling mutations.
        """
        buffer = encode_record(record)
        with self._lock:
            if self._file is None:
                raise DurabilityError("write-ahead log is closed")
            self._file.write(buffer)
            self._file.flush()
            self.unsynced_bytes += len(buffer)
            if self.fsync_policy == "always":
                self._fsync()
            elif self.fsync_policy == "interval":
                now = time.monotonic()
                if now - self._last_fsync >= self.fsync_interval:
                    self._fsync()
            self.appended_records += 1
            self.appended_bytes += len(buffer)
            backlog = self.unsynced_bytes
            if (
                self.max_segment_bytes is not None
                and self._file.tell() >= self.max_segment_bytes
            ):
                self._rotate_locked()
        if OBS.enabled:
            catalogued("repro_durable_wal_appends_total").inc(
                kind=str(record.get("op", "unknown"))
            )
            catalogued("repro_durable_wal_bytes_total").inc(len(buffer))
            catalogued("repro_durable_wal_backlog_bytes").set(backlog)
        return len(buffer)

    def _fsync(self) -> None:
        os.fsync(self._file.fileno())
        self._last_fsync = time.monotonic()
        self.fsyncs += 1
        self.unsynced_bytes = 0
        if OBS.enabled:
            catalogued("repro_durable_wal_fsyncs_total").inc()
            catalogued("repro_durable_wal_backlog_bytes").set(0)

    def sync(self) -> None:
        """Force the active segment to stable storage."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._fsync()

    # ------------------------------------------------------------------
    # Rotation and compaction
    # ------------------------------------------------------------------
    def rotate(self) -> Path:
        """Seal the active segment and start a new one.

        :returns: the path of the sealed segment.
        """
        with self._lock:
            return self._rotate_locked()

    def _rotate_locked(self) -> Path:
        sealed = self._path
        self._file.flush()
        self._fsync()
        self._file.close()
        self._open_segment()
        self.rotations += 1
        return sealed

    # ------------------------------------------------------------------
    # Retention pinning (replication)
    # ------------------------------------------------------------------
    def pin_segments(self, token: str, sequence: int) -> None:
        """Protect segments with sequences >= ``sequence`` from compaction.

        Each ``token`` (one per live replica) holds at most one pin;
        re-pinning moves it forward as the replica's cursor advances.
        :meth:`drop_segments_before` never deletes a pinned segment, so a
        replica that is behind can always resume from its cursor instead
        of re-bootstrapping.
        """
        with self._lock:
            self._pins[token] = max(0, int(sequence))

    def unpin_segments(self, token: str) -> None:
        """Release ``token``'s retention pin (no-op if absent)."""
        with self._lock:
            self._pins.pop(token, None)

    def pinned_sequence(self) -> Optional[int]:
        """The lowest pinned sequence, or ``None`` when nothing is pinned."""
        with self._lock:
            return min(self._pins.values()) if self._pins else None

    @property
    def pins(self) -> Dict[str, int]:
        """Snapshot of the live retention pins (token -> sequence)."""
        with self._lock:
            return dict(self._pins)

    def drop_segments_before(self, path: Path) -> int:
        """Delete sealed segments with sequences older than ``path``'s
        (compaction).

        Called after a snapshot has made their records redundant.  The
        effective threshold is clamped to the lowest retention pin, so
        segments a live replica still needs survive compaction.

        :returns: the number of segments deleted.
        """
        threshold = self.sequence_of(path)
        pinned = self.pinned_sequence()
        if pinned is not None:
            threshold = min(threshold, pinned)
        dropped = 0
        for segment in self.segment_paths(self.directory):
            if self.sequence_of(segment) >= threshold or segment == self._path:
                continue
            segment.unlink()
            dropped += 1
        return dropped

    def close(self) -> None:
        """Flush, fsync, and close the active segment."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._fsync()
                self._file.close()
                self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def replay_wal(
    directory: Union[str, Path],
) -> Tuple[List[Dict[str, Any]], List[SegmentScan], List[Path]]:
    """Scan every segment under ``directory`` in order.

    :returns: ``(records, scans, paths)`` — the concatenated valid
        records, the per-segment scan reports, and the segment paths.
    :raises WalCorruptionError: when a segment shows damage that a torn
        write cannot explain (see :func:`scan_segment`).
    """
    records: List[Dict[str, Any]] = []
    scans: List[SegmentScan] = []
    paths = WriteAheadLog.segment_paths(directory)
    for path in paths:
        scan = scan_segment(path)
        if scan.corrupt:
            raise WalCorruptionError(f"{path}: {scan.problem}")
        records.extend(scan.records)
        scans.append(scan)
    return records, scans, paths


def iter_wal(directory: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield every valid record under ``directory``, oldest first."""
    records, _, _ = replay_wal(directory)
    return iter(records)
