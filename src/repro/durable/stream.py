"""Streaming WAL reader: cursors, batched range reads, and tail-follow.

Replication ships the write-ahead log as-is — the primary's journal *is*
the replication stream.  This module adds the read side that shipping
needs and recovery does not: resumable positions (:class:`WalCursor`),
bounded batch reads from a position (:func:`read_from`), and a polling
generator that follows the live tail (:func:`follow`).

Cursor semantics
----------------

A cursor is ``(sequence, offset)``: the segment's parsed sequence number
and an absolute byte offset within that segment.  A cursor always points
at a record *boundary* — the reader only ever advances past complete,
CRC-verified records, so resuming from any cursor it handed out yields
exactly the records that follow, never a partial one.  The zero cursor
``(0, 0)`` means "from the oldest segment on disk".

Torn tails
----------

The same crash taxonomy as recovery (:mod:`repro.durable.wal`), applied
per segment position in the stream:

* torn bytes at the end of a **sealed** segment (one with a newer
  segment after it) are the frozen signature of an old crash — the
  writer opened a fresh segment and never acknowledged the torn record,
  so the reader skips them and continues at the next segment;
* torn bytes at the end of the **newest** segment are an append that may
  still be in flight — the reader stops *before* them and reports
  ``caught_up``; the next poll retries from the same cursor;
* bad magic or a CRC-valid non-JSON payload is structural corruption and
  raises :class:`~repro.exceptions.WalCorruptionError`, exactly as
  recovery would.

If the cursor's segment has been compacted away (or names a sequence
past everything on disk), :class:`~repro.exceptions.CursorLostError` is
raised — the replica fell outside the retention window and must
re-bootstrap from a full snapshot.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.durable.wal import _HEADER, MAGIC, MAX_RECORD_BYTES, WriteAheadLog
from repro.exceptions import CursorLostError, ReplicationError, WalCorruptionError

#: Default per-batch limits for :func:`read_from`.
DEFAULT_MAX_RECORDS = 512
DEFAULT_MAX_BYTES = 1 << 20


@dataclass(frozen=True, order=True)
class WalCursor:
    """A resumable position in the WAL: ``(segment sequence, byte offset)``.

    Ordered lexicographically, which matches stream order because
    sequence numbers only grow.  Serialised as ``"<sequence>:<offset>"``
    for transport in URLs and JSON.
    """

    sequence: int = 0
    offset: int = 0

    def encode(self) -> str:
        """Wire form, e.g. ``"12:4096"``."""
        return f"{self.sequence}:{self.offset}"

    @classmethod
    def decode(cls, text: str) -> "WalCursor":
        """Parse the wire form; raises :class:`ReplicationError` if malformed."""
        try:
            sequence_text, _, offset_text = str(text).partition(":")
            sequence = int(sequence_text)
            offset = int(offset_text)
        except (TypeError, ValueError):
            raise ReplicationError(
                f"malformed WAL cursor {text!r}; expected '<sequence>:<offset>'"
            ) from None
        if sequence < 0 or offset < 0:
            raise ReplicationError(
                f"malformed WAL cursor {text!r}; sequence and offset must be >= 0"
            )
        return cls(sequence, offset)

    @property
    def is_zero(self) -> bool:
        """True for the from-the-beginning cursor ``(0, 0)``."""
        return self.sequence == 0 and self.offset == 0


@dataclass
class StreamBatch:
    """One bounded read from the stream.

    :param records: complete, CRC-verified records in journal order.
    :param start: the cursor the read began from.
    :param cursor: position after the last returned record — resume here.
    :param boundaries: cursor after each record (parallel to ``records``),
        so a consumer can persist a resume point mid-batch.
    :param caught_up: True when the read stopped because no further
        complete records exist on disk (rather than hitting a limit).
    :param pending_bytes: bytes on disk past ``cursor`` (live torn tails
        included — an upper bound on remaining replication lag).
    :param shipped_bytes: framed size of the returned records.
    """

    records: List[Dict[str, Any]] = field(default_factory=list)
    start: WalCursor = field(default_factory=WalCursor)
    cursor: WalCursor = field(default_factory=WalCursor)
    boundaries: List[WalCursor] = field(default_factory=list)
    caught_up: bool = True
    pending_bytes: int = 0
    shipped_bytes: int = 0


def _locate(
    paths: List[Path], sequences: List[int], cursor: WalCursor
) -> Tuple[int, int]:
    """Map a cursor to (segment index, byte offset) or raise CursorLostError."""
    if cursor.is_zero:
        return 0, 0
    if cursor.sequence in sequences:
        return sequences.index(cursor.sequence), cursor.offset
    if cursor.sequence > sequences[-1]:
        raise CursorLostError(
            f"cursor {cursor.encode()} is past every WAL segment on disk "
            f"(newest is {sequences[-1]}); the primary holds older state "
            f"than this cursor was issued against"
        )
    raise CursorLostError(
        f"cursor {cursor.encode()} points at a compacted-away segment "
        f"(oldest on disk is {sequences[0]}); re-bootstrap required"
    )


def read_from(
    directory: Union[str, Path],
    cursor: WalCursor = WalCursor(),
    max_records: int = DEFAULT_MAX_RECORDS,
    max_bytes: int = DEFAULT_MAX_BYTES,
) -> StreamBatch:
    """Read up to ``max_records`` / ``max_bytes`` of records after ``cursor``.

    Never returns a partial record: the batch cursor always lands on a
    record boundary, and re-reading from it reproduces the stream
    bit-exactly.  See the module docstring for torn-tail semantics.

    :raises CursorLostError: the cursor's segment is gone (compacted).
    :raises WalCorruptionError: structural damage a torn write cannot explain.
    """
    if max_records < 1 or max_bytes < 1:
        raise ReplicationError(
            f"read_from limits must be >= 1, got max_records={max_records} "
            f"max_bytes={max_bytes}"
        )
    directory = Path(directory)
    paths = WriteAheadLog.segment_paths(directory)
    if not paths:
        if not cursor.is_zero:
            raise CursorLostError(
                f"cursor {cursor.encode()} but no WAL segments under {directory}"
            )
        return StreamBatch(start=cursor, cursor=cursor)

    sequences = [WriteAheadLog.sequence_of(p) for p in paths]
    index, offset = _locate(paths, sequences, cursor)

    batch = StreamBatch(start=cursor, cursor=cursor, caught_up=False)
    limited = False
    while index < len(paths):
        path = paths[index]
        sequence = sequences[index]
        is_last = index == len(paths) - 1
        data = path.read_bytes()
        if offset < len(MAGIC):
            # Entering a segment at its start: verify the magic header.
            prefix = data[: len(MAGIC)]
            if len(data) >= len(MAGIC) and prefix != MAGIC:
                raise WalCorruptionError(f"{path}: not a WAL segment (bad magic)")
            if len(data) < len(MAGIC):
                if data and not MAGIC.startswith(data):
                    raise WalCorruptionError(
                        f"{path}: not a WAL segment (bad magic)"
                    )
                # Torn magic write: skip if sealed, wait if live.
                if is_last:
                    batch.caught_up = True
                    break
                index += 1
                offset = 0
                batch.cursor = WalCursor(sequences[index], 0)
                continue
            offset = len(MAGIC)
            batch.cursor = WalCursor(sequence, offset)
        torn = False
        while offset < len(data):
            if (
                len(batch.records) >= max_records
                or batch.shipped_bytes >= max_bytes
            ):
                limited = True
                break
            if offset + _HEADER.size > len(data):
                torn = True
                break
            length, crc = _HEADER.unpack_from(data, offset)
            if length > MAX_RECORD_BYTES:
                torn = True  # implausible length: garbage from a torn header
                break
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                torn = True
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                torn = True
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise WalCorruptionError(
                    f"{path}: CRC-valid record is not JSON: {error}"
                ) from None
            offset = end
            batch.records.append(record)
            batch.shipped_bytes += _HEADER.size + length
            batch.cursor = WalCursor(sequence, offset)
            batch.boundaries.append(batch.cursor)
        if limited:
            break
        if torn and is_last:
            # A write may be in flight; stop before it and retry later.
            batch.caught_up = True
            break
        if is_last:
            batch.caught_up = True
            break
        # Sealed segment exhausted (cleanly or with a frozen torn tail):
        # advance to the start of the next segment.
        index += 1
        offset = 0
        batch.cursor = WalCursor(sequences[index], 0)

    batch.pending_bytes = pending_bytes_from(directory, batch.cursor)
    return batch


def pending_bytes_from(
    directory: Union[str, Path], cursor: WalCursor
) -> int:
    """Bytes on disk past ``cursor`` (an upper bound on replication lag:
    live torn tails and segment headers still to be skipped count)."""
    pending = 0
    for path in WriteAheadLog.segment_paths(directory):
        sequence = WriteAheadLog.sequence_of(path)
        if sequence < cursor.sequence:
            continue
        try:
            size = path.stat().st_size
        except OSError:
            continue  # compacted between listing and stat
        if sequence == cursor.sequence:
            pending += max(0, size - max(cursor.offset, len(MAGIC)))
        else:
            pending += max(0, size - len(MAGIC))
    return pending


def count_records_from(
    directory: Union[str, Path],
    cursor: WalCursor = WalCursor(),
    limit: int = 4096,
) -> int:
    """Count complete records after ``cursor``, capped at ``limit``.

    A frame walk without JSON decoding — cheap enough to answer "how many
    records is the replica behind?" on every status probe.  Torn tails
    and lost cursors count as zero further records rather than raising.
    """
    paths = WriteAheadLog.segment_paths(directory)
    if not paths:
        return 0
    sequences = [WriteAheadLog.sequence_of(p) for p in paths]
    try:
        index, offset = _locate(paths, sequences, cursor)
    except CursorLostError:
        return 0
    count = 0
    while index < len(paths) and count < limit:
        try:
            data = paths[index].read_bytes()
        except OSError:
            break
        offset = max(offset, len(MAGIC))
        while offset < len(data) and count < limit:
            if offset + _HEADER.size > len(data):
                break
            length, crc = _HEADER.unpack_from(data, offset)
            if length > MAX_RECORD_BYTES:
                break
            end = offset + _HEADER.size + length
            if end > len(data):
                break
            if zlib.crc32(data[offset + _HEADER.size : end]) != crc:
                break
            count += 1
            offset = end
        index += 1
        offset = 0
    return count


def follow(
    directory: Union[str, Path],
    cursor: WalCursor = WalCursor(),
    poll_interval: float = 0.02,
    stop: Optional[Callable[[], bool]] = None,
    max_records: int = DEFAULT_MAX_RECORDS,
) -> Iterator[Tuple[Dict[str, Any], WalCursor]]:
    """Follow the live tail, yielding ``(record, cursor_after_record)``.

    Polls :func:`read_from` and sleeps ``poll_interval`` whenever it is
    caught up; returns once ``stop()`` goes true while caught up.  Each
    yielded cursor is a valid resume point: a new ``follow`` (or
    :func:`read_from`) started there continues with the next record.
    """
    position = cursor
    while True:
        batch = read_from(directory, position, max_records=max_records)
        for record, boundary in zip(batch.records, batch.boundaries):
            yield record, boundary
        position = batch.cursor
        if batch.caught_up:
            if stop is not None and stop():
                return
            time.sleep(poll_interval)
