"""repro.durable — persistence and crash recovery for the serving stack.

The durability layer the rest of the engine plugs into:

* :mod:`repro.durable.wal` — an append-only, CRC32-checksummed journal
  of table mutations with configurable fsync policy and torn-tail
  detection;
* :mod:`repro.durable.snapshot` — compact columnar table images
  (float64 numpy columns + JSON side tables), written atomically;
* :mod:`repro.durable.recover` — snapshot + WAL replay reconstruction
  restoring each table's exact monotone ``version``;
* :mod:`repro.durable.db` — :class:`DurableDB`, the journalled
  :class:`~repro.query.engine.UncertainDB` that ``repro serve
  --data-dir`` and the ``repro durable`` CLI subcommands drive.

::

    from repro.durable import DurableDB

    with DurableDB("state/") as db:
        db.register(table)
        db.add("sightings", "t43", score=12.0, probability=0.7)
        db.snapshot()                   # checkpoint + WAL compaction
    # ... crash or restart ...
    db = DurableDB("state/")            # recovers tables and versions

See ``docs/persistence.md`` for the record format, fsync policies,
recovery invariants, and the operational runbook.
"""

from repro.durable.db import DurableDB, load_tables_into
from repro.durable.recover import (
    RecoveryReport,
    VerifyReport,
    recover_state,
    verify_data_dir,
)
from repro.durable.snapshot import (
    SnapshotColumns,
    compact_snapshots,
    open_latest_snapshot_columns,
    open_snapshot_columns,
    read_snapshot,
    write_snapshot,
)
from repro.durable.stream import (
    StreamBatch,
    WalCursor,
    count_records_from,
    follow,
    pending_bytes_from,
    read_from,
)
from repro.durable.wal import (
    SegmentScan,
    WriteAheadLog,
    replay_wal,
    scan_segment,
)

__all__ = [
    "DurableDB",
    "RecoveryReport",
    "SegmentScan",
    "SnapshotColumns",
    "StreamBatch",
    "VerifyReport",
    "WalCursor",
    "WriteAheadLog",
    "compact_snapshots",
    "count_records_from",
    "follow",
    "load_tables_into",
    "open_latest_snapshot_columns",
    "open_snapshot_columns",
    "pending_bytes_from",
    "read_from",
    "read_snapshot",
    "recover_state",
    "replay_wal",
    "scan_segment",
    "verify_data_dir",
    "write_snapshot",
]
