"""``DurableDB``: an :class:`~repro.query.engine.UncertainDB` that survives
restarts.

Every mutation routed through this class is applied to the in-memory
table first (so validation still rejects bad data with the usual
exceptions) and then journalled to the write-ahead log — the WAL record
is the durability point.  Opening a :class:`DurableDB` on an existing
data directory runs crash recovery (:mod:`repro.durable.recover`):
tables come back with their exact contents, rule tags, and monotone
``version``, and the prepare cache is warmed by re-preparing the query
keys production traffic was using before the restart.

Mutations **must** go through this class's methods (``add``,
``add_exclusive``, ``remove_tuple``, ``update_probability``) rather
than directly through the table object — a direct table mutation is
invisible to the journal and will not survive a restart.

Layout of a data directory::

    data_dir/
      wal/        wal-000001.log ...     (repro.durable.wal)
      snapshots/  <name>-v<version>.snap (repro.durable.snapshot)

:meth:`snapshot` checkpoints every registered table (atomic
write-then-rename), rotates the WAL, and deletes the segments and
snapshot generations the new images made redundant, bounding both
recovery time and disk use.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.durable.recover import RecoveryReport, recover_state
from repro.durable.snapshot import compact_snapshots, write_snapshot
from repro.durable.wal import WriteAheadLog, encode_tid
from repro.exceptions import QueryError, ReproError
from repro.io.jsonio import table_to_dict
from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.obs import OBS, catalogued, span as obs_span
from repro.query.engine import UncertainDB
from repro.query.predicates import AlwaysTrue
from repro.query.topk import TopKQuery


class DurableDB(UncertainDB):
    """A persistent registry of uncertain tables.

    :param data_dir: directory holding the WAL and snapshots; created
        (and left empty apart from the first WAL segment) when missing.
    :param fsync: WAL fsync policy — ``always`` / ``interval`` / ``off``
        (see :mod:`repro.durable.wal`).
    :param fsync_interval: maximum seconds between fsyncs under the
        ``interval`` policy.
    :param warm_start: re-prepare the journalled recently-served query
        keys after recovery so the first post-restart queries hit a warm
        prepare cache.
    :param max_segment_bytes: size-based WAL auto-rotation threshold
        (see :class:`~repro.durable.wal.WriteAheadLog`); ``None`` keeps
        rotation manual (snapshot-time only).
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        fsync: str = "interval",
        fsync_interval: float = 0.05,
        warm_start: bool = True,
        max_segment_bytes: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        tables, report = recover_state(self.data_dir)
        self.last_recovery: RecoveryReport = report
        for name, table in tables.items():
            super().register(table, name=name)
        self.wal = WriteAheadLog(
            self.data_dir / "wal",
            fsync=fsync,
            fsync_interval=fsync_interval,
            max_segment_bytes=max_segment_bytes,
        )
        # Registration epoch per name (how many times the name has been
        # registered, ever) — stamps register records and snapshots so a
        # re-registered table supersedes its dropped predecessor.
        self._epochs: Dict[str, int] = dict(report.epochs)
        # Serve-key bookkeeping.  The lock exists because the serving
        # layer defers and flushes keys from executor threads.
        self._serve_lock = threading.Lock()
        # (table name, where) pairs journalled into the active segment;
        # dedupe keeps the serve-key journal O(distinct keys) per segment.
        self._journalled_serves: Set[Tuple[str, Optional[str]]] = set()
        self._recent_serves: Dict[Tuple[str, Optional[str]], int] = {}
        # Keys noted with defer=True, awaiting a flush_serves() call.
        self._pending_serves: Dict[Tuple[str, Optional[str]], int] = {}
        for name, k, where in report.serve_keys:
            self._recent_serves[(name, where)] = k
        if warm_start:
            self._warm_prepare_cache(report)

    # ------------------------------------------------------------------
    # Journalled catalogue operations
    # ------------------------------------------------------------------
    def register(self, table: UncertainTable, name: Optional[str] = None) -> str:
        """Register and journal a table (full document + exact version).

        The name's registration epoch is bumped and journalled with the
        record: recovery and snapshot ranking key on ``(epoch,
        version)``, so a replacement registered after a drop supersedes
        the dropped table even though its version restarts low.
        """
        key = super().register(table, name=name)
        epoch = self._epochs.get(key, 0) + 1
        self._epochs[key] = epoch
        self.wal.append(
            {
                "op": "register",
                "table": key,
                "epoch": epoch,
                "version": table.version,
                "doc": table_to_dict(table),
            }
        )
        if self.dynamic is not None:
            # Re-register under the *bumped* epoch (the base register
            # hook ran before the bump and used the stale one).
            self.dynamic.register(key, epoch)
        return key

    def drop(self, name: str) -> None:
        """Drop a table from the registry and the journal's future.

        The name's epoch entry is kept so a future re-registration
        still outranks any of this table's surviving snapshots.
        """
        super().drop(name)
        self.wal.append({"op": "drop", "table": name})
        with self._serve_lock:
            self._recent_serves = {
                key: k for key, k in self._recent_serves.items() if key[0] != name
            }
            self._pending_serves = {
                key: k for key, k in self._pending_serves.items() if key[0] != name
            }

    def epochs(self) -> Dict[str, int]:
        """Registration epoch per table name (names ever registered,
        including currently dropped ones)."""
        return dict(self._epochs)

    def fence(self) -> Dict[str, int]:
        """Bump every registered table's epoch and journal fresh full
        register records — the failover promotion step.

        Recovery and snapshot ranking key on ``(epoch, version)``, so
        after fencing, no state from the previous lineage (stale
        snapshots, segments shipped from a dead primary) can ever
        supersede this database's tables, even though their versions
        continue from where the old primary left off.

        :returns: the new epoch per registered table name.
        """
        fenced: Dict[str, int] = {}
        for name in self.tables():
            table = self.table(name)
            epoch = self._epochs.get(name, 0) + 1
            self._epochs[name] = epoch
            self.wal.append(
                {
                    "op": "register",
                    "table": name,
                    "epoch": epoch,
                    "version": table.version,
                    "doc": table_to_dict(table),
                }
            )
            if self.dynamic is not None:
                self.dynamic.register(name, epoch)
            fenced[name] = epoch
        self.wal.sync()
        return fenced

    # ------------------------------------------------------------------
    # Journalled mutations
    # ------------------------------------------------------------------
    # Each method delegates to the engine-level mutation (validation,
    # prepared-ranking refresh, dynamic-index delta) and then journals
    # the committed record; a rejected mutation raises before either.

    def _dynamic_epoch(self, name: str) -> int:
        return self._epochs.get(name, 0)

    def add(
        self,
        name: str,
        tid: Any,
        score: float,
        probability: float,
        **attributes: Any,
    ) -> UncertainTuple:
        """Add one tuple to a registered table, journalled."""
        tup = super().add(name, tid, score, probability, **attributes)
        self.wal.append(
            {
                "op": "add",
                "table": name,
                "version": self.table(name).version,
                "tid": encode_tid(tid),
                "score": float(score),
                "probability": float(tup.probability),
                "attributes": dict(attributes),
            }
        )
        return tup

    def add_rule(self, name: str, rule: GenerationRule) -> None:
        """Attach a multi-tuple generation rule, journalled."""
        super().add_rule(name, rule)
        self.wal.append(
            {
                "op": "rule",
                "table": name,
                "version": self.table(name).version,
                "rule_id": rule.rule_id,
                "members": [encode_tid(tid) for tid in rule.tuple_ids],
            }
        )

    def remove_tuple(self, name: str, tid: Any) -> UncertainTuple:
        """Remove one tuple (shrinking its rule), journalled."""
        removed = super().remove_tuple(name, tid)
        self.wal.append(
            {
                "op": "remove",
                "table": name,
                "version": self.table(name).version,
                "tid": encode_tid(tid),
            }
        )
        return removed

    def update_probability(self, name: str, tid: Any, probability: float) -> UncertainTuple:
        """Replace one tuple's membership probability, journalled."""
        updated = super().update_probability(name, tid, probability)
        self.wal.append(
            {
                "op": "update",
                "table": name,
                "version": self.table(name).version,
                "tid": encode_tid(tid),
                "probability": float(updated.probability),
            }
        )
        return updated

    def update_score(self, name: str, tid: Any, score: float) -> UncertainTuple:
        """Replace one tuple's ranking score, journalled."""
        updated = super().update_score(name, tid, score)
        self.wal.append(
            {
                "op": "score",
                "table": name,
                "version": self.table(name).version,
                "tid": encode_tid(tid),
                "score": float(updated.score),
            }
        )
        return updated

    # ------------------------------------------------------------------
    # Serve-key journaling (prepare-cache warm start)
    # ------------------------------------------------------------------
    def note_served(
        self,
        name: str,
        k: int,
        where: Optional[str] = None,
        defer: bool = False,
    ) -> None:
        """Journal that ``(name, predicate, default ranking)`` was served.

        The prepare cache keys on (predicate, ranking) — ``k`` only
        shapes the reconstruction query, so one record per distinct
        ``(table, where)`` pair per WAL segment suffices.  ``where`` is
        the predicate's expression string (``repro.query.parser``
        syntax) or ``None`` for the trivial predicate.

        With ``defer=True`` the key is only buffered — no WAL append
        (and under ``--fsync always`` no fsync) happens on the caller's
        thread; :meth:`flush_serves` journals the buffer later.  The
        serving layer uses this so batch dispatch never stalls on the
        journal; buffered keys also land on :meth:`snapshot` and
        :meth:`close`.
        """
        with self._serve_lock:
            self._recent_serves[(name, where)] = k
            if defer:
                if (name, where) not in self._journalled_serves:
                    self._pending_serves[(name, where)] = k
                return
        self._journal_serve(name, k, where)

    def flush_serves(self) -> int:
        """Journal every serve key buffered by ``note_served(defer=True)``.

        Safe to call from any thread and after :meth:`close` (a closed
        journal makes it a no-op).

        :returns: the number of records appended.
        """
        with self._serve_lock:
            if not self._pending_serves or self.wal.closed:
                return 0
            pending = list(self._pending_serves.items())
            self._pending_serves.clear()
        started = time.perf_counter()
        appended = sum(
            self._journal_serve(name, k, where)
            for (name, where), k in pending
        )
        if appended and OBS.enabled:
            elapsed = time.perf_counter() - started
            catalogued("repro_durable_serve_flush_seconds").observe(elapsed)
            OBS.flight.note_serve_flush(elapsed)
        return appended

    def _journal_serve(self, name: str, k: int, where: Optional[str]) -> int:
        """Append one serve record unless this segment already has it."""
        with self._serve_lock:
            if (name, where) in self._journalled_serves:
                return 0
            self._journalled_serves.add((name, where))
        self.wal.append({"op": "serve", "table": name, "k": int(k), "where": where})
        return 1

    def ptk(self, name: str, k: int, threshold: float, query=None, **kwargs):
        self._auto_note(name, k, query)
        return super().ptk(name, k, threshold, query=query, **kwargs)

    def ptk_sampled(self, name: str, k: int, threshold: float, query=None, **kwargs):
        self._auto_note(name, k, query)
        return super().ptk_sampled(name, k, threshold, query=query, **kwargs)

    def ptk_batch(self, name: str, requests, **kwargs):
        if requests:
            self._auto_note(name, max(k for k, _ in requests), None)
        return super().ptk_batch(name, requests, **kwargs)

    def _auto_note(self, name: str, k: int, query: Optional[TopKQuery]) -> None:
        """Journal default-shaped queries; opaque predicates are skipped
        (they have no serialisable identity to re-prepare from)."""
        if query is not None and not (
            isinstance(query.predicate, AlwaysTrue)
            and query.ranking.cache_key() == ("score", True)
        ):
            return
        self.note_served(name, k)

    def _warm_prepare_cache(self, report: RecoveryReport) -> None:
        """Re-prepare the journalled serve keys against recovered tables."""
        from repro.query.parser import parse_predicate

        for name, k, where in report.serve_keys:
            if name not in self.tables():
                continue
            try:
                if where is None:
                    query = TopKQuery(k=max(int(k), 1))
                else:
                    query = TopKQuery(
                        k=max(int(k), 1), predicate=parse_predicate(where)
                    )
                self.prepare_cache.get(self.table(name), query)
            except ReproError as error:
                report.problems.append(
                    f"warm-start skipped ({name!r}, k={k}, "
                    f"where={where!r}): {error}"
                )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self, compact: bool = True) -> List[Path]:
        """Checkpoint every registered table and rotate the WAL.

        After the images land (atomic rename each), the WAL rotates to a
        fresh segment; with ``compact=True`` the superseded snapshot
        generations — including *every* generation of names no longer
        registered — are deleted first, then the sealed WAL segments.
        That order is crash-safe: stale snapshots of a dropped table are
        gone before the WAL record of its drop can be compacted away,
        and replay ``(epoch, version)`` gating covers the remaining
        windows.

        :returns: the snapshot paths written.
        """
        timer = (
            catalogued("repro_durable_snapshot_seconds").time()
            if OBS.enabled
            else None
        )
        started = time.perf_counter()
        with obs_span(
            "durable.snapshot", data_dir=str(self.data_dir)
        ) as span:
            if timer is not None:
                timer.__enter__()
            try:
                paths = [
                    write_snapshot(
                        self.table(name),
                        self.data_dir / "snapshots",
                        name=name,
                        epoch=self._epochs.get(name, 0),
                    )
                    for name in self.tables()
                ]
                sealed = self.wal.rotate()
                with self._serve_lock:
                    self._journalled_serves.clear()
                    self._pending_serves.clear()
                    recent = list(self._recent_serves.items())
                for (name, where), k in recent:
                    if name in self.tables():
                        self._journal_serve(name, k, where)
                if compact:
                    # Snapshots before WAL segments: once the sealed
                    # segment holding a 'drop' record is gone, no stale
                    # snapshot of the dropped table may remain to be
                    # resurrected by the next recovery.
                    compact_snapshots(
                        self.data_dir / "snapshots",
                        keep=1,
                        registered=set(self.tables()),
                    )
                    self.wal.drop_segments_before(self.wal.path)
            finally:
                if timer is not None:
                    timer.__exit__(None, None, None)
            span.set(
                tables=len(paths),
                sealed_segment=sealed.name,
                seconds=round(time.perf_counter() - started, 6),
            )
        return paths

    def close(self) -> None:
        """Flush buffered serve keys, then close the WAL (the database
        stays queryable)."""
        self.flush_serves()
        self.wal.close()

    def __enter__(self) -> "DurableDB":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def load_tables_into(db: DurableDB, directory: Union[str, Path]) -> List[str]:
    """Register every table file under ``directory`` that is not already
    registered (by name), journalling each — the ``repro serve
    --data-dir`` bootstrap path.

    :returns: the names newly registered.
    """
    from repro.cli import load_table

    directory = Path(directory)
    registered: List[str] = []
    paths = sorted(
        list(directory.glob("*.json")) + list(directory.glob("*.tuples.csv"))
    )
    for path in paths:
        table = load_table(str(path))
        name = table.name
        if name in db.tables():
            name = path.name.split(".")[0]
        if name in db.tables():
            continue
        try:
            db.register(table, name=name)
        except QueryError:
            continue
        registered.append(name)
    return registered
