"""Columnar table snapshots: compact, checksummed, atomically replaced.

A snapshot freezes one :class:`~repro.model.table.UncertainTable` at one
``version``.  The numeric columns (scores, membership probabilities) are
stored as raw little-endian float64 numpy arrays — the compact on-disk
representation that makes large probabilistic tables cheap to reload —
and everything irregular (tuple ids, sparse attributes, rule tags) lives
in a JSON header::

    file   := MAGIC ("RPSNAP01") <u32 crc32(body)> <u32 header_len> body
    body   := header_json scores_f64[] probabilities_f64[]
    header := {"name", "epoch", "version", "count", "tids", "attributes",
               "rules": [{"rule_id", "members"}, ...]}

Tuple ids follow the :mod:`repro.io.jsonio` convention: tuple-typed ids
are written as arrays and revived on read.  ``attributes`` is sparse —
only tuples with a non-empty attribute mapping appear, keyed by their
position in the column order.

Writes are crash-safe by construction: the file is built under a
``*.tmp`` name in the destination directory, fsynced, then atomically
renamed over the target (``os.replace``).  Readers therefore only ever
see complete snapshots; a crash mid-write leaves a stale ``*.tmp`` that
:func:`write_snapshot` and compaction clean up.

One table accumulates one file per snapshotted version
(``<safe-name>.<name-crc>-e<epoch>-v<version>.snap``); recovery picks
the newest one that passes its CRC and falls back to older generations,
and :func:`compact_snapshots` deletes superseded files once a newer one
has landed.

"Newest" is decided by ``(epoch, version)``, not raw version: the
*registration epoch* counts how many times a registry name has been
(re-)registered, so a replacement table re-registered after a drop —
which restarts at a low ``version`` — still outranks the dropped
predecessor's high-version snapshots.  Files written before epochs
existed read as epoch 0.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.kernel import TableColumns, columnar_topk_scan, ranked_order
from repro.exceptions import SnapshotCorruptionError
from repro.durable.wal import decode_tid, encode_tid
from repro.model.table import UncertainTable
from repro.obs import OBS, catalogued

MAGIC = b"RPSNAP01"
_PREFIX = struct.Struct("<II")  # crc32(body), header length


def snapshot_filename(name: str, version: int, epoch: int = 0) -> str:
    """Deterministic snapshot filename for ``(name, epoch, version)``.

    The sanitised name keeps listings readable; the CRC32 of the exact
    name disambiguates tables whose names sanitise identically, and the
    epoch keeps a re-registered table's files distinct from its dropped
    predecessor's.
    """
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in name)[:80]
    return (
        f"{safe or 'table'}.{zlib.crc32(name.encode('utf-8')):08x}"
        f"-e{epoch:06d}-v{version:012d}.snap"
    )


def snapshot_rank(header: Dict[str, Any]) -> Tuple[int, int]:
    """Recency key of a snapshot header: ``(epoch, version)``.

    Pre-epoch files (no ``epoch`` field) rank as epoch 0.
    """
    return int(header.get("epoch", 0)), int(header["version"])


def serialize_table(
    table: UncertainTable, name: Optional[str] = None, epoch: int = 0
) -> bytes:
    """The complete snapshot file image for ``table`` (header + columns).

    :param name: registry name to record; defaults to ``table.name``.
    :param epoch: registration epoch of the registry name.
    """
    tuples = table.tuples()
    scores = np.array([t.score for t in tuples], dtype="<f8")
    probabilities = np.array([t.probability for t in tuples], dtype="<f8")
    attributes = {
        str(position): dict(tup.attributes)
        for position, tup in enumerate(tuples)
        if tup.attributes
    }
    header = {
        "name": name if name is not None else table.name,
        "table_name": table.name,
        "epoch": int(epoch),
        "version": table.version,
        "count": len(tuples),
        "tids": [encode_tid(t.tid) for t in tuples],
        "attributes": attributes,
        "rules": [
            {
                "rule_id": rule.rule_id,
                "members": [encode_tid(tid) for tid in rule.tuple_ids],
            }
            for rule in table.multi_rules()
        ],
    }
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    body = header_bytes + scores.tobytes() + probabilities.tobytes()
    return MAGIC + _PREFIX.pack(zlib.crc32(body), len(header_bytes)) + body


def deserialize_table(data: bytes, source: str = "<bytes>") -> Tuple[UncertainTable, str]:
    """Rebuild ``(table, registry name)`` from a snapshot image.

    The table's :attr:`~repro.model.table.UncertainTable.version` is
    restored to the exact journalled value — the recovery invariant the
    prepare cache's version keying relies on.

    :raises SnapshotCorruptionError: on a bad magic, CRC mismatch, or
        undecodable header.
    """
    if len(data) < len(MAGIC) + _PREFIX.size or data[: len(MAGIC)] != MAGIC:
        raise SnapshotCorruptionError(f"{source}: not a snapshot (bad magic)")
    crc, header_len = _PREFIX.unpack_from(data, len(MAGIC))
    body = data[len(MAGIC) + _PREFIX.size:]
    if zlib.crc32(body) != crc:
        raise SnapshotCorruptionError(f"{source}: snapshot failed CRC32")
    try:
        header = json.loads(body[:header_len].decode("utf-8"))
        count = int(header["count"])
        columns = body[header_len:]
        scores = np.frombuffer(columns, dtype="<f8", count=count)
        probabilities = np.frombuffer(
            columns, dtype="<f8", count=count, offset=count * 8
        )
        table = UncertainTable(name=header.get("table_name") or header["name"])
        attributes = header.get("attributes", {})
        for position, tid in enumerate(header["tids"]):
            table.add(
                decode_tid(tid),
                score=float(scores[position]),
                probability=float(probabilities[position]),
                **attributes.get(str(position), {}),
            )
        for rule in header.get("rules", []):
            table.add_exclusive(
                rule["rule_id"], *[decode_tid(m) for m in rule["members"]]
            )
        table.validate()
        table._version = int(header["version"])
    except SnapshotCorruptionError:
        raise
    except Exception as error:
        raise SnapshotCorruptionError(
            f"{source}: undecodable snapshot: {error}"
        ) from error
    return table, header["name"]


def read_header(path: Union[str, Path]) -> Dict[str, Any]:
    """Decode just the JSON header of a snapshot file (no CRC check).

    Used to order candidate files by version cheaply; full validation
    happens in :func:`read_snapshot` when a candidate is actually loaded.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        prefix = handle.read(len(MAGIC) + _PREFIX.size)
        if len(prefix) < len(MAGIC) + _PREFIX.size or prefix[: len(MAGIC)] != MAGIC:
            raise SnapshotCorruptionError(f"{path}: not a snapshot (bad magic)")
        _, header_len = _PREFIX.unpack_from(prefix, len(MAGIC))
        try:
            return json.loads(handle.read(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SnapshotCorruptionError(
                f"{path}: undecodable snapshot header: {error}"
            ) from error


def write_snapshot(
    table: UncertainTable,
    directory: Union[str, Path],
    name: Optional[str] = None,
    epoch: int = 0,
) -> Path:
    """Write one snapshot atomically; returns the final path.

    The image lands under a temporary name first and is renamed into
    place only after an fsync, so readers never observe a partial file.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    registry_name = name if name is not None else table.name
    target = directory / snapshot_filename(registry_name, table.version, epoch)
    data = serialize_table(table, name=registry_name, epoch=epoch)
    temporary = target.with_name(target.name + ".tmp")
    with open(temporary, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, target)
    _fsync_directory(directory)
    if OBS.enabled:
        catalogued("repro_durable_snapshot_bytes").observe(len(data))
    return target


def read_snapshot(path: Union[str, Path]) -> Tuple[UncertainTable, str]:
    """Load and fully validate one snapshot file."""
    return deserialize_table(Path(path).read_bytes(), source=str(path))


@dataclass
class SnapshotColumns:
    """Zero-copy columnar view over one snapshot file.

    ``score`` and ``probability`` are read-only ``numpy.memmap`` views
    straight over the on-disk float64 columns — the same layout (and
    the same :class:`~repro.core.kernel.TableColumns` consumers) the
    in-memory prepared rankings use — so serving a recovered table's
    full-scan queries never materialises per-tuple python objects.

    Mmap lifecycle: the mapping stays valid for as long as any derived
    array is referenced and closes when the arrays are collected; on
    POSIX, compaction unlinking the file does not invalidate a live
    mapping.  Consumers must treat the arrays as immutable (the mode-r
    map enforces it).
    """

    path: Path
    name: str
    table_name: str
    epoch: int
    version: int
    tids: Tuple[Any, ...]
    score: np.ndarray
    probability: np.ndarray
    #: ``(rule_id, member tids)`` per multi-tuple rule, as journalled.
    rules: Tuple[Tuple[Any, Tuple[Any, ...]], ...]

    def __len__(self) -> int:
        return len(self.tids)

    @cached_property
    def ranked_columns(self) -> TableColumns:
        """The snapshot re-ordered into ranking order, as kernel columns.

        Snapshots persist insertion order, so serving the exact DP
        needs one vectorized ``lexsort`` gather (score descending,
        stringified tid ascending — the library's canonical ranking).
        The gather copies the two float64 columns; the source stays
        memory-mapped.
        """
        order = ranked_order(np.asarray(self.score, dtype=np.float64), self.tids)
        ranked_tids = tuple(self.tids[i] for i in order)
        slot_of: Dict[Any, int] = {}
        rule_ids: List[Any] = []
        for rule_id, members in self.rules:
            slot = len(rule_ids)
            rule_ids.append(rule_id)
            for tid in members:
                slot_of[tid] = slot
        rule_index = np.full(len(ranked_tids), -1, dtype=np.int64)
        if slot_of:
            for position, tid in enumerate(ranked_tids):
                slot = slot_of.get(tid)
                if slot is not None:
                    rule_index[position] = slot
        return TableColumns(
            tids=ranked_tids,
            score=np.ascontiguousarray(self.score[order], dtype=np.float64),
            probability=np.ascontiguousarray(
                self.probability[order], dtype=np.float64
            ),
            rule_index=rule_index,
            rule_ids=tuple(rule_ids),
        )

    def topk_probabilities(self, k: int) -> Dict[Any, float]:
        """``Pr^k`` for every tuple, straight off the snapshot columns.

        The recovery-time serving shortcut: one columnar kernel scan,
        no :class:`~repro.model.table.UncertainTable` reconstruction.
        """
        columns = self.ranked_columns
        out, _ = columnar_topk_scan(columns.probability, columns.rule_index, k)
        return dict(zip(columns.tids, out.tolist()))


def open_snapshot_columns(
    path: Union[str, Path], verify: bool = True
) -> SnapshotColumns:
    """Open a snapshot's numeric columns as read-only memory-maps.

    The JSON header is decoded eagerly (ids, rules, version); the two
    float64 columns are *not* read — they are ``numpy.memmap`` views the
    OS pages in on demand, which is what makes recovery of large tables
    cheap enough to serve from directly.

    :param verify: stream the body once to check the CRC32 before
        handing out views (recommended; recovery paths that already
        validated the file may skip it).
    :raises SnapshotCorruptionError: bad magic, short file, bad CRC, or
        an undecodable header.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        prefix = handle.read(len(MAGIC) + _PREFIX.size)
        if len(prefix) < len(MAGIC) + _PREFIX.size or prefix[: len(MAGIC)] != MAGIC:
            raise SnapshotCorruptionError(f"{path}: not a snapshot (bad magic)")
        crc, header_len = _PREFIX.unpack_from(prefix, len(MAGIC))
        header_bytes = handle.read(header_len)
        if len(header_bytes) < header_len:
            raise SnapshotCorruptionError(f"{path}: truncated snapshot header")
        if verify:
            body_crc = zlib.crc32(header_bytes)
            while True:
                chunk = handle.read(1 << 20)
                if not chunk:
                    break
                body_crc = zlib.crc32(chunk, body_crc)
            if body_crc != crc:
                raise SnapshotCorruptionError(f"{path}: snapshot failed CRC32")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
        count = int(header["count"])
        tids = tuple(decode_tid(t) for t in header["tids"])
        rules = tuple(
            (
                rule["rule_id"],
                tuple(decode_tid(m) for m in rule["members"]),
            )
            for rule in header.get("rules", [])
        )
    except (UnicodeDecodeError, ValueError, KeyError, TypeError) as error:
        raise SnapshotCorruptionError(
            f"{path}: undecodable snapshot header: {error}"
        ) from error
    offset = len(MAGIC) + _PREFIX.size + header_len
    expected_end = offset + 2 * count * 8
    if path.stat().st_size < expected_end:
        raise SnapshotCorruptionError(
            f"{path}: truncated snapshot columns "
            f"(need {expected_end} bytes, have {path.stat().st_size})"
        )
    score = (
        np.memmap(path, dtype="<f8", mode="r", offset=offset, shape=(count,))
        if count
        else np.empty(0, dtype=np.float64)
    )
    probability = (
        np.memmap(
            path,
            dtype="<f8",
            mode="r",
            offset=offset + count * 8,
            shape=(count,),
        )
        if count
        else np.empty(0, dtype=np.float64)
    )
    return SnapshotColumns(
        path=path,
        name=header["name"],
        table_name=header.get("table_name") or header["name"],
        epoch=int(header.get("epoch", 0)),
        version=int(header["version"]),
        tids=tids,
        score=score,
        probability=probability,
        rules=rules,
    )


def open_latest_snapshot_columns(
    directory: Union[str, Path], name: str, verify: bool = True
) -> Optional[SnapshotColumns]:
    """Memory-mapped columns of ``name``'s newest loadable snapshot.

    The zero-copy sibling of :func:`load_latest_snapshots` for one
    table: candidates are tried newest ``(epoch, version)`` first, CRC
    failures fall back to older generations, and ``None`` means no
    loadable snapshot exists.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates: List[Tuple[Tuple[int, int], Path]] = []
    for path in sorted(directory.glob("*.snap")):
        try:
            header = read_header(path)
            if header["name"] == name:
                candidates.append((snapshot_rank(header), path))
        except (SnapshotCorruptionError, KeyError, TypeError, ValueError):
            continue
    for _, path in sorted(candidates, reverse=True):
        try:
            return open_snapshot_columns(path, verify=verify)
        except SnapshotCorruptionError:
            continue
    return None


@dataclass
class SnapshotCatalog:
    """What a snapshot directory currently holds.

    :param latest: registry name -> (path, version) of the newest
        loadable candidate per table (not yet CRC-verified).
    :param errors: files whose header could not even be read.
    """

    latest: Dict[str, Tuple[Path, int]] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)


def catalog_snapshots(directory: Union[str, Path]) -> SnapshotCatalog:
    """Index a snapshot directory by table name, newest first.

    Newest means the highest ``(epoch, version)`` rank — see
    :func:`snapshot_rank`.
    """
    catalog = SnapshotCatalog()
    directory = Path(directory)
    if not directory.is_dir():
        return catalog
    best: Dict[str, Tuple[int, int]] = {}
    for path in sorted(directory.glob("*.snap")):
        try:
            header = read_header(path)
            name, rank = header["name"], snapshot_rank(header)
        except (SnapshotCorruptionError, KeyError, TypeError, ValueError) as error:
            catalog.errors.append(f"{path.name}: {error}")
            continue
        if name not in best or rank > best[name]:
            best[name] = rank
            catalog.latest[name] = (path, rank[1])
    return catalog


def load_latest_snapshots(
    directory: Union[str, Path],
) -> Tuple[Dict[str, UncertainTable], List[str], Dict[str, int]]:
    """Load the newest valid snapshot of every table under ``directory``.

    Candidates are ranked by ``(epoch, version)``; a candidate failing
    its CRC is skipped with a note and the next older generation of the
    same table (if any) is tried, so one corrupt file degrades recovery
    to an older durable point instead of failing it.

    :returns: ``(tables by registry name, problem notes, registration
        epoch of each loaded table)``.
    """
    directory = Path(directory)
    tables: Dict[str, UncertainTable] = {}
    problems: List[str] = []
    epochs: Dict[str, int] = {}
    if not directory.is_dir():
        return tables, problems, epochs
    candidates: Dict[str, List[Tuple[Tuple[int, int], Path]]] = {}
    for path in sorted(directory.glob("*.snap")):
        try:
            header = read_header(path)
            candidates.setdefault(header["name"], []).append(
                (snapshot_rank(header), path)
            )
        except (SnapshotCorruptionError, KeyError, TypeError, ValueError) as error:
            problems.append(str(error))
    for name, ranked in candidates.items():
        for (epoch, _), path in sorted(ranked, reverse=True):
            try:
                table, registry_name = read_snapshot(path)
            except SnapshotCorruptionError as error:
                problems.append(str(error))
                continue
            tables[registry_name] = table
            epochs[registry_name] = epoch
            break
        else:
            problems.append(f"no loadable snapshot for table {name!r}")
    return tables, problems, epochs


def compact_snapshots(
    directory: Union[str, Path],
    keep: int = 1,
    registered: Optional[set] = None,
) -> int:
    """Delete superseded snapshot generations (and stale ``*.tmp`` files).

    :param keep: newest generations (by ``(epoch, version)``) to retain
        per table.
    :param registered: when given, the registry names that still exist —
        *every* generation of a name not in the set is deleted, so a
        dropped table cannot resurrect once the WAL record of its drop
        is compacted away.
    :returns: the number of files deleted.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    deleted = 0
    for leftover in directory.glob("*.snap.tmp"):
        leftover.unlink()
        deleted += 1
    generations: Dict[str, List[Tuple[Tuple[int, int], Path]]] = {}
    for path in directory.glob("*.snap"):
        try:
            header = read_header(path)
            generations.setdefault(header["name"], []).append(
                (snapshot_rank(header), path)
            )
        except (SnapshotCorruptionError, KeyError, TypeError, ValueError):
            continue  # unreadable files are verify's business, not ours
    for name, ranked in generations.items():
        if registered is not None and name not in registered:
            superseded = sorted(ranked, reverse=True)
        else:
            superseded = sorted(ranked, reverse=True)[max(keep, 1):]
        for _, path in superseded:
            path.unlink()
            deleted += 1
    return deleted


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory (persists the rename itself)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)
