"""Crash recovery: latest snapshot + WAL replay = the last durable state.

Recovery rebuilds every table registered through a
:class:`~repro.durable.db.DurableDB` from its data directory::

    data_dir/
      snapshots/   *.snap          (columnar images, one per version)
      wal/         wal-*.log       (mutation journal segments)

The invariants recovery guarantees (tested property-style in
``tests/test_durable.py``):

1. **Prefix durability** — the recovered state equals the in-memory
   state after the last mutation whose WAL record was fully written;
   a torn final record is truncated, never replayed.
2. **Exact versions** — each recovered table's monotone ``version``
   equals the original's at the durable point, so the prepare cache's
   ``(table, version)`` keying stays sound across restarts (a recovered
   table that keeps mutating can never alias a pre-crash version).
3. **Idempotent replay** — every mutation record carries the table
   version it *produced*; records at or below the snapshot's version
   are skipped, so replaying segments that a crash interrupted between
   snapshot and compaction is harmless.  A version gap (record version
   more than one ahead) means mutations were lost and raises
   :class:`~repro.exceptions.RecoveryError` instead of rebuilding a
   silently wrong table.
4. **Epoch precedence** — ``register`` records and snapshots carry the
   name's *registration epoch* (how many times the name has been
   registered), and "already covered" comparisons use
   ``(epoch, version)``: a replacement table re-registered after a drop
   starts at a low version but a higher epoch, so it always supersedes
   its dropped predecessor's state.

``serve`` records journal recently served query keys; recovery returns
them so :class:`~repro.durable.db.DurableDB` can warm its prepare cache
by re-preparing exactly the ``(predicate, ranking)`` pairs production
traffic was using before the restart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import RecoveryError
from repro.durable import wal as wal_mod
from repro.durable.snapshot import load_latest_snapshots
from repro.durable.wal import decode_tid
from repro.io.jsonio import table_from_dict
from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable
from repro.obs import OBS, catalogued, span as obs_span

#: Most recent distinct serve keys retained for cache warm-start.
MAX_SERVE_KEYS = 32


@dataclass
class RecoveryReport:
    """What one recovery pass found and did.

    :param tables: registry name -> recovered ``version``.
    :param snapshots_loaded: tables seeded from a snapshot image.
    :param replayed: WAL mutation records applied.
    :param skipped: records ignored because a snapshot already covered
        them (version at or below the snapshot's).
    :param torn_bytes: bytes truncated from torn WAL tails.
    :param segments: WAL segments scanned.
    :param problems: non-fatal notes (skipped corrupt snapshot
        generations, torn tails).
    :param serve_keys: recently served query keys, oldest first.
    :param epochs: registration epoch per name — the highest epoch seen
        for each registry name, including names that were dropped, so a
        re-opened :class:`~repro.durable.db.DurableDB` keeps epochs
        monotone across restarts.
    :param duration_seconds: wall time of the pass.
    """

    tables: Dict[str, int] = field(default_factory=dict)
    snapshots_loaded: int = 0
    replayed: int = 0
    skipped: int = 0
    torn_bytes: int = 0
    segments: int = 0
    problems: List[str] = field(default_factory=list)
    serve_keys: List[Tuple[str, int, Optional[str]]] = field(default_factory=list)
    epochs: Dict[str, int] = field(default_factory=dict)
    duration_seconds: float = 0.0


def recover_state(
    data_dir: Union[str, Path],
) -> Tuple[Dict[str, UncertainTable], RecoveryReport]:
    """Rebuild all tables under ``data_dir``; see the module docstring.

    :returns: ``(tables by registry name, report)``.
    :raises WalCorruptionError: on WAL damage beyond a torn tail.
    :raises RecoveryError: on a version gap (lost mutations).
    """
    data_dir = Path(data_dir)
    report = RecoveryReport()
    started = time.perf_counter()
    with obs_span("durable.recover", data_dir=str(data_dir)):
        tables, snapshot_problems, epochs = load_latest_snapshots(
            data_dir / "snapshots"
        )
        report.problems.extend(snapshot_problems)
        report.snapshots_loaded = len(tables)
        records, scans, paths = wal_mod.replay_wal(data_dir / "wal")
        report.segments = len(scans)
        for scan, path in zip(scans, paths):
            report.torn_bytes += scan.torn_bytes
            if scan.problem is not None:
                report.problems.append(
                    f"{path.name}: {scan.problem} "
                    f"({scan.torn_bytes} byte(s) truncated)"
                )
        serve_keys: Dict[Tuple[str, int, Optional[str]], None] = {}
        for record in records:
            if record.get("op") == "serve":
                key = (
                    record["table"],
                    int(record["k"]),
                    record.get("where"),
                )
                serve_keys.pop(key, None)
                serve_keys[key] = None
                while len(serve_keys) > MAX_SERVE_KEYS:
                    serve_keys.pop(next(iter(serve_keys)))
                continue
            if apply_record(tables, record, epochs):
                report.replayed += 1
            else:
                report.skipped += 1
        report.serve_keys = list(serve_keys)
        report.epochs = dict(epochs)
        report.tables = {name: table.version for name, table in tables.items()}
        report.duration_seconds = time.perf_counter() - started
        if OBS.enabled and report.replayed:
            catalogued("repro_durable_recovery_replayed_total").inc(
                report.replayed
            )
    return tables, report


def apply_record(
    tables: Dict[str, UncertainTable],
    record: Dict[str, Any],
    epochs: Optional[Dict[str, int]] = None,
) -> bool:
    """Apply one mutation record to the recovering table set.

    :param epochs: registration epoch of each table in ``tables``;
        updated in place as ``register`` records apply.  Entries for
        dropped names are kept so epoch monotonicity survives.
    :returns: True when the record mutated state, False when it was
        version-skipped (already covered by a snapshot) or a no-op.
    :raises RecoveryError: on malformed records or version gaps.
    """
    op = record.get("op")
    name = record.get("table")
    if op == "register":
        version = int(record["version"])
        epoch = int(record.get("epoch", 0))
        existing = tables.get(name)
        if existing is not None:
            current_epoch = epochs.get(name, 0) if epochs is not None else 0
            if (current_epoch, existing.version) >= (epoch, version):
                return False
        table = table_from_dict(record["doc"])
        table._version = version
        tables[name] = table
        if epochs is not None:
            epochs[name] = max(epochs.get(name, 0), epoch)
        return True
    if op == "drop":
        # The epoch entry survives the drop on purpose: a later
        # re-registration must keep bumping past it.
        return tables.pop(name, None) is not None
    table = tables.get(name)
    if table is None:
        raise RecoveryError(
            f"WAL record {op!r} targets unknown table {name!r} "
            f"(its register record is missing)"
        )
    version = int(record["version"])
    if version <= table.version:
        return False
    if version != table.version + 1:
        raise RecoveryError(
            f"version gap on table {name!r}: recovered version "
            f"{table.version}, next WAL record claims {version} — "
            f"mutations were lost"
        )
    if op == "add":
        table.add(
            decode_tid(record["tid"]),
            score=float(record["score"]),
            probability=float(record["probability"]),
            **record.get("attributes", {}),
        )
    elif op == "rule":
        table.add_rule(
            GenerationRule(
                rule_id=record["rule_id"],
                tuple_ids=tuple(decode_tid(m) for m in record["members"]),
            )
        )
    elif op == "remove":
        table.remove_tuple(decode_tid(record["tid"]))
    elif op == "update":
        table.update_probability(
            decode_tid(record["tid"]), float(record["probability"])
        )
    elif op == "score":
        table.update_score(decode_tid(record["tid"]), float(record["score"]))
    else:
        raise RecoveryError(f"unknown WAL record op {op!r}")
    # Each mutation bumps the version by exactly one, so replay lands on
    # the journalled value; assert rather than trust.
    if table.version != version:  # pragma: no cover - defensive
        raise RecoveryError(
            f"replaying {op!r} on {name!r} produced version "
            f"{table.version}, journal says {version}"
        )
    return True


@dataclass
class VerifyReport:
    """Read-only integrity report over one data directory."""

    wal_segments: int = 0
    wal_records: int = 0
    torn_bytes: int = 0
    snapshots: int = 0
    snapshot_errors: List[str] = field(default_factory=list)
    wal_errors: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing worse than a torn tail was found."""
        return not self.snapshot_errors and not self.wal_errors


def verify_data_dir(data_dir: Union[str, Path]) -> VerifyReport:
    """Validate every snapshot CRC and WAL segment without mutating.

    Torn tails are *notes* (they are the expected crash signature);
    bad magic numbers, CRC-valid-but-unparseable records, and snapshot
    checksum failures are errors.
    """
    from repro.durable.snapshot import read_snapshot
    from repro.exceptions import SnapshotCorruptionError

    data_dir = Path(data_dir)
    report = VerifyReport()
    snapshot_dir = data_dir / "snapshots"
    if snapshot_dir.is_dir():
        for path in sorted(snapshot_dir.glob("*.snap")):
            report.snapshots += 1
            try:
                read_snapshot(path)
            except SnapshotCorruptionError as error:
                report.snapshot_errors.append(str(error))
    for path in wal_mod.WriteAheadLog.segment_paths(data_dir / "wal"):
        scan = wal_mod.scan_segment(path)
        report.wal_segments += 1
        report.wal_records += len(scan.records)
        report.torn_bytes += scan.torn_bytes
        if scan.corrupt:
            report.wal_errors.append(f"{path.name}: {scan.problem}")
        elif scan.problem is not None:
            report.notes.append(
                f"{path.name}: {scan.problem} "
                f"({scan.torn_bytes} byte(s) would be truncated)"
            )
    return report
