"""Batch PT-k answering: many (k, p) queries over one scan.

Dashboards and report generators routinely ask several threshold
queries over the same table and ranking (different k for different
panels, several thresholds for sensitivity).  Since the subset-
probability vector computed for the largest k contains every smaller
k's answer as a prefix sum (see :mod:`repro.core.profile`), all queries
can share a single RC+LR scan.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.profile import topk_probability_profile
from repro.core.results import AlgorithmStats, PTKAnswer
from repro.exceptions import QueryError
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.query.prepare import PrepareCache, resolve_prepared
from repro.query.ranking import RankingFunction, by_score
from repro.query.topk import TopKQuery


def validate_requests(requests: Sequence[Tuple[int, float]]) -> None:
    """Validate a batch of ``(k, threshold)`` pairs up front."""
    for k, threshold in requests:
        if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
            raise QueryError(f"k must be a positive integer, got {k!r}")
        if not (0.0 < threshold <= 1.0):
            raise QueryError(
                f"probability threshold must be in (0, 1], got {threshold!r}"
            )


def answers_from_profiles(
    profiles: Mapping[Any, np.ndarray],
    ranked: Sequence[UncertainTuple],
    requests: Sequence[Tuple[int, float]],
) -> List[PTKAnswer]:
    """Slice one shared probability profile into per-request answers.

    Stats report the shared scan honestly: every answer records the
    common scan depth, but only the first answer bills the
    ``tuples_evaluated`` of the single underlying scan (the others
    report 0 — their marginal cost).
    """
    answers: List[PTKAnswer] = []
    for index, (k, threshold) in enumerate(requests):
        probabilities: Dict[Any, float] = {
            tid: float(profile[k - 1]) for tid, profile in profiles.items()
        }
        answer = PTKAnswer(k=k, threshold=threshold, method="batch")
        answer.probabilities = probabilities
        answer.answers = [
            tup.tid for tup in ranked if probabilities[tup.tid] >= threshold
        ]
        answer.stats = AlgorithmStats(
            scan_depth=len(ranked),
            tuples_evaluated=len(ranked) if index == 0 else 0,
        )
        answers.append(answer)
    return answers


def batch_ptk_queries(
    table: UncertainTable,
    requests: Sequence[Tuple[int, float]],
    ranking: RankingFunction | None = None,
    cache: Optional[PrepareCache] = None,
    n_workers: int = 1,
    use_processes: bool = True,
) -> List[PTKAnswer]:
    """Answer several ``(k, threshold)`` PT-k queries in one scan.

    :param requests: ``(k, p)`` pairs; validated up front.
    :param ranking: shared ranking function.
    :param cache: an optional :class:`PrepareCache`; selection, ranking,
        and rule indexing run at most once either way — the cache lets
        *successive* batch calls on an unchanged table skip them too.
    :param n_workers: ``1`` (the default) answers all requests serially
        over one shared scan; ``> 1`` (or ``0`` for one per CPU)
        partitions the requests across a process pool, each worker
        scanning the shared prepared ranking for its own partition — see
        :func:`repro.parallel.fanout.parallel_batch_ptk_queries`.
    :param use_processes: parallel mode only — set False to run the
        partitions inline (identical answers, no pool).
    :returns: one :class:`PTKAnswer` per request, in request order.
        Each answer carries the full probability map for its k (sliced
        from the shared profile), so per-request behaviour matches
        :func:`repro.core.exact.exact_ptk_query` with ``pruning=False``.
        In parallel mode each worker partition bills its own scan the
        same way (first answer of the partition carries
        ``tuples_evaluated``).
    """
    if not requests:
        return []
    validate_requests(requests)
    if n_workers != 1 and len(requests) > 1:
        from repro.parallel.fanout import parallel_batch_ptk_queries

        return parallel_batch_ptk_queries(
            table,
            requests,
            ranking=ranking,
            cache=cache,
            n_workers=n_workers,
            use_processes=use_processes,
        )
    ranking = ranking or by_score()
    max_k = max(k for k, _ in requests)
    query = TopKQuery(k=max_k, ranking=ranking)
    prepared = resolve_prepared(table, query, cache=cache)
    profiles = topk_probability_profile(table, query, prepared=prepared)
    return answers_from_profiles(profiles, prepared.ranked, requests)


def threshold_sweep(
    table: UncertainTable,
    k: int,
    thresholds: Sequence[float],
    ranking: RankingFunction | None = None,
) -> Dict[float, List[Any]]:
    """Answer one k at many thresholds (a common dashboard pattern).

    :returns: threshold -> answer tuple ids (ranking order).
    """
    answers = batch_ptk_queries(
        table, [(k, threshold) for threshold in thresholds], ranking=ranking
    )
    return {
        threshold: answer.answers
        for threshold, answer in zip(thresholds, answers)
    }
