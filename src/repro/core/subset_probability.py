"""Subset probabilities ``Pr(S, j)``: the Poisson-binomial dynamic program.

``Pr(S, j)`` is the probability that exactly ``j`` tuples of an
*independent* set ``S`` appear in a possible world (Section 4.2).
Theorem 2 gives the recurrence

.. math::

    Pr(S_i, 0) &= Pr(S_{i-1}, 0) (1 - Pr(t_i)) \\\\
    Pr(S_i, j) &= Pr(S_{i-1}, j-1) Pr(t_i) + Pr(S_{i-1}, j) (1 - Pr(t_i))

i.e. the distribution of the number of successes among independent
Bernoulli trials (a Poisson-binomial distribution), truncated at a cap:
PT-k answering only ever needs ``j <= k``, so the vector keeps entries
``0..cap-1`` and drops the tail mass.

:class:`SubsetProbabilityVector` is the mutable DP state.  The exact
algorithm's prefix-sharing cache stores one (immutable snapshot of a)
vector per shared prefix position; each extension is O(cap) and is the
unit of cost counted by Equation 5.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.core import kernel
from repro.exceptions import QueryError
from repro.model.tuples import validate_probability


class SubsetProbabilityVector:
    """Truncated distribution of "how many of the units appear".

    :param cap: number of entries kept; the vector represents
        ``Pr(S, 0) .. Pr(S, cap-1)``.  PT-k needs ``cap = k`` for top-k
        probabilities and ``cap = k + 1`` for the early-stop bound, so
        callers choose.
    :param values: optional initial entries (defaults to the empty set:
        ``Pr(emptyset, 0) = 1``).

    The vector tracks ``size`` (number of units folded in) and
    ``extension_count`` (number of O(cap) extensions performed since
    construction), which the reordering benchmarks read as the
    Equation-5 cost.
    """

    __slots__ = ("_values", "size", "extension_count")

    def __init__(self, cap: int, values: np.ndarray | None = None) -> None:
        if cap <= 0:
            raise QueryError(f"subset-probability cap must be positive, got {cap}")
        if values is None:
            self._values = np.zeros(cap, dtype=np.float64)
            self._values[0] = 1.0
            self.size = 0
        else:
            if values.shape != (cap,):
                raise QueryError(
                    f"initial values must have shape ({cap},), got {values.shape}"
                )
            self._values = values.astype(np.float64, copy=True)
            self.size = -1  # unknown; caller-managed
        self.extension_count = 0

    @property
    def cap(self) -> int:
        """Number of entries kept (``j`` ranges over ``0..cap-1``)."""
        return int(self._values.shape[0])

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the current entries."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def probability_at(self, j: int) -> float:
        """``Pr(S, j)`` for ``0 <= j < cap``."""
        if j < 0 or j >= self.cap:
            raise QueryError(f"j must be in [0, {self.cap}), got {j}")
        return float(self._values[j])

    def probability_fewer_than(self, j: int) -> float:
        """``Pr(|S ∩ W| < j)`` — the factor in Equation 4 (``j = k``).

        ``j`` may be at most ``cap`` (summing the whole stored vector).
        Routed through the kernel's compensated-summation primitive —
        the same sum the exact engine, the columnar scan, and the
        pruning tracker use, so no two paths can disagree about the
        same vector.
        """
        if j < 0 or j > self.cap:
            raise QueryError(f"j must be in [0, {self.cap}], got {j}")
        return kernel.fewer_than_k(self._values, j)

    def probability_at_most(self, j: int) -> float:
        """``Pr(|S ∩ W| <= j)`` for ``j < cap``."""
        return self.probability_fewer_than(j + 1)

    # ------------------------------------------------------------------
    # Extension (the DP step of Theorem 2)
    # ------------------------------------------------------------------
    def extend(self, probability: float) -> None:
        """Fold one more independent unit with the given probability.

        This is one application of the Theorem-2 recurrence and the unit
        of cost in Equation 5.
        """
        p = validate_probability(probability, what="unit probability")
        v = self._values
        shifted = np.empty_like(v)
        shifted[0] = 0.0
        shifted[1:] = v[:-1]
        # v_new[j] = v[j-1] * p + v[j] * (1 - p)
        np.multiply(v, 1.0 - p, out=v)
        v += shifted * p
        self.size += 1
        self.extension_count += 1

    def extend_many(self, probabilities: Iterable[float]) -> None:
        """Fold a sequence of independent units, in order."""
        for p in probabilities:
            self.extend(p)

    def extend_run(self, probabilities: Sequence[float]) -> None:
        """Fold a contiguous run of units in one batched kernel call.

        Semantically identical to :meth:`extend_many` (the kernel
        performs the same Theorem-2 float operations in the same
        order) but skips the per-unit python dispatch — the fast path
        for the tail stop bound and any caller folding whole runs.
        Probabilities are validated like :meth:`extend`.
        """
        values = [
            validate_probability(p, what="unit probability")
            for p in probabilities
        ]
        if not values:
            return
        count = kernel.dp_extend(self._values, values)
        self.size += count
        self.extension_count += count

    def copy(self) -> "SubsetProbabilityVector":
        """An independent copy with the same entries and size.

        The copy's ``extension_count`` restarts at zero; cost accounting
        belongs to whoever performs extensions.
        """
        clone = SubsetProbabilityVector(self.cap, values=self._values)
        clone.size = self.size
        return clone

    def snapshot(self) -> np.ndarray:
        """An immutable copy of the entries (for prefix caches)."""
        snap = self._values.copy()
        snap.flags.writeable = False
        return snap

    @classmethod
    def from_snapshot(
        cls, snapshot: np.ndarray, size: int
    ) -> "SubsetProbabilityVector":
        """Rebuild a vector from a :meth:`snapshot` (used by the cache)."""
        vec = cls(int(snapshot.shape[0]), values=np.asarray(snapshot))
        vec.size = size
        return vec

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = ", ".join(f"{x:.4g}" for x in self._values[:4])
        return f"SubsetProbabilityVector(size={self.size}, cap={self.cap}, [{head}...])"


def subset_probabilities(
    probabilities: Sequence[float], cap: int
) -> np.ndarray:
    """``Pr(S, j)`` for ``j = 0..cap-1`` over an independent set.

    Convenience one-shot wrapper around :class:`SubsetProbabilityVector`.

    :param probabilities: membership probabilities of the units of ``S``.
    :param cap: number of entries to return.
    :returns: array of shape ``(cap,)``.
    """
    vector = SubsetProbabilityVector(cap)
    vector.extend_many(probabilities)
    return vector.snapshot()


def poisson_binomial_pmf(probabilities: Sequence[float]) -> np.ndarray:
    """The full (untruncated) Poisson-binomial pmf over ``0..len(S)``.

    Useful for tests and for the statistics module; the exact algorithm
    itself always works with the truncated vector.
    """
    n = len(probabilities)
    vector = SubsetProbabilityVector(n + 1)
    vector.extend_many(probabilities)
    return vector.snapshot()


def prefix_subset_probabilities(
    probabilities: Sequence[float], cap: int
) -> List[np.ndarray]:
    """Snapshots of ``Pr(S_i, ·)`` for every prefix ``S_i`` of the units.

    ``result[i]`` is the vector after folding the first ``i`` units
    (``result[0]`` is the empty-set vector).  This is exactly the shape
    of the prefix-sharing cache of Section 4.3.2.
    """
    vector = SubsetProbabilityVector(cap)
    snapshots = [vector.snapshot()]
    for p in probabilities:
        vector.extend(p)
        snapshots.append(vector.snapshot())
    return snapshots
