"""Result containers shared by the exact algorithm, the sampler, and benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class TupleProbability:
    """A tuple id paired with its (exact or estimated) top-k probability."""

    tid: Any
    probability: float

    def __iter__(self):
        return iter((self.tid, self.probability))


@dataclass
class AlgorithmStats:
    """Instrumentation shared across algorithm variants.

    :param scan_depth: number of tuples retrieved from the ranked stream
        (the y-axis of Figures 4 and 7 for the exact algorithm).
    :param subset_extensions: number of O(k) subset-probability DP
        extensions performed — the Equation-5 cost, and the quantity the
        paper reports tracks runtime exactly.
    :param tuples_evaluated: tuples whose ``Pr^k`` was actually computed.
    :param tuples_pruned_membership: tuples skipped by Theorem 3.
    :param tuples_pruned_same_rule: tuples skipped by Theorem 4.
    :param stopped_by: what ended the scan: ``"exhausted"`` (whole list),
        ``"total-probability"`` (Theorem 5), ``"tail-bound"`` (the
        ``Pr(at most k of the seen units appear) < p`` bound), or
        ``"deadline"`` (a wall-clock budget interrupted the scan; the
        answer is partial and carries a resumable checkpoint).
    :param sample_units: sampler only — number of sample units drawn.
    :param avg_sample_length: sampler only — mean tuples scanned per unit
        (the "sample length" series of Figure 4).
    """

    scan_depth: int = 0
    subset_extensions: int = 0
    tuples_evaluated: int = 0
    tuples_pruned_membership: int = 0
    tuples_pruned_same_rule: int = 0
    stopped_by: str = "exhausted"
    sample_units: int = 0
    avg_sample_length: float = 0.0

    @property
    def tuples_pruned(self) -> int:
        """Total tuples whose evaluation was skipped by pruning."""
        return self.tuples_pruned_membership + self.tuples_pruned_same_rule


@dataclass
class PTKAnswer:
    """The answer to a PT-k query plus everything measured along the way.

    :param k: the query's k.
    :param threshold: the probability threshold p.
    :param answers: tuple ids passing the threshold, in ranking order.
    :param probabilities: every computed top-k probability, keyed by
        tuple id.  For pruned tuples no entry is present (the algorithm
        proved their probability is below the threshold without computing
        it).
    :param stats: instrumentation counters.
    :param method: short name of the algorithm that produced the answer.
    :param checkpoint: set only when an exact scan was cut off by a
        deadline budget (``stats.stopped_by == "deadline"``): an opaque
        :class:`~repro.core.exact.ScanCheckpoint` from which the scan
        can be resumed.  ``None`` for complete answers.
    """

    k: int
    threshold: float
    answers: List[Any] = field(default_factory=list)
    probabilities: Dict[Any, float] = field(default_factory=dict)
    stats: AlgorithmStats = field(default_factory=AlgorithmStats)
    method: str = "exact"
    checkpoint: Optional[Any] = None

    @property
    def partial(self) -> bool:
        """True when the scan was interrupted and the answer covers only
        the scanned prefix (resumable via ``checkpoint``)."""
        return self.checkpoint is not None

    @property
    def answer_set(self) -> set:
        """The answers as a set (order-insensitive comparisons)."""
        return set(self.answers)

    def probability_of(self, tid: Any, default: Optional[float] = None) -> float:
        """Computed ``Pr^k`` of a tuple, or ``default`` if it was pruned.

        :raises KeyError: when absent and no default is given.
        """
        if tid in self.probabilities:
            return self.probabilities[tid]
        if default is None:
            raise KeyError(
                f"top-k probability of {tid!r} was not computed "
                f"(pruned below threshold {self.threshold})"
            )
        return default

    def ranked_answers(self) -> List[TupleProbability]:
        """Answers with probabilities, sorted by probability descending."""
        pairs = [
            TupleProbability(tid, self.probabilities[tid]) for tid in self.answers
        ]
        return sorted(pairs, key=lambda tp: (-tp.probability, str(tp.tid)))

    def __contains__(self, tid: Any) -> bool:
        return tid in self.answer_set

    def __len__(self) -> int:
        return len(self.answers)
