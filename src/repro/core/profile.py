"""Top-k probability profiles: ``Pr^j(t)`` for every ``j <= k`` at once.

An extension beyond the paper's API surface (in the spirit of its
"different kinds of ranking and preference queries" future work): the
subset-probability vector computed for ``Pr^k(t)`` already contains
everything needed for every smaller ``j`` — ``Pr^j(t) = Pr(t) *
sum_{i<j} Pr(T(t), i)`` is just a prefix sum.  One scan therefore yields
the full profile, which answers questions like

* "how does the answer set change as k varies?" without re-running,
* "what is the smallest k at which tuple t passes threshold p?"
  (:func:`minimal_k_for_threshold`),
* threshold/parameter sensitivity reports in the examples.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.reordering import LazyReordering, PrefixSharedDP
from repro.core.rule_compression import CompressionUnit, DominantSetScan
from repro.exceptions import QueryError
from repro.model.table import UncertainTable
from repro.query.prepare import PrepareCache, PreparedRanking, resolve_prepared
from repro.query.topk import TopKQuery


def topk_probability_profile(
    table: UncertainTable,
    query: TopKQuery,
    prepared: Optional[PreparedRanking] = None,
    cache: Optional[PrepareCache] = None,
) -> Dict[Any, np.ndarray]:
    """``Pr^j`` for ``j = 1..k`` for every tuple, in one RC+LR scan.

    :param prepared: a ready :class:`PreparedRanking` for ``(table,
        query)``; skips selection/ranking/rule indexing entirely.
    :param cache: a :class:`PrepareCache` to consult (and fill) when
        ``prepared`` is not given.
    :returns: mapping tuple id -> array ``profile`` with
        ``profile[j-1] = Pr^j(t)``.  Each profile is non-decreasing in j
        and capped by the tuple's membership probability.
    """
    k = query.k
    prepared = resolve_prepared(table, query, prepared=prepared, cache=cache)
    ranked = prepared.ranked
    scan = DominantSetScan(ranked, prepared.rule_of)
    strategy = LazyReordering()
    dp = PrefixSharedDP(cap=k)
    previous: List[CompressionUnit] = []
    result: Dict[Any, np.ndarray] = {}
    for tup in ranked:
        units = scan.units_for(tup)
        order = strategy.order_units(units, previous)
        vector = dp.vector_for(order)
        previous = order
        profile = tup.probability * np.minimum(np.cumsum(vector), 1.0)
        profile.flags.writeable = False
        result[tup.tid] = profile
        scan.advance(tup)
    return result


def answer_sizes_by_k(
    table: UncertainTable,
    query: TopKQuery,
    threshold: float,
) -> List[int]:
    """``|Answer(Q^j, p)|`` for every ``j = 1..k`` from one profile scan."""
    if not (0.0 < threshold <= 1.0):
        raise QueryError(
            f"probability threshold must be in (0, 1], got {threshold!r}"
        )
    profiles = topk_probability_profile(table, query)
    if not profiles:
        return [0] * query.k
    # One vectorised pass over the stacked (n, k) profile matrix instead
    # of the O(n*k) Python double loop.
    passing = np.sum(np.stack(list(profiles.values())) >= threshold, axis=0)
    return [int(count) for count in passing]


def minimal_k_for_threshold(
    table: UncertainTable,
    query: TopKQuery,
    threshold: float,
) -> Dict[Any, Optional[int]]:
    """The smallest ``j <= k`` at which each tuple passes the threshold.

    :returns: mapping tuple id -> minimal j, or ``None`` when the tuple
        fails the threshold even at ``j = k``.  Because profiles are
        monotone in j, this is a meaningful "how deep a list do you need
        before this tuple becomes a credible answer" diagnostic.
    """
    if not (0.0 < threshold <= 1.0):
        raise QueryError(
            f"probability threshold must be in (0, 1], got {threshold!r}"
        )
    profiles = topk_probability_profile(table, query)
    result: Dict[Any, Optional[int]] = {}
    for tid, profile in profiles.items():
        passing = np.flatnonzero(profile >= threshold)
        result[tid] = int(passing[0]) + 1 if passing.size else None
    return result
