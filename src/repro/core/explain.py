"""Explanations and sensitivity analysis for top-k probabilities.

Answering *"why is ``Pr^k(t)`` what it is?"* matters in the paper's
application domains (an analyst staring at iceberg R14 wants to know
what keeps it out of the answer).  Everything needed is already in the
PT-k machinery:

* the compressed dominant set of ``t`` shows exactly which tuples and
  rule-tuples compete with it (and which rule-mates were removed by
  Corollary 2);
* the position distribution ``Pr(t, j)`` (Equation 3) shows *where* in
  the top-k ``t`` tends to land;
* a unit's *influence* — how much ``Pr^k(t)`` would change if that
  competing unit were removed — has a closed form: deconvolving unit
  ``u`` out of the subset-probability vector gives the count
  distribution of the remaining units, and

  .. math::

      Pr^k_{-u}(t) - Pr^k(t) = Pr(t) \\cdot Pr(u) \\cdot
          Pr\\big(|T(t) \\setminus u| = k - 1\\big)

  (removing ``u`` helps exactly in the worlds where ``u`` appears and
  exactly ``k-1`` of the others do — the worlds where ``u`` personally
  pushes ``t`` out of the top-k).

Deconvolution inverts the Theorem-2 recurrence:
``v_old[j] = v_new[j] (1-p) + v_new[j-1] p`` solves forward as
``v_new[j] = (v_old[j] - v_new[j-1] p) / (1-p)``.  It is numerically
safe for ``p`` away from 1; for ``p = 1`` the unit is certain and the
count distribution of the rest is just the vector shifted down by one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

import numpy as np

from repro.core.rule_compression import (
    CompressionUnit,
    DominantSetScan,
    rule_index_of_table,
)
from repro.core.subset_probability import SubsetProbabilityVector
from repro.exceptions import UnknownTupleError
from repro.model.table import UncertainTable
from repro.query.topk import TopKQuery

#: Probabilities this close to 1 use the shift-down deconvolution path.
_CERTAIN = 1.0 - 1e-12


def deconvolve_unit(vector: np.ndarray, probability: float) -> np.ndarray:
    """Remove one independent unit from a truncated count distribution.

    :param vector: ``Pr(S, j)`` for ``j = 0..cap-1`` (must include the
        unit being removed).
    :param probability: the unit's membership probability.
    :returns: ``Pr(S \\ {u}, j)`` for the same ``j`` range.
    """
    cap = vector.shape[0]
    out = np.empty(cap, dtype=np.float64)
    if probability >= _CERTAIN:
        # a certain unit contributes exactly one to every count
        out[: cap - 1] = vector[1:]
        # the last entry is unrecoverable from a truncated vector; the
        # closed-form influence below never reads it
        out[cap - 1] = 0.0
        return out
    q = 1.0 - probability
    previous = 0.0
    for j in range(cap):
        value = (vector[j] - previous * probability) / q
        # clamp tiny negative drift from the subtraction
        value = value if value > 0.0 else 0.0
        out[j] = value
        previous = value
    return out


@dataclass(frozen=True)
class UnitInfluence:
    """How much one competing unit suppresses ``Pr^k(t)``.

    :param unit: the competing compressed unit.
    :param influence: ``Pr^k_{-unit}(t) - Pr^k(t)`` — the probability
        gained if the unit's tuples were dropped from the table.  Always
        non-negative.
    """

    unit: CompressionUnit
    influence: float


@dataclass(frozen=True)
class Explanation:
    """A full account of one tuple's top-k probability.

    :param tid: the explained tuple.
    :param k: the query's k.
    :param membership_probability: ``Pr(t)`` (the upper bound of
        Theorem 3).
    :param topk_probability: ``Pr^k(t)``.
    :param position_distribution: ``Pr(t, j)`` for ``j = 1..k``.
    :param dominant_units: the compressed dominant set ``T(t)``.
    :param excluded_rule_mates: rule-mates removed by Corollary 2.
    :param influences: per-unit influence, strongest first.
    """

    tid: Any
    k: int
    membership_probability: float
    topk_probability: float
    position_distribution: Tuple[float, ...]
    dominant_units: Tuple[CompressionUnit, ...]
    excluded_rule_mates: Tuple[Any, ...]
    influences: Tuple[UnitInfluence, ...]

    @property
    def rank_if_present_mode(self) -> int:
        """The most likely rank of the tuple, given it appears (1-based)."""
        return int(np.argmax(self.position_distribution)) + 1

    def top_suppressors(self, limit: int = 5) -> List[UnitInfluence]:
        """The units whose removal would raise ``Pr^k(t)`` the most."""
        return list(self.influences[:limit])


def explain_tuple(
    table: UncertainTable,
    query: TopKQuery,
    tid: Any,
) -> Explanation:
    """Explain ``Pr^k`` of one tuple (see module docstring).

    :raises UnknownTupleError: when ``tid`` is not in ``P(table)``.
    """
    selected = query.selected(table)
    if tid not in selected:
        raise UnknownTupleError(
            f"tuple {tid!r} does not satisfy the query predicate "
            f"(or is not in the table)"
        )
    k = query.k
    ranked = query.ranking.rank_table(selected)
    rule_of = rule_index_of_table(selected)
    scan = DominantSetScan(ranked, rule_of)
    target = None
    for tup in ranked:
        if tup.tid == tid:
            target = tup
            break
        scan.advance(tup)
    assert target is not None  # guaranteed by the membership check

    units = scan.units_for(target)
    own_rule = rule_of.get(tid)
    excluded = tuple(
        member
        for member in (own_rule.tuple_ids if own_rule is not None else ())
        if member != tid and any(r.tid == member for r in ranked)
        and _rank_of(ranked, member) < _rank_of(ranked, tid)
    )

    vector = SubsetProbabilityVector(k + 1)
    for unit in units:
        vector.extend(unit.probability)
    counts = vector.snapshot()
    fewer_than_k = float(counts[:k].sum())
    topk_probability = target.probability * min(fewer_than_k, 1.0)
    positions = tuple(
        float(target.probability * counts[j]) for j in range(k)
    )

    influences = []
    for unit in units:
        without = deconvolve_unit(counts, unit.probability)
        # gain = Pr(t) * Pr(u) * Pr(rest == k-1)
        gain = target.probability * unit.probability * float(without[k - 1])
        influences.append(UnitInfluence(unit=unit, influence=max(gain, 0.0)))
    influences.sort(key=lambda ui: (-ui.influence, ui.unit.first_rank))

    return Explanation(
        tid=tid,
        k=k,
        membership_probability=target.probability,
        topk_probability=topk_probability,
        position_distribution=positions,
        dominant_units=tuple(units),
        excluded_rule_mates=excluded,
        influences=tuple(influences),
    )


def _rank_of(ranked, tid) -> int:
    for i, tup in enumerate(ranked):
        if tup.tid == tid:
            return i
    raise UnknownTupleError(f"tuple {tid!r} not in the ranked list")


def format_explanation(explanation: Explanation, limit: int = 5) -> str:
    """Human-readable rendering used by examples and the CLI."""
    lines = [
        f"Pr^{explanation.k}({explanation.tid}) = "
        f"{explanation.topk_probability:.4f}  "
        f"(membership {explanation.membership_probability:.4f})",
        f"  competing units: {len(explanation.dominant_units)}; "
        f"rule-mates excluded: "
        f"{list(explanation.excluded_rule_mates) or 'none'}",
        f"  most likely rank if present: {explanation.rank_if_present_mode}",
        "  strongest suppressors (probability regained if removed):",
    ]
    for ui in explanation.top_suppressors(limit):
        members = ",".join(sorted(str(m) for m in ui.unit.members))
        lines.append(f"    {{{members}}}: +{ui.influence:.4f}")
    return "\n".join(lines)
