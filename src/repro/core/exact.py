"""The exact PT-k algorithm (Figure 3) in its three variants.

The engine scans the ranked list once.  For each retrieved tuple it

1. maintains the compressed dominant set incrementally
   (:class:`~repro.core.rule_compression.DominantSetScan`),
2. orders the units with the configured reordering strategy and evaluates
   the subset-probability DP, reusing the shared prefix
   (:class:`~repro.core.reordering.PrefixSharedDP`),
3. computes ``Pr^k(t) = Pr(t) * Pr(|T(t)| < k present)`` (Equation 4),
4. applies the pruning rules (Theorems 3–5) and the tail stop bound.

Variants (Section 6.2):

* ``RC`` — rule-tuple compression only; every tuple's DP is recomputed
  from scratch.
* ``RC+AR`` — compression plus aggressive reordering with prefix sharing.
* ``RC+LR`` — compression plus lazy reordering with prefix sharing (the
  paper's best performer).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core import kernel
from repro.core.kernel import TableColumns
from repro.core.pruning import PruningFlags, PruningTracker
from repro.core.reordering import (
    AggressiveReordering,
    CanonicalOrder,
    FreshDP,
    LazyReordering,
    PrefixSharedDP,
    ReorderingStrategy,
)
from repro.core.results import PTKAnswer
from repro.core.rule_compression import (
    CompressionUnit,
    DominantSetScan,
    rule_index_of_table,
)
from repro.exceptions import QueryError
from repro.model.rules import GenerationRule
from repro.obs import OBS, catalogued, span as obs_span
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.query.access import RankedStream
from repro.query.prepare import PrepareCache, PreparedRanking, resolve_prepared
from repro.query.topk import TopKQuery


class ExactVariant(enum.Enum):
    """Algorithm variants compared throughout Section 6.2."""

    RC = "RC"
    RC_AR = "RC+AR"
    RC_LR = "RC+LR"

    @property
    def strategy(self) -> ReorderingStrategy:
        """Unit-ordering strategy used by this variant."""
        if self is ExactVariant.RC:
            return CanonicalOrder()
        if self is ExactVariant.RC_AR:
            return AggressiveReordering()
        return LazyReordering()

    @property
    def shares_prefix(self) -> bool:
        """True when the variant keeps a shared-prefix DP cache."""
        return self is not ExactVariant.RC


def _validate_threshold(threshold: float) -> None:
    if not (0.0 <= threshold <= 1.0):
        raise QueryError(
            f"probability threshold must be in (0, 1], or exactly 0.0 "
            f"for full-scan mode, got {threshold!r}"
        )


def _rule_probabilities(
    table: UncertainTable, rule_of: Mapping[Any, GenerationRule]
) -> Dict[Any, float]:
    """``Pr(R)`` for every multi-tuple rule present in ``rule_of``."""
    out: Dict[Any, float] = {}
    for rule in rule_of.values():
        if rule.rule_id not in out:
            out[rule.rule_id] = table.rule_probability(rule)
    return out


@dataclass
class ScanCheckpoint:
    """A resumable scan-prefix checkpoint of an interrupted exact scan.

    Produced when :meth:`ExactPTKEngine.run` hits a ``deadline_seconds``
    budget mid-scan.  The checkpoint owns the *live engine* — stream
    cursor, dominant-set scan, shared-prefix DP, pruning-tracker state,
    and the partially filled answer — so resuming simply continues the
    very same scan: the resumed result is bit-exact with an
    uninterrupted run by construction (no state is re-derived).

    A checkpoint is single-use: the engine it wraps mutates as the scan
    continues, so :meth:`resume` refuses a second call.

    :param engine: the interrupted engine (opaque to callers).
    :param depth: tuples fully processed before the interruption.
    :param k: the query's k (for cache keying by callers).
    :param threshold: the query's probability threshold.
    :param variant: algorithm variant name (``RC`` / ``RC+AR`` /
        ``RC+LR``).
    """

    engine: "ExactPTKEngine" = field(repr=False)
    depth: int = 0
    k: int = 0
    threshold: float = 0.0
    variant: str = ""
    consumed: bool = field(default=False, repr=False)

    def resume(self, deadline_seconds: Optional[float] = None) -> PTKAnswer:
        """Continue the interrupted scan (optionally budgeted again).

        :raises QueryError: when the checkpoint was already resumed.
        """
        if self.consumed:
            raise QueryError(
                "scan checkpoint already resumed; checkpoints are "
                "single-use (request a fresh one from the new answer)"
            )
        self.consumed = True
        return self.engine.run(deadline_seconds=deadline_seconds)

    def describe(self) -> Dict[str, Any]:
        """Introspection for debug endpoints and the scheduler block."""
        return {
            "depth": self.depth,
            "k": self.k,
            "threshold": self.threshold,
            "variant": self.variant,
            "answers_so_far": len(self.engine.partial_answer.answers),
            "pruning": self.engine.tracker.snapshot(),
        }


class ExactPTKEngine:
    """Executor for a PT-k query over a ranked stream.

    Most callers should use the module-level functions
    :func:`exact_ptk_query` / :func:`exact_topk_probabilities`; the
    engine class exists so benchmarks can inspect intermediate state.

    :meth:`run` accepts an optional wall-clock budget.  A budgeted run
    that cannot finish in time returns a *partial* answer whose
    ``checkpoint`` resumes the scan later — repeated ``run()`` calls on
    one engine continue the same scan, they never restart it.

    :param ranked: full ranked list behind the stream (rank positions of
        rule members must be known up front; tuples are still *retrieved*
        progressively so scan depth is meaningful).
    :param rule_of: maps tuple id -> multi-tuple rule.
    :param rule_probability: maps rule id -> ``Pr(R)``.
    :param k: top-k size.
    :param threshold: probability threshold p in ``(0, 1]`` — or exactly
        ``0.0`` for *full-scan mode*: every ``Pr^k`` is computed, no
        tuple "passes" (``answers`` stays empty), pruning is off, and
        ``stats.stopped_by`` reads ``"exhausted"``.
    :param variant: RC / RC+AR / RC+LR.
    :param pruning: disable to force a full scan computing every ``Pr^k``
        (used for ground truth, U-KRanks, and the pruning ablation).
    :param stop_check_interval: how often the tail stop bound is checked.
    :param columnar: use the vectorized columnar kernel instead of the
        scalar per-tuple loop.  Only applies in full-scan mode (the
        kernel computes every ``Pr^k``; early termination belongs to
        the scalar scan).  Default: columnar when full-scanning,
        scalar otherwise.  ``columnar=False`` retains the scalar
        implementation as the cross-check oracle.
    :param columns: pre-built :class:`~repro.core.kernel.TableColumns`
        for ``ranked`` (e.g. from a prepared ranking or a recovered
        snapshot); built on demand when omitted.
    """

    def __init__(
        self,
        ranked: Sequence[UncertainTuple],
        rule_of: Mapping[Any, GenerationRule],
        rule_probability: Mapping[Any, float],
        k: int,
        threshold: float,
        variant: ExactVariant = ExactVariant.RC_LR,
        pruning: bool = True,
        stop_check_interval: int = 16,
        pruning_flags: Optional[PruningFlags] = None,
        columnar: Optional[bool] = None,
        columns: Optional[TableColumns] = None,
    ) -> None:
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        _validate_threshold(threshold)
        self.k = k
        self.threshold = threshold
        self.variant = variant
        self.full_scan = threshold == 0.0
        self.pruning = pruning and not self.full_scan
        self.columnar = columnar if columnar is not None else self.full_scan
        self._ranked = ranked
        self._rule_of = rule_of
        self._columns = columns
        self._stream = RankedStream(ranked, presorted=True)
        self._scan = DominantSetScan(ranked, rule_of)
        self._strategy = variant.strategy
        # cap = k + 1: entries 0..k-1 feed Pr^k, entry k serves nothing
        # here but keeps vector shapes uniform with the tail bound.
        cap = k + 1
        self._dp = PrefixSharedDP(cap) if variant.shares_prefix else FreshDP(cap)
        self._previous_order: List[CompressionUnit] = []
        self._tracker = PruningTracker(
            k=k,
            threshold=threshold,
            rule_of=rule_of,
            table_rule_probability=rule_probability,
            stop_check_interval=stop_check_interval,
            flags=pruning_flags,
        )
        # Resumable-scan state: the answer fills across run() segments,
        # and _publish increments global counters by *deltas* so a
        # resumed query is not double-counted.
        self._answer = PTKAnswer(
            k=k, threshold=threshold, method=variant.value
        )
        self._published: Dict[str, int] = {}
        # Observability: resolve metric handles once per engine so the
        # per-tuple hot path pays only a None check when obs is off.
        self._obs_dp_units = (
            catalogued("repro_ptk_dp_units") if OBS.enabled else None
        )

    @property
    def partial_answer(self) -> PTKAnswer:
        """The (possibly still partial) answer the scan is filling."""
        return self._answer

    @property
    def tracker(self) -> PruningTracker:
        """The pruning tracker (checkpoint introspection, benchmarks)."""
        return self._tracker

    def run(self, deadline_seconds: Optional[float] = None) -> PTKAnswer:
        """Execute (or continue) the scan and return the answer object.

        :param deadline_seconds: optional wall-clock budget for *this*
            call.  When the budget expires mid-scan the returned answer
            is partial: ``stats.stopped_by == "deadline"`` and
            ``answer.checkpoint`` resumes the scan.  Ignored by the
            columnar full-scan kernel (one vectorized shot, no per-tuple
            loop to interrupt).
        """
        if self.full_scan and self.columnar:
            return self._run_columnar()
        answer = self._answer
        answer.checkpoint = None
        stats = answer.stats
        stop_at = (
            None
            if deadline_seconds is None
            else time.perf_counter() + deadline_seconds
        )
        interrupted = False
        with obs_span("ptk.scan", variant=self.variant.value, k=self.k) as scan_span:
            while True:
                # The budget is checked *before* retrieving, so every
                # consumed tuple is fully processed: the stream cursor
                # is exactly the count of processed tuples and a resume
                # picks up at the next unseen one.
                if stop_at is not None and time.perf_counter() >= stop_at:
                    interrupted = True
                    break
                tup = self._stream.next_tuple()
                if tup is None:
                    break
                self._tracker.note_first_encounter(tup)
                skip_reason = self._tracker.should_skip(tup) if self.pruning else None
                if skip_reason is None:
                    probability = self._evaluate(tup)
                    stats.tuples_evaluated += 1
                    answer.probabilities[tup.tid] = probability
                    if not self.full_scan and probability >= self.threshold:
                        answer.answers.append(tup.tid)
                    self._tracker.observe(tup, probability)
                else:
                    if skip_reason == "membership":
                        stats.tuples_pruned_membership += 1
                    else:
                        stats.tuples_pruned_same_rule += 1
                    self._tracker.observe_skipped(tup, skip_reason)
                self._scan.advance(tup)
                if self.pruning:
                    stop_reason = self._tracker.should_stop(self._scan)
                    if stop_reason is not None:
                        stats.stopped_by = stop_reason
                        break
            stats.scan_depth = self._stream.scan_depth
            stats.subset_extensions = self._dp.extensions
            if interrupted:
                stats.stopped_by = "deadline"
                answer.checkpoint = ScanCheckpoint(
                    engine=self,
                    depth=stats.scan_depth,
                    k=self.k,
                    threshold=self.threshold,
                    variant=self.variant.value,
                )
            elif stats.stopped_by == "deadline":
                # A resumed scan that ran to a real stop: the stale
                # marker from the interrupted segment must not survive.
                stats.stopped_by = (
                    self._tracker.stopped_by or "exhausted"
                )
            scan_span.set(
                scan_depth=stats.scan_depth, stopped_by=stats.stopped_by
            )
        if OBS.enabled:
            self._publish(stats, self._scan.unit_counts())
        return answer

    def _run_columnar(self) -> PTKAnswer:
        """Full-scan mode on the vectorized columnar kernel.

        Produces the same ``probabilities`` map as the scalar full scan
        (to within the kernel's documented 1e-12 parity budget) with
        ``answers`` empty and a clean ``stopped_by``; the reordering
        strategy is irrelevant because the kernel maintains one live DP
        over the whole scan.
        """
        answer = PTKAnswer(
            k=self.k, threshold=self.threshold, method=self.variant.value
        )
        stats = answer.stats
        with obs_span(
            "ptk.scan", variant=self.variant.value, k=self.k, columnar=True
        ) as scan_span:
            columns = self._columns
            if columns is None:
                columns = TableColumns.from_ranked(self._ranked, self._rule_of)
            out, extensions = kernel.columnar_topk_scan(
                columns.probability, columns.rule_index, self.k
            )
            answer.probabilities.update(zip(columns.tids, out.tolist()))
            stats.scan_depth = len(columns)
            stats.tuples_evaluated = len(columns)
            stats.subset_extensions = extensions
            scan_span.set(
                scan_depth=stats.scan_depth, stopped_by=stats.stopped_by
            )
        if OBS.enabled:
            self._publish(stats, columns.unit_counts())
        return answer

    def _delta(self, key: str, value: int) -> int:
        """Unpublished growth of a stat since the last ``_publish``.

        A budgeted scan publishes once per ``run()`` segment; counting
        deltas keeps the global counters exact across resumes (absolute
        values would double-count every resumed prefix).
        """
        previous = self._published.get(key, 0)
        self._published[key] = value
        return value - previous

    def _publish(self, stats, unit_counts) -> None:
        """Flush the run's counters into the global metrics registry.

        Done once per query segment (not per tuple) so enabled-mode
        overhead stays off the inner loop.  Work counters advance by
        deltas; the per-query counters (queries, stops, the scan-depth
        histogram) fire once — queries on the first segment, stops and
        the depth sample only when the scan actually completed.
        """
        if not self._published:
            catalogued("repro_ptk_queries_total").inc(
                1.0, method=self.variant.value
            )
        catalogued("repro_ptk_tuples_scanned_total").inc(
            self._delta("scan_depth", stats.scan_depth)
        )
        catalogued("repro_ptk_tuples_evaluated_total").inc(
            self._delta("tuples_evaluated", stats.tuples_evaluated)
        )
        pruned = catalogued("repro_ptk_tuples_pruned_total")
        pruned.inc(
            self._delta("pruned_membership", stats.tuples_pruned_membership),
            theorem="membership",
        )
        pruned.inc(
            self._delta("pruned_same_rule", stats.tuples_pruned_same_rule),
            theorem="same-rule",
        )
        catalogued("repro_ptk_dp_extensions_total").inc(
            self._delta("subset_extensions", stats.subset_extensions)
        )
        if stats.stopped_by != "deadline":
            catalogued("repro_ptk_scan_depth").observe(stats.scan_depth)
            catalogued("repro_ptk_scan_stops_total").inc(
                1.0, reason=stats.stopped_by
            )
        profile = OBS.flight.current()
        if profile is not None:
            independent, rule, merges = unit_counts
            profile.engine = "exact"
            profile.variant = self.variant.value
            profile.scan_depth = stats.scan_depth
            profile.tuples_evaluated = stats.tuples_evaluated
            profile.pruned_membership = stats.tuples_pruned_membership
            profile.pruned_same_rule = stats.tuples_pruned_same_rule
            profile.dp_extensions = stats.subset_extensions
            profile.stopped_by = stats.stopped_by
            profile.compression_units_independent = independent
            profile.compression_units_rule = rule
            profile.compression_rule_merges = merges

    def _evaluate(self, tup: UncertainTuple) -> float:
        """Equation 4 over the compressed dominant set of ``tup``."""
        units = self._scan.units_for(tup)
        order = self._strategy.order_units(units, self._previous_order)
        if self._obs_dp_units is not None:
            self._obs_dp_units.observe(len(order))
        vector = self._dp.vector_for(order)
        if self.variant.shares_prefix:
            self._previous_order = order
        if len(order) < self.k:
            # Fewer than k units in the dominant set: Pr(|T(t)| < k) is
            # exactly 1, not a DP sum that may sit an ulp off it.
            return tup.probability
        # The kernel's compensated sum — identical to
        # SubsetProbabilityVector.probability_fewer_than, so the scan
        # path and the oracle/tail-bound path agree bit-for-bit on the
        # same vector (naive ndarray.sum() here once let Pr^k straddle
        # the threshold differently from the reference computation).
        return tup.probability * kernel.fewer_than_k(vector, self.k)


def exact_ptk_query(
    table: UncertainTable,
    query: TopKQuery,
    threshold: float,
    variant: ExactVariant = ExactVariant.RC_LR,
    pruning: bool = True,
    stop_check_interval: int = 16,
    pruning_flags: Optional[PruningFlags] = None,
    prepared: Optional[PreparedRanking] = None,
    cache: Optional[PrepareCache] = None,
    columnar: Optional[bool] = None,
    deadline_seconds: Optional[float] = None,
    resume: Optional[ScanCheckpoint] = None,
) -> PTKAnswer:
    """Answer a PT-k query exactly (the paper's main algorithm).

    :param table: the uncertain table ``T``.
    :param query: the top-k query ``Q^k(P, f)``.
    :param threshold: the probability threshold ``p`` in ``(0, 1]``, or
        exactly ``0.0`` for full-scan mode (every ``Pr^k`` computed,
        ``answers`` left empty, pruning off).
    :param variant: RC, RC+AR or RC+LR (default: the fastest, RC+LR).
    :param pruning: set False to compute every tuple's probability.
    :param pruning_flags: enable individual pruning rules (ablation);
        ignored when ``pruning`` is False.
    :param prepared: a ready :class:`PreparedRanking` for ``(table,
        query)``; skips selection/ranking/rule indexing entirely.
    :param cache: a :class:`PrepareCache` to consult (and fill) when
        ``prepared`` is not given.
    :param columnar: in full-scan mode, run the vectorized columnar
        kernel (the default there); ``False`` keeps the scalar
        per-tuple loop as the cross-check oracle.
    :param deadline_seconds: wall-clock budget for the scalar scan; on
        expiry the answer is partial (``stats.stopped_by ==
        "deadline"``) and carries a resumable ``checkpoint``.
    :param resume: a :class:`ScanCheckpoint` from an earlier budgeted
        call; the scan continues from its prefix instead of restarting.
        The checkpoint must come from the same (table version, k,
        threshold) — callers key their checkpoint stores accordingly —
        and every other parameter of this call is ignored.
    :returns: a :class:`~repro.core.results.PTKAnswer`.
    """
    if resume is not None:
        if resume.k != query.k or resume.threshold != threshold:
            raise QueryError(
                f"checkpoint is for k={resume.k} threshold="
                f"{resume.threshold}, cannot resume a query with "
                f"k={query.k} threshold={threshold}"
            )
        return resume.resume(deadline_seconds=deadline_seconds)
    with obs_span("ptk.prepare"):
        prepared = resolve_prepared(table, query, prepared=prepared, cache=cache)
    columns = None
    if threshold == 0.0 and columnar is not False:
        # The prepared ranking caches its columnarisation, so repeated
        # full scans against an unchanged table skip re-extraction.
        columns = prepared.columns
    engine = ExactPTKEngine(
        prepared.ranked,
        prepared.rule_of,
        prepared.rule_probability,
        k=query.k,
        threshold=threshold,
        variant=variant,
        pruning=pruning,
        stop_check_interval=stop_check_interval,
        pruning_flags=pruning_flags,
        columnar=columnar,
        columns=columns,
    )
    return engine.run(deadline_seconds=deadline_seconds)


def exact_topk_probabilities(
    table: UncertainTable,
    query: TopKQuery,
    variant: ExactVariant = ExactVariant.RC_LR,
    prepared: Optional[PreparedRanking] = None,
    cache: Optional[PrepareCache] = None,
    columnar: Optional[bool] = None,
) -> Dict[Any, float]:
    """``Pr^k`` for *every* tuple satisfying the predicate (full scan).

    A PT-k query in explicit full-scan mode (``threshold=0.0``): every
    tuple's probability is computed, nothing is declared an "answer",
    and the scan runs to exhaustion.  Used for ground-truth
    comparisons, result tables, and the alternative-semantics
    baselines.  By default the vectorized columnar kernel does the
    work; pass ``columnar=False`` for the scalar reference loop.
    """
    answer = exact_ptk_query(
        table,
        query,
        threshold=0.0,
        variant=variant,
        pruning=False,
        prepared=prepared,
        cache=cache,
        columnar=columnar,
    )
    return answer.probabilities


def exact_position_probabilities(
    table: UncertainTable,
    query: TopKQuery,
) -> Dict[Any, List[float]]:
    """Position probabilities ``Pr(t, j)`` for ``j = 1..k``, with rules.

    ``Pr(t, j) = Pr(t) * Pr(exactly j-1 of T(t) appear)`` — the rule-aware
    generalisation of Equation 3 used by the U-KRanks baseline.

    :returns: mapping tuple id -> list of k probabilities (index 0 is
        rank 1).
    """
    selected = query.selected(table)
    ranked = query.ranking.rank_table(selected)
    rule_of = rule_index_of_table(selected)
    scan = DominantSetScan(ranked, rule_of)
    strategy = LazyReordering()
    dp = PrefixSharedDP(query.k + 1)
    previous: List[CompressionUnit] = []
    result: Dict[Any, List[float]] = {}
    for tup in ranked:
        units = scan.units_for(tup)
        order = strategy.order_units(units, previous)
        vector = dp.vector_for(order)
        previous = order
        result[tup.tid] = [
            tup.probability * float(vector[j]) for j in range(query.k)
        ]
        scan.advance(tup)
    return result
