"""Pruning rules for the exact PT-k algorithm (Section 4.4).

Three rules let the algorithm skip computing ``Pr^k`` for tuples that
provably fail the threshold, and stop retrieving tuples altogether:

* **Theorem 3 (membership probability).**  ``Pr^k(t) <= Pr(t)``, and a
  *failed* independent tuple ``t`` (one with ``Pr^k(t) < p``) transfers
  its failure to every lower-ranked independent tuple with no larger
  membership probability — and to every tuple of a rule ranked entirely
  below ``t`` whose rule probability is no larger.
* **Theorem 4 (same rule).**  Within one rule, a failed member ``t``
  transfers failure to every lower-ranked member with no larger
  membership probability.
* **Theorem 5 (total probability).**  ``sum_t Pr^k(t) = E[min(k, |W|)]
  <= k``; once the probabilities already computed sum above ``k - p``,
  every remaining tuple must fail.

The tracker also implements the *tail bound* that justifies terminating
retrieval: for any unseen tuple ``t'``, its compressed dominant set
``T(t')`` contains every currently live unit except at most one (its own
rule's left part), so with ``N`` = number of live units present,

``Pr^k(t') <= Pr(count of T(t') < k) <= Pr(N <= k)``

(the first inequality is Equation 4 with ``Pr(t') <= 1``; the second
holds because removing one indicator variable shifts the count down by at
most one).  Once ``Pr(N <= k) < p`` no future tuple can pass, so the scan
stops.  This is the mechanism behind "line 6" of Figure 3 and is what
makes scan depth track ``k`` rather than ``n`` (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.core.kernel import RunningSum
from repro.core.rule_compression import DominantSetScan
from repro.core.subset_probability import SubsetProbabilityVector
from repro.model.rules import GenerationRule
from repro.model.tuples import UncertainTuple


@dataclass(frozen=True)
class PruningFlags:
    """Which pruning rules are active (for the ablation benchmark).

    :param membership: Theorem 3 (membership-probability pruning).
    :param same_rule: Theorem 4 (same-rule pruning).
    :param total_probability: Theorem 5 (total top-k probability stop).
    :param tail_bound: the ``Pr(N <= k) < p`` retrieval stop.
    """

    membership: bool = True
    same_rule: bool = True
    total_probability: bool = True
    tail_bound: bool = True

    @classmethod
    def none(cls) -> "PruningFlags":
        """All rules off: the algorithm scans and evaluates everything."""
        return cls(False, False, False, False)


class PruningTracker:
    """State machine applying Theorems 3–5 plus the tail stop bound.

    The exact engine consults :meth:`should_skip` before evaluating a
    tuple, reports every computed probability through :meth:`observe`,
    and asks :meth:`should_stop` after each scanned tuple.

    :param k: the query's k.
    :param threshold: the probability threshold p.
    :param rule_of: maps tuple id -> multi-tuple rule (independents absent).
    :param table_rule_probability: maps rule id -> ``Pr(R)``; needed by
        the rule half of Theorem 3.
    :param stop_check_interval: the tail bound costs O(u·k) to evaluate,
        so it is recomputed only every this many scanned tuples.
    :param flags: which rules are active (default: all).
    """

    def __init__(
        self,
        k: int,
        threshold: float,
        rule_of: Mapping[Any, GenerationRule],
        table_rule_probability: Mapping[Any, float],
        stop_check_interval: int = 16,
        flags: Optional[PruningFlags] = None,
    ) -> None:
        self.k = k
        self.threshold = threshold
        self.flags = flags or PruningFlags()
        self._rule_of = rule_of
        self._rule_probability = table_rule_probability
        self._stop_check_interval = max(1, stop_check_interval)
        # Theorem 3 state: largest membership probability among failed
        # independent tuples seen so far.
        self._max_failed_independent: float = -1.0
        # Theorem 3 (rule half): for each rule, the failed-independent
        # running max at the moment its first member was scanned; valid
        # because that tuple is then ranked above every rule member.
        self._rule_entry_max: Dict[Any, float] = {}
        # Theorem 4 state: per-rule largest failed member probability.
        self._rule_failed_max: Dict[Any, float] = {}
        # Theorem 5 state: compensated running sum of computed Pr^k
        # values.  A naive `+=` over up to n terms can drift across the
        # `k - p` stop boundary; the kernel accumulator cannot.
        self._probability_mass = RunningSum()
        self._since_stop_check = 0
        self.stopped_by: Optional[str] = None

    # ------------------------------------------------------------------
    # Per-tuple decisions
    # ------------------------------------------------------------------
    def note_first_encounter(self, tup: UncertainTuple) -> None:
        """Record rule-entry state when a rule's first member is scanned.

        Must be called for every retrieved tuple before
        :meth:`should_skip`.
        """
        rule = self._rule_of.get(tup.tid)
        if rule is not None and rule.rule_id not in self._rule_entry_max:
            self._rule_entry_max[rule.rule_id] = self._max_failed_independent

    def should_skip(self, tup: UncertainTuple) -> Optional[str]:
        """Can ``Pr^k(tup) < p`` be inferred without computing it?

        :returns: ``"membership"`` (Theorem 3), ``"same-rule"``
            (Theorem 4), or ``None`` when the tuple must be evaluated.
        """
        rule = self._rule_of.get(tup.tid)
        if rule is None:
            if (
                self.flags.membership
                and tup.probability <= self._max_failed_independent
            ):
                return "membership"
            return None
        # Rule half of Theorem 3: some failed independent tuple ranked
        # above the whole rule has probability >= Pr(R).
        if self.flags.membership:
            rule_probability = self._rule_probability.get(rule.rule_id, 1.0)
            entry_max = self._rule_entry_max.get(rule.rule_id, -1.0)
            if rule_probability <= entry_max:
                return "membership"
        # Theorem 4: a higher-ranked member with probability >= Pr(tup)
        # already failed.
        if self.flags.same_rule:
            failed_max = self._rule_failed_max.get(rule.rule_id, -1.0)
            if tup.probability <= failed_max:
                return "same-rule"
        return None

    def observe(self, tup: UncertainTuple, topk_probability: float) -> None:
        """Feed back a computed ``Pr^k`` so future tuples can be pruned."""
        self._probability_mass.add(topk_probability)
        if topk_probability >= self.threshold:
            return
        rule = self._rule_of.get(tup.tid)
        if rule is None:
            if tup.probability > self._max_failed_independent:
                self._max_failed_independent = tup.probability
        else:
            current = self._rule_failed_max.get(rule.rule_id, -1.0)
            if tup.probability > current:
                self._rule_failed_max[rule.rule_id] = tup.probability

    def observe_skipped(self, tup: UncertainTuple, reason: str) -> None:
        """Propagate failure knowledge from a pruned (not computed) tuple.

        A pruned tuple is known to fail, so it can strengthen the same
        trackers as a computed failure (its probability is a valid
        witness by the transitivity of Theorems 3 and 4).
        """
        rule = self._rule_of.get(tup.tid)
        if rule is None:
            if tup.probability > self._max_failed_independent:
                self._max_failed_independent = tup.probability
        else:
            current = self._rule_failed_max.get(rule.rule_id, -1.0)
            if tup.probability > current:
                self._rule_failed_max[rule.rule_id] = tup.probability

    # ------------------------------------------------------------------
    # Stop decisions
    # ------------------------------------------------------------------
    def should_stop(self, scan: DominantSetScan) -> Optional[str]:
        """Decide whether no unseen tuple can pass the threshold.

        Checks Theorem 5 on every call and the tail bound every
        ``stop_check_interval`` calls.

        :returns: ``"total-probability"`` or ``"tail-bound"`` when the
            scan may stop, else ``None``.
        """
        if (
            self.flags.total_probability
            and self._probability_mass.value > self.k - self.threshold
        ):
            self.stopped_by = "total-probability"
            return self.stopped_by
        if self.flags.tail_bound:
            self._since_stop_check += 1
            if self._since_stop_check >= self._stop_check_interval:
                self._since_stop_check = 0
                if self._tail_bound(scan) < self.threshold:
                    self.stopped_by = "tail-bound"
                    return self.stopped_by
        return None

    def _tail_bound(self, scan: DominantSetScan) -> float:
        """``Pr(at most k of the live units appear)`` — the stop bound."""
        units = scan.all_units()
        if len(units) <= self.k:
            return 1.0
        vector = SubsetProbabilityVector(self.k + 1)
        vector.extend_run([unit.probability for unit in units])
        return vector.probability_fewer_than(self.k + 1)

    @property
    def probability_mass(self) -> float:
        """Sum of all computed ``Pr^k`` values so far (Theorem 5 state)."""
        return self._probability_mass.value

    def snapshot(self) -> Dict[str, Any]:
        """The tracker's Theorem 3–5 state as a JSON-able dict.

        The scan-prefix checkpoint (:class:`~repro.core.exact.ScanCheckpoint`)
        exposes this so debug tooling — and the resume-parity tests —
        can see exactly what pruning knowledge an interrupted scan
        carries across the deadline boundary.  The live tracker object
        itself stays with the engine; this is a read-only view.
        """
        return {
            "k": self.k,
            "threshold": self.threshold,
            "probability_mass": self._probability_mass.value,
            "max_failed_independent": self._max_failed_independent,
            "rules_entered": len(self._rule_entry_max),
            "rules_with_failed_members": len(self._rule_failed_max),
            "since_stop_check": self._since_stop_check,
            "stopped_by": self.stopped_by,
        }
