"""Chernoff-bound prefilter: deciding tuples without the DP.

The journal follow-up to the reproduced paper explores approximating
top-k probabilities from the *mean* of the dominant count alone.  This
module implements a **sound** version of that idea: two-sided Bernstein/
Chernoff bounds on ``F(t) = Pr(|T(t)| < k)`` from the dominant set's
probability mass ``μ`` (variance of a Poisson-binomial is at most its
mean), giving

* a lower bound ``F_lo``: when ``Pr(t) · F_lo >= p`` the tuple is
  *certainly in* the answer;
* an upper bound ``F_hi``: when ``Pr(t) · F_hi < p`` it is *certainly
  out*;

and only the undecided remainder runs the exact subset-probability DP.
Answers are therefore **exact** — the bounds only skip work — and the
fraction of tuples decided by bounds alone is reported (typically the
vast majority, because most tuples sit far from the decision boundary).

Bounds used (``N`` = dominant count, ``E[N] = μ``, ``Var[N] <= μ``):

.. math::

    Pr(N \\ge \\mu + t) &\\le \\exp\\Big(\\frac{-t^2}{2\\mu + 2t/3}\\Big)
    \\qquad\\text{(Bernstein, upper tail)} \\\\
    Pr(N \\le \\mu - t) &\\le \\exp\\Big(\\frac{-t^2}{2\\mu}\\Big)
    \\qquad\\text{(lower tail)}
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.core import kernel
from repro.core.reordering import LazyReordering, PrefixSharedDP
from repro.core.results import PTKAnswer
from repro.core.rule_compression import (
    CompressionUnit,
    DominantSetScan,
    rule_index_of_table,
)
from repro.exceptions import QueryError
from repro.model.table import UncertainTable
from repro.query.topk import TopKQuery


def chernoff_topk_bounds(mu: float, k: int) -> Tuple[float, float]:
    """Sound bounds on ``F = Pr(N < k)`` from the count's mean alone.

    :param mu: mean of the dominant count (sum of unit probabilities).
    :param k: the query's k.
    :returns: ``(F_lo, F_hi)`` with ``F_lo <= F <= F_hi``.
    """
    if mu < 0:
        raise QueryError(f"mu must be non-negative, got {mu}")
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    # Upper tail: F = 1 - Pr(N >= k); informative when k is above mu.
    if k > mu:
        t = k - mu
        upper_tail = math.exp(-(t * t) / (2.0 * mu + 2.0 * t / 3.0)) if mu > 0 or t > 0 else 0.0
        f_lo = max(0.0, 1.0 - upper_tail)
    else:
        f_lo = 0.0
    # Lower tail: F <= Pr(N <= k - 1); informative when k - 1 is below mu.
    if mu > k - 1:
        t = mu - (k - 1)
        f_hi = min(1.0, math.exp(-(t * t) / (2.0 * mu)))
    else:
        f_hi = 1.0
    return f_lo, f_hi


@dataclass
class PrefilterStats:
    """How much work the bounds saved.

    :param decided_in: tuples accepted by ``F_lo`` alone.
    :param decided_out: tuples rejected by ``F_hi`` (or by
        ``Pr(t) < p``) alone.
    :param evaluated: tuples that needed the exact DP.
    """

    decided_in: int = 0
    decided_out: int = 0
    evaluated: int = 0

    @property
    def total(self) -> int:
        return self.decided_in + self.decided_out + self.evaluated

    @property
    def decided_fraction(self) -> float:
        """Fraction of tuples decided without the DP."""
        if self.total == 0:
            return 0.0
        return (self.decided_in + self.decided_out) / self.total


def ptk_with_prefilter(
    table: UncertainTable,
    query: TopKQuery,
    threshold: float,
) -> Tuple[PTKAnswer, PrefilterStats]:
    """Exact PT-k answering with the Chernoff prefilter.

    Scans the full ranked list (the filter is about skipping DP work,
    not retrieval — combine with the pruned engine when retrieval cost
    dominates) and decides each tuple by bounds when possible, by the
    shared-prefix DP otherwise.

    :returns: ``(answer, stats)``; the answer's ``probabilities`` map
        only contains the DP-evaluated tuples (decided-by-bounds tuples
        carry no exact value — that is the point).
    """
    if not (0.0 < threshold <= 1.0):
        raise QueryError(
            f"probability threshold must be in (0, 1], got {threshold!r}"
        )
    k = query.k
    selected = query.selected(table)
    ranked = query.ranking.rank_table(selected)
    rule_of = rule_index_of_table(selected)
    scan = DominantSetScan(ranked, rule_of)
    strategy = LazyReordering()
    dp = PrefixSharedDP(cap=k + 1)
    previous: List[CompressionUnit] = []
    answer = PTKAnswer(k=k, threshold=threshold, method="chernoff-prefilter")
    stats = PrefilterStats()

    # Incremental dominant mass: prefix mass minus the tuple's own
    # rule-mates already seen.
    prefix_mass = 0.0
    rule_seen_mass: Dict[Any, float] = {}

    for tup in ranked:
        rule = rule_of.get(tup.tid)
        own_mass = rule_seen_mass.get(rule.rule_id, 0.0) if rule else 0.0
        mu = prefix_mass - own_mass
        decided = False
        if tup.probability < threshold:
            stats.decided_out += 1
            decided = True
        else:
            f_lo, f_hi = chernoff_topk_bounds(mu, k)
            if tup.probability * f_lo >= threshold:
                answer.answers.append(tup.tid)
                stats.decided_in += 1
                decided = True
            elif tup.probability * f_hi < threshold:
                stats.decided_out += 1
                decided = True
        if not decided:
            units = scan.units_for(tup)
            order = strategy.order_units(units, previous)
            vector = dp.vector_for(order)
            previous = order
            if len(order) < k:
                # Fewer than k units in the dominant set: Pr(|T(t)| < k)
                # is exactly 1, not a DP sum that may sit an ulp off it.
                probability = tup.probability
            else:
                # Same compensated sum as the exact engine, so the two
                # paths agree bit-for-bit on threshold-straddling values
                # (a naive ndarray.sum() here could land an ulp below
                # the true mass and flip a boundary decision).
                probability = tup.probability * kernel.fewer_than_k(vector, k)
            answer.probabilities[tup.tid] = probability
            if probability >= threshold:
                answer.answers.append(tup.tid)
            stats.evaluated += 1
        scan.advance(tup)
        prefix_mass += tup.probability
        if rule is not None:
            rule_seen_mass[rule.rule_id] = own_mass + tup.probability

    answer.stats.scan_depth = len(ranked)
    answer.stats.tuples_evaluated = stats.evaluated
    answer.stats.subset_extensions = dp.extensions
    return answer, stats
