"""Core PT-k query algorithms — the paper's primary contribution.

Layout mirrors Section 4 and Section 5 of the paper:

* :mod:`~repro.core.subset_probability` — the Poisson-binomial dynamic
  program behind subset probabilities ``Pr(S, j)`` (Theorem 2).
* :mod:`~repro.core.basic_case` — the O(kn) exact algorithm when every
  tuple is independent (Equations 3–4).
* :mod:`~repro.core.rule_compression` — rule-tuple compression
  (Cases 1–3, Corollaries 1–2) producing compressed dominant sets.
* :mod:`~repro.core.reordering` — aggressive and lazy prefix-sharing
  orders over compression units with the Equation-5 cost accounting.
* :mod:`~repro.core.pruning` — the three pruning rules (Theorems 3–5)
  plus the early-stop bound on unseen tuples.
* :mod:`~repro.core.exact` — the complete exact algorithm (Figure 3) in
  three variants: RC, RC+AR, RC+LR.
* :mod:`~repro.core.sampling` — the Monte-Carlo estimator of Section 5
  with lazy unit generation and progressive stopping.
* :mod:`~repro.core.results` — result/statistics containers shared by the
  algorithms and the benchmark harness.
"""

from repro.core.basic_case import topk_probabilities_independent
from repro.core.exact import ExactVariant, exact_ptk_query, exact_topk_probabilities
from repro.core.results import AlgorithmStats, PTKAnswer, TupleProbability
from repro.core.sampling import (
    SamplingConfig,
    SamplingResult,
    sampled_ptk_query,
    sampled_topk_probabilities,
)
from repro.core.subset_probability import (
    SubsetProbabilityVector,
    subset_probabilities,
)

__all__ = [
    "AlgorithmStats",
    "ExactVariant",
    "PTKAnswer",
    "SamplingConfig",
    "SamplingResult",
    "SubsetProbabilityVector",
    "TupleProbability",
    "exact_ptk_query",
    "exact_topk_probabilities",
    "sampled_ptk_query",
    "sampled_topk_probabilities",
    "subset_probabilities",
    "topk_probabilities_independent",
]
