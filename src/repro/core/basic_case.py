"""The basic case: exact top-k probabilities when all tuples are independent.

Section 4.2 of the paper.  With the tuples sorted into the ranking order
``t_1 .. t_n``, tuple ``t_i`` is in the top-k exactly when fewer than ``k``
of its dominant set ``S_{t_i} = {t_1 .. t_{i-1}}`` appear, so

.. math::

    Pr^k(t_i) = Pr(t_i) \\sum_{j=0}^{k-1} Pr(S_{t_{i-1}}, j)

One forward scan maintains the subset-probability vector of the growing
prefix; total time O(kn).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.core.subset_probability import SubsetProbabilityVector
from repro.exceptions import QueryError
from repro.model.tuples import UncertainTuple


def topk_probabilities_independent(
    ranked: Sequence[UncertainTuple], k: int
) -> Dict[Any, float]:
    """Exact ``Pr^k`` for every tuple of an all-independent ranked list.

    :param ranked: tuples already in the ranking order, best first.
    :param k: the top-k size.
    :returns: mapping tuple id -> top-k probability.
    :raises QueryError: if ``k`` is not positive.

    This is the O(kn) algorithm of Section 4.2; it assumes independence
    and silently gives wrong answers if rule-involved tuples are passed
    (use :func:`repro.core.exact.exact_topk_probabilities` then).
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    vector = SubsetProbabilityVector(k)
    result: Dict[Any, float] = {}
    for tup in ranked:
        result[tup.tid] = tup.probability * vector.probability_fewer_than(k)
        vector.extend(tup.probability)
    return result


def topk_probabilities_from_probs(
    probabilities: Sequence[float], k: int
) -> np.ndarray:
    """Vectorised variant over bare probabilities (positions as ids).

    :returns: array ``r`` with ``r[i] = Pr^k(t_{i+1})`` for the ranked
        list whose membership probabilities are ``probabilities``.
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    vector = SubsetProbabilityVector(k)
    out = np.empty(len(probabilities), dtype=np.float64)
    for i, p in enumerate(probabilities):
        out[i] = p * vector.probability_fewer_than(k)
        vector.extend(p)
    return out


def position_probabilities_independent(
    ranked: Sequence[UncertainTuple], k: int
) -> Dict[Any, List[float]]:
    """Position probabilities ``Pr(t_i, j)`` for ``j = 1..k`` (Equation 3).

    ``Pr(t_i, j) = Pr(t_i) * Pr(S_{t_{i-1}}, j-1)``: the probability that
    ``t_i`` appears and is ranked exactly ``j``-th.  Used by the U-KRanks
    baseline in the independent case.

    :returns: mapping tuple id -> list of k probabilities (index 0 is
        rank 1).
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    vector = SubsetProbabilityVector(k)
    result: Dict[Any, List[float]] = {}
    for tup in ranked:
        result[tup.tid] = [
            tup.probability * vector.probability_at(j) for j in range(k)
        ]
        vector.extend(tup.probability)
    return result
