"""Columnar compute kernel for the exact PT-k dynamic program.

This module is the single numeric core shared by the scan path, the
pruning tracker, and the scalar oracle:

* **One summation primitive.**  Every ``Pr(|S| < k)`` style sum in the
  library — Equation 4's ``fewer_than_k`` factor, the tail stop bound,
  and Theorem 5's running probability mass — routes through
  :func:`compensated_sum` / :func:`fewer_than_k` / :class:`RunningSum`
  so no two code paths can disagree about the same partial sum again
  (the PR-6 era bug where ``exact._evaluate`` used a naive ``ndarray
  .sum()`` while ``SubsetProbabilityVector`` used ``math.fsum``).
* **Batched Theorem-2 extensions.**  :func:`dp_extend` and
  :func:`dp_extend_chain` fold a contiguous run of independent units
  into a DP vector with numpy-vectorised inner steps instead of one
  python call per unit.
* **A columnar table representation.**  :class:`TableColumns` holds the
  ranked tuples of a prepared query as float64 score/probability
  columns plus an int64 rule-index column — the same layout the durable
  snapshot format persists, so recovery can hand the serving layer
  memory-mapped columns without materialising tuple objects.
* **A full-scan kernel.**  :func:`columnar_topk_scan` computes
  ``Pr^k(t)`` for *every* tuple of a ranked columnar table in one pass,
  10–100x faster than the per-tuple python loop at ``n >= 1e5``, while
  staying within ``1e-12`` of the retained scalar implementation (the
  cross-check oracle; see ``tests/test_kernel.py``).

Layering: this module imports only :mod:`numpy` and
:mod:`repro.exceptions` so every other layer (model, core, query,
durable) can depend on it without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import QueryError

#: Block length for batched DP runs: bounds the chain-matrix scratch at
#: ``(_RUN_BLOCK + 1) * cap`` float64s while keeping per-row numpy
#: dispatch overhead amortised.
_RUN_BLOCK = 2048



# ----------------------------------------------------------------------
# The shared summation primitive
# ----------------------------------------------------------------------
def compensated_sum(values: Iterable[float]) -> float:
    """Exactly rounded sum of floats (``math.fsum`` under the hood).

    The one primitive behind every probability summation in the
    library.  Accepts any iterable, including numpy arrays.
    """
    if isinstance(values, np.ndarray):
        values = values.tolist()
    return float(math.fsum(values))


def fewer_than_k(vector: np.ndarray, k: int) -> float:
    """``Pr(|S ∩ W| < k)`` from a DP vector — Equation 4's second factor.

    Sums entries ``0..k-1`` with :func:`compensated_sum` and clamps at 1
    (the entries of a truncated Poisson-binomial vector can drift a few
    ulps above a true sum of 1).
    """
    if k < 0 or k > vector.shape[0]:
        raise QueryError(
            f"k must be in [0, {vector.shape[0]}], got {k}"
        )
    total = compensated_sum(vector[:k])
    return total if total < 1.0 else 1.0


def fewer_than_k_batch(matrix: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`fewer_than_k` over a ``(rows, cap)`` DP matrix.

    Used by the columnar scan so batched evaluation goes through the
    identical compensated sum as the scalar path — same inputs, same
    bits out.
    """
    if matrix.shape[0] == 0:
        return np.empty(0, dtype=np.float64)
    rows = matrix[:, :k] if matrix.shape[1] > k else matrix
    out = np.fromiter(
        map(math.fsum, rows.tolist()), dtype=np.float64, count=rows.shape[0]
    )
    np.minimum(out, 1.0, out=out)
    return out


class RunningSum:
    """Streaming compensated accumulator (Neumaier variant of Kahan).

    For call sites that cannot buffer their terms — e.g. the Theorem-5
    probability mass, fed one ``Pr^k`` at a time over up to ``n``
    tuples, where naive ``+=`` can drift across the ``k - p`` stop
    boundary.
    """

    __slots__ = ("_sum", "_compensation", "count")

    def __init__(self) -> None:
        self._sum = 0.0
        self._compensation = 0.0
        self.count = 0

    def add(self, value: float) -> None:
        """Fold one term into the running total."""
        total = self._sum + value
        if abs(self._sum) >= abs(value):
            self._compensation += (self._sum - total) + value
        else:
            self._compensation += (value - total) + self._sum
        self._sum = total
        self.count += 1

    @property
    def value(self) -> float:
        """The compensated total of everything added so far."""
        return self._sum + self._compensation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunningSum(value={self.value!r}, count={self.count})"


# ----------------------------------------------------------------------
# Batched Theorem-2 extensions
# ----------------------------------------------------------------------
def dp_extend(vector: np.ndarray, probabilities: np.ndarray) -> int:
    """Fold a run of independent units into ``vector``, in place.

    Each step is the Theorem-2 recurrence
    ``v'[j] = v[j-1]·p + v[j]·(1-p)`` truncated at the vector's cap.

    :returns: the number of extensions performed (the Equation-5 cost).
    """
    head = vector[:-1]
    for p in probabilities:
        shifted = head * p
        vector *= 1.0 - p
        vector[1:] += shifted
    return len(probabilities)


def dp_extend_chain(initial: np.ndarray, probabilities: np.ndarray) -> np.ndarray:
    """All intermediate DP vectors of a run, as a ``(L+1, cap)`` matrix.

    ``result[0]`` is ``initial`` (copied); ``result[i]`` is the vector
    after folding ``probabilities[:i]``.  This is the batched form of
    the prefix-snapshot chain that :class:`PrefixSharedDP` keeps, and
    what lets the columnar scan evaluate a whole run of independent
    tuples with one row-sum instead of per-tuple python calls.
    """
    length = int(len(probabilities))
    cap = int(initial.shape[0])
    chain = np.empty((length + 1, cap), dtype=np.float64)
    chain[0] = initial
    for i in range(length):
        previous = chain[i]
        current = chain[i + 1]
        p = probabilities[i]
        np.multiply(previous, 1.0 - p, out=current)
        current[1:] += previous[:-1] * p
    return chain


def dp_divide_out(vector: np.ndarray, q: float, out: np.ndarray) -> np.ndarray:
    """Invert one Theorem-2 extension: recover ``w`` with ``extend(w, q) == vector``.

    The forward recurrence ``w[j] = (v[j] - q·w[j-1]) / (1-q)`` is exact
    with respect to truncation — the first ``cap`` entries of ``v``
    determine the first ``cap`` entries of ``w`` — but amplifies float
    error by up to ``1/(1-2q)``, so it is only numerically safe for
    ``q`` well below 0.5.  The full-scan kernel therefore serves rule
    exclusions from a :class:`_RuleFactorTree` instead; this primitive
    remains for callers with provably cold factors.
    """
    inverse = 1.0 / (1.0 - q)
    previous = 0.0
    recovered: List[float] = []
    for value in vector.tolist():
        previous = (value - q * previous) * inverse
        recovered.append(previous)
    out[:] = recovered
    return out


# ----------------------------------------------------------------------
# The columnar table representation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableColumns:
    """Ranked tuples of a prepared query as dense float64/int64 columns.

    The layout durable snapshots persist and :class:`~repro.query.
    prepare.PreparedRanking` caches: ``score`` and ``probability`` are
    contiguous float64 arrays in ranking order (best first) and
    ``rule_index`` maps each position to a small integer rule slot
    (``-1`` for independent tuples) indexing into ``rule_ids``.

    Ownership: the arrays are owned by whoever built them — a prepared
    ranking owns freshly materialised columns, a recovered snapshot
    hands out views over its memory-map — and are treated as immutable
    by every consumer.  The kernel never writes to them.
    """

    tids: Tuple[Any, ...]
    score: np.ndarray
    probability: np.ndarray
    rule_index: np.ndarray
    rule_ids: Tuple[Any, ...]

    def __len__(self) -> int:
        return len(self.tids)

    @classmethod
    def from_ranked(
        cls,
        ranked: Sequence[Any],
        rule_of: Mapping[Any, Any],
    ) -> "TableColumns":
        """Columnarise a ranked tuple sequence (best first).

        ``ranked`` items need ``tid`` / ``score`` / ``probability``
        attributes; ``rule_of`` maps tuple id to an object with a
        ``rule_id`` attribute (independent tuples absent).
        """
        n = len(ranked)
        score = np.fromiter(
            (t.score for t in ranked), dtype=np.float64, count=n
        )
        probability = np.fromiter(
            (t.probability for t in ranked), dtype=np.float64, count=n
        )
        rule_index = np.full(n, -1, dtype=np.int64)
        rule_ids: List[Any] = []
        slot_of: Dict[Any, int] = {}
        for position, tup in enumerate(ranked):
            rule = rule_of.get(tup.tid)
            if rule is None:
                continue
            slot = slot_of.get(rule.rule_id)
            if slot is None:
                slot = len(rule_ids)
                slot_of[rule.rule_id] = slot
                rule_ids.append(rule.rule_id)
            rule_index[position] = slot
        return cls(
            tids=tuple(t.tid for t in ranked),
            score=score,
            probability=probability,
            rule_index=rule_index,
            rule_ids=tuple(rule_ids),
        )

    def unit_counts(self) -> Tuple[int, int, int]:
        """``(independent units, rule units, rule merges)`` over the table.

        The full-scan analogue of ``DominantSetScan.unit_counts`` for
        the flight recorder.
        """
        rule_positions = self.rule_index >= 0
        members = int(rule_positions.sum())
        independent = len(self.tids) - members
        rules = int(np.unique(self.rule_index[rule_positions]).size)
        return independent, rules, max(members - rules, 0)


def ranked_order(scores: np.ndarray, tids: Sequence[Any]) -> np.ndarray:
    """Ranking-order permutation: score descending, ``str(tid)`` ascending.

    Matches the python-level ``sorted(key=(-score, str(tid)))`` ranking
    exactly: numpy's ``<U`` comparison is code-point ordering, the same
    relation python strings use, and ``lexsort`` is stable.
    """
    score_column = np.asarray(scores, dtype=np.float64)
    tid_keys = np.asarray([str(t) for t in tids])
    return np.lexsort((tid_keys, -score_column))


# ----------------------------------------------------------------------
# The full-scan kernel
# ----------------------------------------------------------------------
class _RuleFactorTree:
    """Segment tree over the rule-tuple factor polynomials.

    Leaf ``s`` holds rule slot ``s``'s Corollary-1 factor
    ``(1 - q_s) + q_s·x`` (the constant polynomial 1 while the rule is
    unseen); an internal node holds the truncated product of its
    children.  Truncation at the DP cap is associativity-safe: the
    coefficients below the cap of a product depend only on the
    coefficients below the cap of its factors.

    Both operations the scan needs — refreshing one rule's probability
    sum, and the Corollary-2 product of *every other* rule's factor —
    cost ``O(log m)`` truncated convolutions, so exclusion never
    requires the numerically unstable divide-out of a hot factor nor an
    ``O(m)`` rebuild per member.
    """

    __slots__ = ("cap", "size", "nodes")

    def __init__(self, slots: int, cap: int) -> None:
        self.cap = cap
        size = 1
        while size < max(slots, 1):
            size *= 2
        self.size = size
        one = np.ones(1, dtype=np.float64)
        # Heap layout: node 1 is the root, leaves start at ``size``.
        self.nodes: List[np.ndarray] = [one] * (2 * size)

    def update(self, slot: int, q: float) -> None:
        """Set rule ``slot``'s factor to ``(1-q) + q·x`` and re-product."""
        node = self.size + slot
        self.nodes[node] = np.array([1.0 - q, q], dtype=np.float64)
        node //= 2
        while node >= 1:
            self.nodes[node] = self._product(
                self.nodes[2 * node], self.nodes[2 * node + 1]
            )
            node //= 2

    def root(self) -> np.ndarray:
        """The truncated product of every rule factor."""
        return self.nodes[1]

    def product_excluding(self, slot: int) -> np.ndarray:
        """The truncated product of every rule factor except ``slot``'s.

        Multiplies the sibling node on each level of ``slot``'s
        root-path; for an unseen slot this equals :meth:`root`.
        """
        result = np.ones(1, dtype=np.float64)
        node = self.size + slot
        while node > 1:
            result = self._product(result, self.nodes[node ^ 1])
            node //= 2
        return result

    def _product(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # Node arrays are immutable by convention, so the identity
        # shortcuts may share references.
        if a.shape[0] == 1 and a[0] == 1.0:
            return b
        if b.shape[0] == 1 and b[0] == 1.0:
            return a
        full = np.convolve(a, b)
        return full[: self.cap] if full.shape[0] > self.cap else full


def _combined(v_independent: np.ndarray, factors: np.ndarray, k: int) -> np.ndarray:
    """Fresh length-``k`` DP vector ``v_independent ⊗ factors``."""
    if factors.shape[0] == 1 and factors[0] == 1.0:
        return v_independent.copy()
    return np.ascontiguousarray(np.convolve(v_independent, factors)[:k])


def columnar_topk_scan(
    probability: np.ndarray,
    rule_index: Optional[np.ndarray],
    k: int,
) -> Tuple[np.ndarray, int]:
    """``Pr^k(t)`` for every tuple of a ranked columnar table.

    One forward pass in ranking order, equivalent to the scalar
    engine's full scan (pruning off):

    * an independent-only DP vector accumulates every scanned
      independent unit, and a :class:`_RuleFactorTree` carries one
      Corollary-1 factor per scanned rule at its clamped compensated
      probability sum, so the compressed dominant set of the next tuple
      is always ``v_independent ⊗ tree product``;
    * runs of independent tuples are evaluated in blocks — a batched
      Theorem-2 chain plus one compensated row-sum per tuple;
    * a rule member's own rule-tuple must be excluded (Corollary 2):
      its ``Pr(|T(t)| < k)`` factor comes from ``v_independent ⊗``
      the tree product *excluding its slot* — ``O(log m)`` truncated
      convolutions, stable for any factor probability up to and
      including certain rules at ``q = 1``.

    :param probability: float64 membership probabilities, ranking order.
    :param rule_index: int64 rule slot per position, ``-1`` for
        independent tuples; ``None`` means all independent.
    :param k: the query's k (DP cap; entries ``0..k-1`` feed ``Pr^k``).
    :returns: ``(out, extensions)`` — the ``Pr^k`` column and the count
        of Theorem-2 extensions performed (Equation-5 cost; each rule
        factor refresh counts as one extension).
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    p = np.ascontiguousarray(probability, dtype=np.float64)
    n = int(p.shape[0])
    out = np.zeros(n, dtype=np.float64)
    if n == 0:
        return out, 0

    v_independent = np.zeros(k, dtype=np.float64)
    v_independent[0] = 1.0
    extensions = 0

    if rule_index is None:
        rule_positions = None
    else:
        r = np.ascontiguousarray(rule_index, dtype=np.int64)
        rule_positions = r if bool((r >= 0).any()) else None

    if rule_positions is None:
        extensions += _scan_run(v_independent, p, out, 0, n, k, base_count=0)
        np.multiply(out, p, out=out)
        return out, extensions

    r_list = r.tolist()
    p_list = p.tolist()
    tree = _RuleFactorTree(int(r.max()) + 1, k)
    # Per-rule member probabilities in scan order; the rule-tuple
    # probability is their compensated sum — the same quantity
    # DominantSetScan computes, so both paths see identical units.
    rule_member_probs: Dict[int, List[float]] = {}
    rule_sum: Dict[int, float] = {}
    # Number of live units (independents + one rule-tuple per seen
    # rule).  While a tuple's dominant set has fewer than k units,
    # ``Pr(|T(t)| < k) = 1`` *exactly* — served as the literal constant
    # rather than a DP sum that can sit an ulp below 1.
    unit_count = 0
    i = 0
    while i < n:
        if r_list[i] < 0:
            j = i + 1
            while j < n and r_list[j] < 0:
                j += 1
            run_vector = _combined(v_independent, tree.root(), k)
            extensions += _scan_run(
                run_vector, p, out, i, j, k, base_count=unit_count
            )
            out[i:j] *= p[i:j]
            extensions += dp_extend(v_independent, p[i:j])
            unit_count += j - i
            i = j
            continue
        slot = r_list[i]
        own_probability = p_list[i]
        seen_sum = rule_sum.get(slot, 0.0)
        excluded_count = unit_count - (1 if seen_sum > 0.0 else 0)
        if excluded_count < k:
            out[i] = own_probability
        else:
            excluded = _combined(
                v_independent, tree.product_excluding(slot), k
            )
            out[i] = own_probability * fewer_than_k(excluded, k)
        members = rule_member_probs.setdefault(slot, [])
        members.append(own_probability)
        new_sum = compensated_sum(members)
        rule_sum[slot] = new_sum
        tree.update(slot, new_sum if new_sum < 1.0 else 1.0)
        extensions += 1  # the rule-tuple factor refresh
        if seen_sum <= 0.0:
            unit_count += 1  # a fresh rule-tuple joined the live units
        i += 1
    return out, extensions


def _scan_run(
    v: np.ndarray,
    p: np.ndarray,
    out: np.ndarray,
    start: int,
    stop: int,
    k: int,
    base_count: int,
) -> int:
    """Evaluate a run of independent tuples, folding them into ``v``.

    Writes each tuple's ``Pr(|T(t)| < k)`` factor (clamped compensated
    sum of the pre-extension vector) into ``out[start:stop]``; the
    caller multiplies by the membership probabilities.  ``base_count``
    is the number of units already folded into ``v``: positions whose
    dominant set holds fewer than k units get the exact constant 1.
    """
    i = start
    while i < stop:
        j = min(i + _RUN_BLOCK, stop)
        chain = dp_extend_chain(v, p[i:j])
        out[i:j] = fewer_than_k_batch(chain[: j - i], k)
        v[:] = chain[j - i]
        i = j
    ones_end = min(stop, start + max(k - base_count, 0))
    if ones_end > start:
        out[start:ones_end] = 1.0
    return stop - start
