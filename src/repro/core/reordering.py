"""Prefix-sharing reordering of compressed dominant sets (Section 4.3.2).

Equation 4 is order-insensitive: the subset-probability DP over ``T(t_i)``
may fold the units in any order.  Consecutive tuples' compressed dominant
sets overlap heavily, so ordering the shared units first lets the DP
vector computed for ``t_i`` be *reused* for ``t_{i+1}`` up to their
longest common prefix.  The number of DP extensions actually performed is
the cost the paper counts (Equation 5):

.. math::

    Cost = \\sum_i \\big(|L(t_{i+1})| - |Prefix(L(t_i), L(t_{i+1}))|\\big)

Two ordering strategies from the paper:

* **Aggressive** — independent tuples and completed rule-tuples first (in
  ranking order), then open rule-tuples ordered by their next member's
  rank, descending (rules about to change go last).
* **Lazy** — keep the longest still-valid prefix of the previous order
  untouched, then append the remaining units using the aggressive
  ordering heuristics.  The paper proves lazy never costs more than
  aggressive; the ``bench_reordering_cost`` benchmark measures both.

Unit identity is the frozen set of compressed member ids
(:class:`~repro.core.rule_compression.CompressionUnit.members`), so a
rule-tuple absorbed a new member is — correctly — a *different* unit and
invalidates any cached prefix containing the old one.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

import numpy as np

from repro.core import kernel
from repro.core.rule_compression import CompressionUnit
from repro.core.subset_probability import SubsetProbabilityVector
from repro.obs import OBS, catalogued


def _resolve_prefix_metrics():
    """The four prefix-sharing counters, pre-seeded so every sample
    exists (value 0) from the first instrumented query; ``None`` off."""
    if not OBS.enabled:
        return None
    hits = catalogued("repro_reorder_prefix_hits_total")
    misses = catalogued("repro_reorder_prefix_misses_total")
    reused = catalogued("repro_reorder_dp_cells_reused_total")
    recomputed = catalogued("repro_reorder_dp_cells_recomputed_total")
    for metric in (hits, misses, reused, recomputed):
        metric.inc(0.0)
    return hits, misses, reused, recomputed


def _closed_then_open(units: Sequence[CompressionUnit]) -> List[CompressionUnit]:
    """Aggressive ordering heuristic applied to a bag of units.

    Closed units (independent tuples and completed rule-tuples) come
    first, ordered by the scan position at which they reached their
    final form (``last_rank`` — matching the paper's Example 5, where a
    freshly completed rule-tuple lands at the rear of the closed block);
    open rule-tuples come last, ordered by next-member rank *descending*
    so the unit that will change soonest sits at the very rear.
    """
    closed = sorted(
        (u for u in units if not u.is_open), key=lambda u: u.last_rank
    )
    open_units = sorted(
        (u for u in units if u.is_open),
        key=lambda u: u.next_rank,
        reverse=True,
    )
    return closed + open_units


class ReorderingStrategy:
    """Base class: turns the needed units into a concrete DP order.

    Strategies are stateless with respect to correctness — any
    permutation yields the same probabilities — and differ only in how
    much of the previous order's prefix they preserve.
    """

    name = "base"

    def order_units(
        self,
        needed: Sequence[CompressionUnit],
        previous: Sequence[CompressionUnit],
    ) -> List[CompressionUnit]:
        raise NotImplementedError  # pragma: no cover


class CanonicalOrder(ReorderingStrategy):
    """No reordering: units in ranking order of their best member.

    This is the order the plain RC variant conceptually uses; combined
    with a from-scratch DP it reproduces the paper's "RC" baseline.
    """

    name = "canonical"

    def order_units(
        self,
        needed: Sequence[CompressionUnit],
        previous: Sequence[CompressionUnit],
    ) -> List[CompressionUnit]:
        return sorted(needed, key=lambda u: u.first_rank)


class AggressiveReordering(ReorderingStrategy):
    """The paper's aggressive method: closed units first, always."""

    name = "aggressive"

    def order_units(
        self,
        needed: Sequence[CompressionUnit],
        previous: Sequence[CompressionUnit],
    ) -> List[CompressionUnit]:
        return _closed_then_open(needed)


class LazyReordering(ReorderingStrategy):
    """The paper's lazy method: maximal reuse of the previous order.

    The longest prefix of ``previous`` whose units all still occur in
    ``needed`` (same identity) is kept verbatim; the remaining needed
    units are appended closed-first / open-by-next-rank-descending.
    """

    name = "lazy"

    def order_units(
        self,
        needed: Sequence[CompressionUnit],
        previous: Sequence[CompressionUnit],
    ) -> List[CompressionUnit]:
        needed_by_key: Dict[FrozenSet, CompressionUnit] = {
            u.members: u for u in needed
        }
        prefix: List[CompressionUnit] = []
        for unit in previous:
            if unit.members in needed_by_key:
                prefix.append(needed_by_key.pop(unit.members))
            else:
                break
        return prefix + _closed_then_open(list(needed_by_key.values()))


class PrefixSharedDP:
    """Subset-probability DP with a shared-prefix snapshot cache.

    Keeps the current unit order and one vector snapshot per prefix
    length.  :meth:`vector_for` realigns the cache to a requested order,
    reusing the longest common prefix and extending only past it; the
    number of extensions performed is the Equation-5 cost, exposed as
    :attr:`extensions`.

    :param cap: vector cap (``k`` entries suffice for ``Pr^k``; the exact
        engine uses ``k + 1`` to also serve the early-stop bound).
    """

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self._order: List[CompressionUnit] = []
        empty = SubsetProbabilityVector(cap)
        self._snapshots: List[np.ndarray] = [empty.snapshot()]
        self.extensions = 0
        self._obs = _resolve_prefix_metrics()

    def _common_prefix_length(self, order: Sequence[CompressionUnit]) -> int:
        limit = min(len(self._order), len(order))
        i = 0
        while i < limit and self._order[i].members == order[i].members:
            i += 1
        return i

    def vector_for(self, order: Sequence[CompressionUnit]) -> np.ndarray:
        """The DP vector over ``order``, reusing the cached prefix.

        :returns: read-only array of ``Pr(T, j)`` for ``j = 0..cap-1``.
        """
        keep = self._common_prefix_length(order)
        if self._obs is not None:
            hits, misses, reused, recomputed = self._obs
            if keep:
                hits.inc()
            else:
                misses.inc()
            reused.inc(keep)
            recomputed.inc(len(order) - keep)
        del self._order[keep:]
        del self._snapshots[keep + 1 :]
        if keep < len(order):
            # Batched Theorem-2 chain: one kernel call produces every
            # intermediate prefix snapshot past the shared prefix.
            fresh = order[keep:]
            chain = kernel.dp_extend_chain(
                self._snapshots[keep],
                [unit.probability for unit in fresh],
            )
            for offset, unit in enumerate(fresh):
                # Copy the row out so retained snapshots never pin the
                # whole chain matrix in memory.
                snapshot = chain[offset + 1].copy()
                snapshot.flags.writeable = False
                self._order.append(unit)
                self._snapshots.append(snapshot)
            self.extensions += len(fresh)
        return self._snapshots[len(order)]

    @property
    def depth(self) -> int:
        """Length of the currently cached order."""
        return len(self._order)


class FreshDP:
    """From-scratch DP evaluation (the plain RC variant).

    Shares the :class:`PrefixSharedDP` interface so the exact engine is
    agnostic; every call recomputes the whole vector, so ``extensions``
    grows by the full unit count each time — exactly the cost profile the
    paper ascribes to rule-tuple compression without reordering.
    """

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.extensions = 0
        self._obs = _resolve_prefix_metrics()

    def vector_for(self, order: Sequence[CompressionUnit]) -> np.ndarray:
        if self._obs is not None:
            _, misses, _, recomputed = self._obs
            misses.inc()
            recomputed.inc(len(order))
        vector = SubsetProbabilityVector(self.cap)
        vector.extend_run([unit.probability for unit in order])
        self.extensions += vector.extension_count
        return vector.snapshot()


def reordering_cost(
    orders: Sequence[Sequence[CompressionUnit]],
) -> int:
    """Equation-5 cost of a sequence of per-tuple unit orders.

    ``Cost = sum_i (|L(t_{i+1})| - |Prefix(L(t_i), L(t_{i+1}))|)`` —
    counting the very first order in full, matching how the DP cache
    actually pays for it.
    """
    cost = 0
    previous: Sequence[CompressionUnit] = []
    for order in orders:
        limit = min(len(previous), len(order))
        shared = 0
        while shared < limit and previous[shared].members == order[shared].members:
            shared += 1
        cost += len(order) - shared
        previous = order
    return cost


def strategy_by_name(name: str) -> ReorderingStrategy:
    """Look up a strategy by its short name (canonical/aggressive/lazy)."""
    strategies: Dict[str, ReorderingStrategy] = {
        CanonicalOrder.name: CanonicalOrder(),
        AggressiveReordering.name: AggressiveReordering(),
        LazyReordering.name: LazyReordering(),
    }
    try:
        return strategies[name]
    except KeyError:
        raise ValueError(
            f"unknown reordering strategy {name!r}; "
            f"choose one of {sorted(strategies)}"
        ) from None
