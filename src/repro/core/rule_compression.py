"""Rule-tuple compression: making dominant sets independent (Section 4.3.1).

For a tuple ``t_i`` in the ranked list, each multi-tuple rule ``R`` falls
into one of three cases:

* **Case 1** — every member of ``R`` is ranked at or below ``t_i``: the
  rule cannot affect ``Pr^k(t_i)`` and is ignored (Theorem 1).
* **Case 2** — every member is ranked above ``t_i`` (*completed* rule):
  since at most one member appears, the whole rule collapses into one
  *rule-tuple* with probability ``Pr(R)`` (Corollary 1).
* **Case 3** — ``t_i`` sits between members of ``R`` (*open* rule):

  - if ``t_i`` is not in ``R``, the members ranked above ``t_i``
    (``R_left``) collapse into one rule-tuple with their summed
    probability;
  - if ``t_i`` is in ``R``, every other member of ``R`` is removed from
    the dominant set entirely, because no rule-mate can coexist with
    ``t_i`` (Corollary 2).

The result — independent tuples kept as-is, plus one rule-tuple per
relevant rule — is the *compressed dominant set* ``T(t_i)``; all its
units are mutually independent, so Theorem 2 applies.

Two implementations live here:

* :func:`compressed_dominant_set` builds ``T(t_i)`` from scratch for one
  tuple (clear, used as ground truth in tests);
* :class:`DominantSetScan` maintains the unit set incrementally while the
  exact algorithm scans the ranked list, which is what makes the single
  forward pass of Figure 3 possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.kernel import compensated_sum
from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.obs import OBS, catalogued


@dataclass(frozen=True)
class CompressionUnit:
    """One independent unit of a compressed dominant set.

    A unit is either a single independent tuple or a rule-tuple that
    compresses every already-scanned member of one multi-tuple rule.

    :param members: ids of the original tuples compressed into the unit.
        Unit *identity* for prefix sharing is this frozen set: two units
        are interchangeable in a DP prefix iff they compress exactly the
        same tuples (and hence carry the same probability).
    :param probability: membership probability of the unit (the tuple's
        own probability, or the sum over compressed members, capped at 1).
    :param rule_id: id of the source rule for rule-tuples, ``None`` for
        independent tuples.
    :param first_rank: rank index (0-based) of the unit's best-ranked
        member; gives rule-agnostic canonical ordering.
    :param last_rank: rank index of the unit's worst-ranked compressed
        member — the scan position at which the unit reached its current
        form.  The aggressive reordering of Section 4.3.2 orders closed
        units by it (the paper's Example 5 places the freshly completed
        rule-tuple ``t_{4,5,10}`` *after* ``t_9``).
    :param next_rank: rank index of the source rule's next not-yet-scanned
        member, or ``None`` when the rule is completed (or the unit is an
        independent tuple).  Open rule-tuples are exactly those with a
        ``next_rank``; the reordering heuristics key on it.
    """

    members: FrozenSet[Any]
    probability: float
    rule_id: Optional[Any]
    first_rank: int
    last_rank: int
    next_rank: Optional[int]

    @property
    def is_rule_tuple(self) -> bool:
        """True when the unit compresses members of a multi-tuple rule."""
        return self.rule_id is not None

    @property
    def is_open(self) -> bool:
        """True for rule-tuples whose rule still has unseen members."""
        return self.next_rank is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "open" if self.is_open else ("rule" if self.is_rule_tuple else "ind")
        names = ",".join(sorted(str(m) for m in self.members))
        return f"Unit<{tag}:{names}:p={self.probability:.3g}>"


def _clamp_probability(total: float) -> float:
    """Cap a summed rule probability at 1 (guards float accumulation)."""
    return min(total, 1.0)


def compressed_dominant_set(
    ranked: Sequence[UncertainTuple],
    rule_of: Mapping[Any, GenerationRule],
    index: int,
) -> List[CompressionUnit]:
    """Build ``T(t_i)`` from scratch for the tuple at ``ranked[index]``.

    :param ranked: the full ranked list, best first.
    :param rule_of: maps tuple id -> its multi-tuple rule (tuples absent
        from the mapping are independent).
    :param index: 0-based position of the target tuple in ``ranked``.
    :returns: the units of the compressed dominant set in canonical order
        (by ``first_rank``).  The caller may reorder them freely — the
        subset-probability DP is order-insensitive.

    This is the reference implementation of Cases 1–3; the exact
    algorithm uses the incremental :class:`DominantSetScan` instead.
    """
    target = ranked[index]
    rank_of = {tup.tid: i for i, tup in enumerate(ranked)}
    target_rule = rule_of.get(target.tid)

    units: List[CompressionUnit] = []
    seen_rules: Dict[Any, List[UncertainTuple]] = {}
    for i in range(index):
        tup = ranked[i]
        rule = rule_of.get(tup.tid)
        if rule is None:
            units.append(
                CompressionUnit(
                    members=frozenset([tup.tid]),
                    probability=tup.probability,
                    rule_id=None,
                    first_rank=i,
                    last_rank=i,
                    next_rank=None,
                )
            )
        else:
            if target_rule is not None and rule.rule_id == target_rule.rule_id:
                continue  # Corollary 2: rule-mates of t_i are removed
            seen_rules.setdefault(rule.rule_id, []).append(tup)

    for rule_id, members in seen_rules.items():
        rule = rule_of[members[0].tid]
        member_ranks = sorted(rank_of[tid] for tid in rule.tuple_ids if tid in rank_of)
        unseen = [r for r in member_ranks if r > index]
        member_rank_values = [rank_of[m.tid] for m in members]
        units.append(
            CompressionUnit(
                members=frozenset(m.tid for m in members),
                probability=_clamp_probability(
                    compensated_sum(m.probability for m in members)
                ),
                rule_id=rule_id,
                first_rank=min(member_rank_values),
                last_rank=max(member_rank_values),
                next_rank=unseen[0] if unseen else None,
            )
        )
    units.sort(key=lambda u: u.first_rank)
    return units


class DominantSetScan:
    """Incrementally maintained compressed dominant sets during one scan.

    The exact algorithm processes the ranked list ``t_1 .. t_n`` front to
    back.  This tracker is fed each tuple *after* it is processed
    (:meth:`advance`) and can report, *before* processing ``t_i``, the
    units of ``T(t_i)`` (:meth:`units_for`).

    Internal state:

    * independent tuples become immutable single-member units once;
    * each multi-tuple rule has at most one live rule-tuple unit, rebuilt
      whenever another of its members is scanned (the unit's identity
      changes, which is exactly what invalidates shared DP prefixes).

    :param ranked: full ranked list (needed up front to know each rule's
        member positions; the *retrieval* of tuples is still progressive —
        this tracker never looks at tuples beyond what :meth:`advance`
        has been fed, except for rank positions, which a real system
        would obtain from the rule catalogue).
    :param rule_of: maps tuple id -> its multi-tuple rule.
    """

    def __init__(
        self,
        ranked: Sequence[UncertainTuple],
        rule_of: Mapping[Any, GenerationRule],
    ) -> None:
        self._rule_of = rule_of
        self._rank_of = {tup.tid: i for i, tup in enumerate(ranked)}
        # Sorted member ranks per rule, used to find each rule's next
        # unseen member in O(1) per advance.
        self._rule_member_ranks: Dict[Any, List[int]] = {}
        for tup in ranked:
            rule = rule_of.get(tup.tid)
            if rule is not None and rule.rule_id not in self._rule_member_ranks:
                ranks = sorted(
                    self._rank_of[tid]
                    for tid in rule.tuple_ids
                    if tid in self._rank_of
                )
                self._rule_member_ranks[rule.rule_id] = ranks
        self._independent_units: List[CompressionUnit] = []
        # rule_id -> member ids in scan order
        self._rule_seen: Dict[Any, List[Any]] = {}
        # rule_id -> member probabilities in scan order; the rule-tuple
        # probability is their compensated sum so the incremental scan
        # and the from-scratch reference can never drift apart.
        self._rule_member_probs: Dict[Any, List[float]] = {}
        self._rule_prob: Dict[Any, float] = {}
        self._rule_unit_cache: Dict[Any, CompressionUnit] = {}
        self._scanned = 0
        # Observability handles, resolved once per scan; None when off so
        # the hot advance()/units_for() paths pay only a None check.
        if OBS.enabled:
            self._obs_units = catalogued("repro_compression_units_total")
            self._obs_merges = catalogued("repro_compression_rule_merges_total")
            self._obs_set_size = catalogued("repro_compression_dominant_set_size")
        else:
            self._obs_units = None
            self._obs_merges = None
            self._obs_set_size = None

    @property
    def scanned(self) -> int:
        """Number of tuples folded into the dominant set so far."""
        return self._scanned

    def advance(self, tup: UncertainTuple) -> None:
        """Fold one processed tuple into the (future) dominant sets."""
        rule = self._rule_of.get(tup.tid)
        rank = self._rank_of[tup.tid]
        if rule is None:
            self._independent_units.append(
                CompressionUnit(
                    members=frozenset([tup.tid]),
                    probability=tup.probability,
                    rule_id=None,
                    first_rank=rank,
                    last_rank=rank,
                    next_rank=None,
                )
            )
            if self._obs_units is not None:
                self._obs_units.inc(1.0, kind="independent")
        else:
            seen = self._rule_seen.setdefault(rule.rule_id, [])
            seen.append(tup.tid)
            member_probs = self._rule_member_probs.setdefault(rule.rule_id, [])
            member_probs.append(tup.probability)
            self._rule_prob[rule.rule_id] = compensated_sum(member_probs)
            self._rebuild_rule_unit(rule.rule_id)
            if self._obs_units is not None:
                self._obs_units.inc(1.0, kind="rule")
                if len(seen) > 1:
                    self._obs_merges.inc()
        self._scanned += 1

    def _rebuild_rule_unit(self, rule_id: Any) -> None:
        seen = self._rule_seen[rule_id]
        member_ranks = self._rule_member_ranks[rule_id]
        unseen_index = len(seen)
        next_rank = (
            member_ranks[unseen_index] if unseen_index < len(member_ranks) else None
        )
        seen_ranks = [self._rank_of[tid] for tid in seen]
        self._rule_unit_cache[rule_id] = CompressionUnit(
            members=frozenset(seen),
            probability=_clamp_probability(self._rule_prob[rule_id]),
            rule_id=rule_id,
            first_rank=min(seen_ranks),
            last_rank=max(seen_ranks),
            next_rank=next_rank,
        )

    def rule_unit(self, rule_id: Any) -> Optional[CompressionUnit]:
        """Current rule-tuple unit of ``rule_id`` (``None`` if unseen)."""
        return self._rule_unit_cache.get(rule_id)

    def units_for(self, tup: UncertainTuple) -> List[CompressionUnit]:
        """Units of ``T(tup)`` — excludes ``tup``'s own rule (Corollary 2).

        The result order is canonical (independent units in scan order,
        then rule units); the reordering strategies permute it.
        """
        own_rule = self._rule_of.get(tup.tid)
        own_rule_id = own_rule.rule_id if own_rule is not None else None
        units = list(self._independent_units)
        for rule_id, unit in self._rule_unit_cache.items():
            if rule_id != own_rule_id:
                units.append(unit)
        if self._obs_set_size is not None:
            self._obs_set_size.observe(len(units))
        return units

    def excluded_unit_for(self, tup: UncertainTuple) -> Optional[CompressionUnit]:
        """The rule-tuple unit suppressed by Corollary 2 for ``tup``.

        ``None`` when ``tup`` is independent or none of its rule-mates
        have been scanned yet.
        """
        own_rule = self._rule_of.get(tup.tid)
        if own_rule is None:
            return None
        return self._rule_unit_cache.get(own_rule.rule_id)

    def all_units(self) -> List[CompressionUnit]:
        """Every live unit (no Corollary-2 exclusion) — used by the
        early-stop bound, which must cover arbitrary future tuples."""
        return list(self._independent_units) + list(self._rule_unit_cache.values())

    def unit_counts(self) -> Tuple[int, int, int]:
        """``(independent units, rule units, rule merges)`` so far.

        Derived from internal state in O(#rules) — called once per query
        by the flight recorder, never on the per-tuple path.
        """
        merges = sum(
            len(seen) - 1 for seen in self._rule_seen.values() if len(seen) > 1
        )
        return len(self._independent_units), len(self._rule_unit_cache), merges


def rule_index_of_table(table: UncertainTable) -> Dict[Any, GenerationRule]:
    """Map each tuple id to its multi-tuple rule (independents omitted)."""
    index: Dict[Any, GenerationRule] = {}
    for rule in table.multi_rules():
        for tid in rule.tuple_ids:
            index[tid] = rule
    return index
