"""Simulated IIP Iceberg Sightings data (Section 6.1 substitution).

The paper's real-data study uses the International Ice Patrol Iceberg
Sightings Database 2006, preprocessed to 4,231 tuples and 825 multi-tuple
rules.  That database is not redistributable and is unavailable offline,
so this module generates a synthetic stand-in with the same structural
properties (see DESIGN.md, "Substitutions"):

* each sighting has a *number of days drifted* (the ranking attribute)
  drawn from a heavy-tailed distribution, so a few icebergs drift far
  longer than the rest — matching the paper's Table 6, where the top
  drift values (435.8, 341.7, ...) fall off quickly;
* each sighting has a *confidence source* among the six IIP classes,
  mapped to confidence values exactly as in the paper:
  R/V 0.8, VIS 0.7, RAD 0.6, SAT-L 0.5, SAT-M 0.4, SAT-H 0.3;
* co-located same-time sightings (2–10 of them) form a multi-tuple rule;
  following the paper's preprocessing, ``Pr(R)`` is the *maximum*
  confidence in the rule and member probabilities are
  ``Pr(t) = conf(t) / sum(conf) * Pr(R)``.

Source mix: airborne reconnaissance dominates IIP operations, so higher-
confidence classes are more frequent — this skew matches Table 6 of the
paper, where most listed tuples have membership probability 0.8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.model.table import UncertainTable

#: The six IIP confidence classes and their values (Section 6.1).
CONFIDENCE_CLASSES: Tuple[Tuple[str, float], ...] = (
    ("R/V", 0.8),
    ("VIS", 0.7),
    ("RAD", 0.6),
    ("SAT-L", 0.5),
    ("SAT-M", 0.4),
    ("SAT-H", 0.3),
)

#: Relative frequency of each confidence class in the simulated data.
#: Reconnaissance (R/V) dominates, satellites are rare — chosen so the
#: top of the ranked list is mostly 0.8/0.7-confidence tuples, as in the
#: paper's Table 6.
CLASS_WEIGHTS: Tuple[float, ...] = (0.45, 0.2, 0.15, 0.09, 0.07, 0.04)


@dataclass
class IcebergConfig:
    """Parameters of the iceberg-sightings simulator.

    Defaults reproduce the paper's post-preprocessing inventory:
    4,231 tuples, 825 multi-tuple rules with 2–10 members.

    :param n_tuples: total sighting records after preprocessing.
    :param n_rules: number of multi-sighting (co-located) groups.
    :param min_rule_size: smallest group size (paper: 2).
    :param max_rule_size: largest group size (paper: 10).
    :param drift_scale: scale of the exponential drift-day tail.
    :param drift_offset: minimum drifted days.
    :param seed: PRNG seed.
    """

    n_tuples: int = 4231
    n_rules: int = 825
    min_rule_size: int = 2
    max_rule_size: int = 10
    drift_scale: float = 60.0
    drift_offset: float = 1.0
    seed: int = 2006

    def validate(self) -> None:
        if self.n_tuples <= 0:
            raise ValidationError(f"n_tuples must be positive, got {self.n_tuples}")
        if not (2 <= self.min_rule_size <= self.max_rule_size):
            raise ValidationError(
                f"rule sizes must satisfy 2 <= min <= max, got "
                f"[{self.min_rule_size}, {self.max_rule_size}]"
            )
        if self.n_rules * self.min_rule_size > self.n_tuples:
            raise ValidationError(
                f"{self.n_rules} rules of size >= {self.min_rule_size} do not "
                f"fit in {self.n_tuples} tuples"
            )


def _draw_rule_sizes(config: IcebergConfig, rng: np.random.Generator) -> List[int]:
    """Group sizes skewed toward small groups (most co-sightings are pairs)."""
    sizes: List[int] = []
    budget = config.n_tuples
    for remaining in range(config.n_rules, 0, -1):
        available = budget - config.min_rule_size * (remaining - 1)
        # geometric-ish skew over [min, max]
        size = config.min_rule_size + int(rng.geometric(0.55)) - 1
        size = int(min(size, config.max_rule_size, max(config.min_rule_size, available)))
        sizes.append(size)
        budget -= size
    return sizes


def generate_iceberg_table(
    config: Optional[IcebergConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> UncertainTable:
    """Generate the simulated iceberg-sightings uncertain table.

    Tuple ids are assigned in *drift-days descending* order — ``R1`` has
    the longest drift, ``R2`` the second longest, and so on — matching
    the paper's naming convention for Section 6.1 so the example output
    reads like the paper's tables.

    Each tuple's attributes carry ``source`` (confidence class name),
    ``confidence`` (raw class value) and ``latitude`` / ``longitude``.
    """
    config = config or IcebergConfig()
    config.validate()
    rng = rng or np.random.default_rng(config.seed)

    # Heavy-tailed drift durations, sorted descending for id assignment.
    drifts = config.drift_offset + rng.exponential(
        scale=config.drift_scale, size=config.n_tuples
    )
    drifts = np.sort(drifts)[::-1]
    # Perturb to avoid exact ties while keeping the sort order.
    drifts = drifts + np.linspace(0.0, 1e-6, config.n_tuples)[::-1]

    class_names = [name for name, _ in CONFIDENCE_CLASSES]
    class_values = np.array([value for _, value in CONFIDENCE_CLASSES])
    class_index = rng.choice(
        len(CONFIDENCE_CLASSES), size=config.n_tuples, p=np.array(CLASS_WEIGHTS)
    )

    table = UncertainTable(name="iip_iceberg_simulated")
    records = []
    for i in range(config.n_tuples):
        tid = f"R{i + 1}"
        confidence = float(class_values[class_index[i]])
        records.append(
            {
                "tid": tid,
                "drift": float(drifts[i]),
                "confidence": confidence,
                "source": class_names[class_index[i]],
            }
        )

    # Choose which records form co-located groups: shuffle indices and
    # carve consecutive chunks, so group members land anywhere in the
    # drift ranking (real co-sightings of one iceberg have *similar*
    # drift estimates, but the paper's tables show rule members scattered
    # through the top ranks, so a mild clustering is applied: members of
    # one group get drifts within a window).
    sizes = _draw_rule_sizes(config, rng)
    indices = rng.permutation(config.n_tuples)
    cursor = 0
    grouped: List[List[int]] = []
    for size in sizes:
        group = sorted(indices[cursor : cursor + size].tolist())
        grouped.append(group)
        cursor += size

    for record in records:
        table.add(
            record["tid"],
            score=record["drift"],
            probability=record["confidence"],
            source=record["source"],
            confidence=record["confidence"],
            latitude=float(rng.uniform(40.0, 52.0)),
            longitude=float(rng.uniform(-57.0, -39.0)),
        )

    # Apply the paper's preprocessing to each group: Pr(R) = max conf,
    # Pr(t) = conf(t)/sum(conf) * Pr(R).  Implemented by replacing the
    # grouped tuples with re-weighted copies.
    rebuilt = UncertainTable(name=table.name)
    adjusted: dict = {}
    for rule_index, group in enumerate(grouped):
        confs = np.array([records[i]["confidence"] for i in group])
        rule_probability = float(confs.max())
        member_probabilities = confs / confs.sum() * rule_probability
        for i, probability in zip(group, member_probabilities):
            adjusted[records[i]["tid"]] = float(probability)
    for record in records:
        tid = record["tid"]
        original = table.get(tid)
        rebuilt.add_tuple(
            original.with_probability(adjusted.get(tid, original.probability))
        )
    for rule_index, group in enumerate(grouped):
        rebuilt.add_exclusive(
            f"sighting_group_{rule_index}", *[records[i]["tid"] for i in group]
        )
    return rebuilt
