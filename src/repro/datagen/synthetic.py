"""Synthetic workloads matching Section 6.2 of the paper.

Default configuration (the paper's): 20,000 tuples, 2,000 multi-tuple
rules, rule sizes ~ N(5, 2), independent-tuple probabilities ~ N(0.5,
0.2), rule probabilities ~ N(0.7, 0.2); every tuple satisfies the query
predicate; scores are i.i.d. so rule members scatter uniformly through
the ranking (which is what makes rule *spans* non-trivial and exercises
the reordering machinery).

Within one rule, the paper does not specify how ``Pr(R)`` is divided
among members; we split it proportionally to uniform random weights,
which produces heterogeneous members (needed for the Theorem-4 pruning
rule to have bite) while keeping the sum exactly ``Pr(R)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.model.table import UncertainTable
from repro.stats.distributions import (
    MIN_PROBABILITY,
    probability_normal,
    rule_size_normal,
)


@dataclass
class SyntheticConfig:
    """Parameters of the Section 6.2 generator.

    :param n_tuples: total number of tuples (paper default 20,000).
    :param n_rules: number of multi-tuple rules (paper default 2,000).
    :param rule_size_mean: mean of the rule-size normal (default 5).
    :param rule_size_std: std of the rule-size normal (default 2).
    :param independent_prob_mean: mean membership probability of
        independent tuples (default 0.5).
    :param independent_prob_std: its std (default 0.2).
    :param rule_prob_mean: mean rule probability ``Pr(R)`` (default 0.7).
    :param rule_prob_std: its std (default 0.2).
    :param seed: PRNG seed; every table is fully determined by its config.
    """

    n_tuples: int = 20_000
    n_rules: int = 2_000
    rule_size_mean: float = 5.0
    rule_size_std: float = 2.0
    independent_prob_mean: float = 0.5
    independent_prob_std: float = 0.2
    rule_prob_mean: float = 0.7
    rule_prob_std: float = 0.2
    seed: int = 7

    def validate(self) -> None:
        """Sanity-check the configuration before generation."""
        if self.n_tuples <= 0:
            raise ValidationError(f"n_tuples must be positive, got {self.n_tuples}")
        if self.n_rules < 0:
            raise ValidationError(f"n_rules must be >= 0, got {self.n_rules}")
        if self.n_rules > 0:
            min_rule_tuples = 2 * self.n_rules
            if min_rule_tuples > self.n_tuples:
                raise ValidationError(
                    f"{self.n_rules} rules need at least {min_rule_tuples} "
                    f"tuples, table only has {self.n_tuples}"
                )


def generate_synthetic_table(
    config: Optional[SyntheticConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> UncertainTable:
    """Generate a synthetic uncertain table per Section 6.2.

    Construction order:

    1. draw rule sizes (clipped N, >= 2) and truncate so the rule tuples
       fit into the table;
    2. draw each rule's probability ``Pr(R)`` (clipped N(0.7, 0.2)) and
       split it among members proportionally to uniform weights;
    3. fill the remainder with independent tuples, probabilities from
       clipped N(0.5, 0.2);
    4. assign every tuple an i.i.d. uniform score so the ranking
       interleaves rule members and independent tuples uniformly.

    :returns: an :class:`~repro.model.table.UncertainTable` named after
        the seed for reproducibility bookkeeping.
    """
    config = config or SyntheticConfig()
    config.validate()
    rng = rng or np.random.default_rng(config.seed)
    table = UncertainTable(name=f"synthetic_seed{config.seed}")

    sizes = (
        rule_size_normal(
            rng, config.rule_size_mean, config.rule_size_std, config.n_rules
        )
        if config.n_rules > 0
        else np.zeros(0, dtype=int)
    )
    # Shrink overly large rules so all rules fit in the tuple budget.
    budget = config.n_tuples
    adjusted_sizes = []
    for remaining_rules, size in zip(range(len(sizes), 0, -1), sizes):
        # keep at least 2 tuples for each of the remaining rules
        available = budget - 2 * (remaining_rules - 1)
        size = int(min(size, max(2, available)))
        adjusted_sizes.append(size)
        budget -= size
    n_rule_tuples = sum(adjusted_sizes)
    n_independent = config.n_tuples - n_rule_tuples

    scores = rng.permutation(config.n_tuples).astype(float)
    score_iter = iter(scores)

    next_tid = 0
    for rule_index, size in enumerate(adjusted_sizes):
        rule_probability = float(
            probability_normal(
                rng, config.rule_prob_mean, config.rule_prob_std, 1
            )[0]
        )
        weights = rng.random(size)
        member_probabilities = rule_probability * weights / weights.sum()
        member_probabilities = np.maximum(member_probabilities, MIN_PROBABILITY)
        # Renormalise if the floor pushed the sum above Pr(R).
        total = member_probabilities.sum()
        if total > rule_probability:
            member_probabilities *= rule_probability / total
            member_probabilities = np.maximum(member_probabilities, MIN_PROBABILITY / 10)
        member_ids = []
        for probability in member_probabilities:
            tid = f"t{next_tid}"
            next_tid += 1
            table.add(tid, score=float(next(score_iter)), probability=float(probability))
            member_ids.append(tid)
        table.add_exclusive(f"rule{rule_index}", *member_ids)

    if n_independent > 0:
        probabilities = probability_normal(
            rng,
            config.independent_prob_mean,
            config.independent_prob_std,
            n_independent,
        )
        for probability in probabilities:
            tid = f"t{next_tid}"
            next_tid += 1
            table.add(tid, score=float(next(score_iter)), probability=float(probability))

    return table
