"""The paper's running example: panda-detection sensor records (Table 1).

Six sighting records of an endangered species, two of which pairs were
produced by co-located sensors at the same time and therefore exclude
each other (rules ``R2 xor R3`` and ``R5 xor R6``).  Table 3 of the paper
gives the exact top-2 probabilities this data must produce:

======  =====
tuple   Pr^2
======  =====
R1      0.3
R2      0.4
R3      0.38
R4      0.202
R5      0.704
R6      0.014
======  =====

The quickstart example and several tests are built on this table.
"""

from __future__ import annotations

from typing import Dict

from repro.model.table import UncertainTable

#: Exact top-2 probabilities from Table 3 of the paper.
PANDA_TOP2_PROBABILITIES: Dict[str, float] = {
    "R1": 0.3,
    "R2": 0.4,
    "R3": 0.38,
    "R4": 0.202,
    "R5": 0.704,
    "R6": 0.014,
}

#: Expected PT-2 answer at threshold 0.35 (Example 1 of the paper).
PANDA_PT2_ANSWER_AT_035 = {"R2", "R3", "R5"}


def panda_table() -> UncertainTable:
    """Build Table 1 of the paper: the panda-counting records.

    Scores are the detection durations in minutes; each record carries
    its location, timestamp and sensor id as attributes.
    """
    table = UncertainTable(name="panda_sightings")
    table.add("R1", 25, 0.3, location="A", time="6/2/06 2:14", sensor="S101")
    table.add("R2", 21, 0.4, location="B", time="7/3/06 4:07", sensor="S206")
    table.add("R3", 13, 0.5, location="B", time="7/3/06 4:09", sensor="S231")
    table.add("R4", 12, 1.0, location="A", time="4/12/06 20:32", sensor="S101")
    table.add("R5", 17, 0.8, location="E", time="3/13/06 22:31", sensor="S063")
    table.add("R6", 11, 0.2, location="E", time="3/13/06 22:28", sensor="S732")
    table.add_exclusive("rule_B", "R2", "R3")
    table.add_exclusive("rule_E", "R5", "R6")
    return table


def example2_table() -> UncertainTable:
    """The ranked list of Table 4 (Example 2), all tuples independent.

    Scores are descending positions so the default ranking reproduces the
    list order ``t1 .. t9``.
    """
    probabilities = [0.7, 0.2, 1.0, 0.3, 0.5, 0.8, 0.1, 0.8, 0.1]
    table = UncertainTable(name="example2")
    for i, p in enumerate(probabilities, start=1):
        table.add(f"t{i}", score=100 - i, probability=p)
    return table


def example3_table() -> UncertainTable:
    """Example 3: Table 4 plus rules ``t2 xor t4 xor t9`` and ``t5 xor t7``.

    The paper reports ``Pr^3(t6) = 0.32`` on this table.
    """
    table = example2_table()
    table.name = "example3"
    table.add_exclusive("R1", "t2", "t4", "t9")
    table.add_exclusive("R2", "t5", "t7")
    return table


def example5_table() -> UncertainTable:
    """Example 5's structure: 11 tuples, rules ``t1 xor t2 xor t8 xor t11``
    and ``t4 xor t5 xor t10``.

    The paper does not give probabilities for this example (it only
    discusses orderings), so uniform 0.2 keeps rule sums legal.  Used by
    the reordering tests, which check unit *orders* and the Equation-5
    costs (aggressive 15 vs lazy 12).
    """
    table = UncertainTable(name="example5")
    for i in range(1, 12):
        table.add(f"t{i}", score=100 - i, probability=0.2)
    table.add_exclusive("R1", "t1", "t2", "t8", "t11")
    table.add_exclusive("R2", "t4", "t5", "t10")
    return table
