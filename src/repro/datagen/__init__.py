"""Workload and dataset generators.

* :mod:`~repro.datagen.sensors` — the paper's running example (Table 1):
  six panda-detection records with two exclusiveness rules.
* :mod:`~repro.datagen.synthetic` — the Section 6.2 synthetic workloads:
  normal-distributed membership probabilities, rule probabilities and
  rule sizes, fully parameterised and seeded.
* :mod:`~repro.datagen.iceberg` — a simulator standing in for the IIP
  Iceberg Sightings Database 2006 used in Section 6.1 (see DESIGN.md for
  the substitution rationale).
"""

from repro.datagen.iceberg import IcebergConfig, generate_iceberg_table
from repro.datagen.sensors import panda_table
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table

__all__ = [
    "IcebergConfig",
    "SyntheticConfig",
    "generate_iceberg_table",
    "generate_synthetic_table",
    "panda_table",
]
