"""Mobile-object tracking workload (the paper's second motivating domain).

Simulates radar stations tracking moving objects: each *detection* has a
speed estimate (the ranking attribute — analysts ask for the k fastest
objects), a confidence depending on radar distance, and — when several
stations detect the same object at the same tick — a mutual-exclusion
group, since at most one speed estimate is correct.

Emits detections in *time order*, which makes this generator the
natural feed for :mod:`repro.stream` (sliding-window PT-k), while
:func:`tracking_table` materialises a static snapshot for the batch
algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple


@dataclass
class TrackingConfig:
    """Parameters of the tracking simulator.

    :param n_objects: number of moving objects in the field.
    :param n_ticks: simulation length (one detection wave per tick).
    :param detection_rate: probability an object is detected in a tick.
    :param multi_station_rate: probability a detection is picked up by
        2–3 stations at once (forming an exclusion group).
    :param speed_mean: mean object speed (the ranking attribute).
    :param speed_std: per-object speed variation.
    :param seed: PRNG seed.
    """

    n_objects: int = 50
    n_ticks: int = 100
    detection_rate: float = 0.4
    multi_station_rate: float = 0.3
    speed_mean: float = 60.0
    speed_std: float = 20.0
    seed: int = 31

    def validate(self) -> None:
        if self.n_objects <= 0 or self.n_ticks <= 0:
            raise ValidationError("n_objects and n_ticks must be positive")
        if not (0.0 < self.detection_rate <= 1.0):
            raise ValidationError(
                f"detection_rate must be in (0, 1], got {self.detection_rate}"
            )
        if not (0.0 <= self.multi_station_rate <= 1.0):
            raise ValidationError(
                f"multi_station_rate must be in [0, 1], got {self.multi_station_rate}"
            )


def detection_stream(
    config: Optional[TrackingConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Tuple[UncertainTuple, Optional[Any]]]:
    """Yield ``(detection, rule_tag)`` pairs in time order.

    ``rule_tag`` is shared by the detections of one object at one tick
    (and ``None`` for single-station detections) — pass it straight to
    :meth:`repro.stream.window.SlidingWindowPTK.append`.
    """
    config = config or TrackingConfig()
    config.validate()
    rng = rng or np.random.default_rng(config.seed)
    base_speeds = rng.normal(config.speed_mean, config.speed_std, config.n_objects)
    serial = 0
    for tick in range(config.n_ticks):
        for obj in range(config.n_objects):
            if rng.random() >= config.detection_rate:
                continue
            true_speed = abs(
                base_speeds[obj] + rng.normal(0.0, config.speed_std / 4)
            )
            if rng.random() < config.multi_station_rate:
                n_stations = int(rng.integers(2, 4))
            else:
                n_stations = 1
            # station confidences; exclusive detections must sum <= 1
            confidences = rng.dirichlet(np.ones(n_stations)) * rng.uniform(
                0.55, 0.98
            )
            tag = f"obj{obj}@t{tick}" if n_stations > 1 else None
            for station in range(n_stations):
                detection = UncertainTuple(
                    tid=f"d{serial}",
                    score=float(true_speed * rng.uniform(0.9, 1.1)),
                    probability=max(1e-3, float(confidences[station])),
                    attributes={
                        "object": f"obj{obj}",
                        "tick": tick,
                        "station": f"radar{station}",
                    },
                )
                serial += 1
                yield detection, tag


def tracking_table(
    config: Optional[TrackingConfig] = None,
    rng: Optional[np.random.Generator] = None,
    name: str = "tracking",
) -> UncertainTable:
    """A static snapshot: every detection of the simulation as one table."""
    table = UncertainTable(name=name)
    groups: dict = {}
    for detection, tag in detection_stream(config, rng):
        table.add_tuple(detection)
        if tag is not None:
            groups.setdefault(tag, []).append(detection.tid)
    for tag, members in groups.items():
        if len(members) > 1:
            table.add_exclusive(tag, *members)
    return table


def detections_of_object(table: UncertainTable, obj: str) -> List[UncertainTuple]:
    """All detections of one object id in a tracking table."""
    return [t for t in table if t.attributes.get("object") == obj]
