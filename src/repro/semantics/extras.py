"""Additional derived semantics built on top-k probabilities.

These are not part of the reproduced paper's contribution but round out
the comparison tooling (and correspond to semantics proposed in the
follow-up literature):

* **Global-Topk** — return the ``k`` tuples with the *highest* top-k
  probability (a set of fixed size, unlike PT-k's threshold set).
* **Expected rank** — the expected position of a tuple among the present
  higher-ranked tuples, conditioned on the tuple being present; a cheap
  scalar summary used by the examples for narrative output.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.exact import exact_topk_probabilities
from repro.core.rule_compression import DominantSetScan, rule_index_of_table
from repro.model.table import UncertainTable
from repro.query.topk import TopKQuery


def global_topk(table: UncertainTable, query: TopKQuery) -> List[Tuple[Any, float]]:
    """The k tuples with the highest top-k probability.

    Ties are broken by ranking position (better-ranked tuple wins), which
    keeps the answer deterministic.

    :returns: list of (tuple id, top-k probability), probability
        descending.
    """
    probabilities = exact_topk_probabilities(table, query)
    ranked = query.ranking.rank_table(query.selected(table))
    position = {tup.tid: i for i, tup in enumerate(ranked)}
    ordered = sorted(
        probabilities.items(), key=lambda kv: (-kv[1], position[kv[0]])
    )
    return ordered[: query.k]


def expected_ranks(table: UncertainTable, query: TopKQuery) -> Dict[Any, float]:
    """Expected rank of each tuple, conditioned on its presence.

    Given that ``t`` appears, its rank is ``1 + (number of present
    dominant tuples)``; with the compressed dominant set ``T(t)`` the
    expectation is ``1 + sum of unit probabilities`` (linearity — no DP
    needed).

    :returns: mapping tuple id -> conditional expected rank (>= 1).
    """
    selected = query.selected(table)
    ranked = query.ranking.rank_table(selected)
    rule_of = rule_index_of_table(selected)
    scan = DominantSetScan(ranked, rule_of)
    result: Dict[Any, float] = {}
    for tup in ranked:
        units = scan.units_for(tup)
        result[tup.tid] = 1.0 + sum(unit.probability for unit in units)
        scan.advance(tup)
    return result
