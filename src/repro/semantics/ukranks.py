"""U-KRanks queries: the most probable tuple at each rank (Soliman et al.).

A U-KRanks query returns, for every rank ``i = 1..k``, the tuple with the
highest probability of being ranked *exactly* ``i``-th in a possible
world.  One tuple can win several ranks (R9 and R11 each occupy two
positions in the paper's Table 5) and high-top-k-probability tuples can
win none — the behaviour the Section 6.1 comparison highlights.

Position probabilities come from the rule-aware generalisation of
Equation 3: ``Pr(t, j) = Pr(t) * Pr(exactly j-1 of T(t) appear)`` with
``T(t)`` the compressed dominant set, so this module reuses the exact
engine's machinery and runs in a single scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.core.exact import exact_position_probabilities
from repro.model.table import UncertainTable
from repro.query.topk import TopKQuery


@dataclass(frozen=True)
class UKRanksAnswer:
    """Per-rank winners of a U-KRanks query.

    :param winners: ``winners[i]`` is the (tuple id, probability) pair for
        rank ``i+1`` — the tuple most likely to be exactly at that rank
        and the probability with which it is.
    """

    winners: Tuple[Tuple[Any, float], ...]

    @property
    def tuple_ids(self) -> List[Any]:
        """The winning tuple ids, rank 1 first (duplicates possible)."""
        return [tid for tid, _ in self.winners]

    @property
    def distinct_tuple_ids(self) -> List[Any]:
        """Winning ids without duplicates, first-rank order preserved."""
        seen = set()
        out: List[Any] = []
        for tid, _ in self.winners:
            if tid not in seen:
                seen.add(tid)
                out.append(tid)
        return out

    def __len__(self) -> int:
        return len(self.winners)


def ukranks_from_position_probabilities(
    position_probabilities: Dict[Any, List[float]], k: int
) -> UKRanksAnswer:
    """Pick the arg-max tuple per rank from a position-probability map.

    Ties are broken by stringified tuple id for determinism.
    """
    winners: List[Tuple[Any, float]] = []
    for j in range(k):
        best_tid = None
        best_probability = -1.0
        for tid, probs in position_probabilities.items():
            pr = probs[j] if j < len(probs) else 0.0
            if pr > best_probability or (
                pr == best_probability
                and best_tid is not None
                and str(tid) < str(best_tid)
            ):
                best_tid = tid
                best_probability = pr
        winners.append((best_tid, max(best_probability, 0.0)))
    return UKRanksAnswer(winners=tuple(winners))


def ukranks_query(table: UncertainTable, query: TopKQuery) -> UKRanksAnswer:
    """Answer a U-KRanks query on an uncertain table."""
    position_probabilities = exact_position_probabilities(table, query)
    return ukranks_from_position_probabilities(position_probabilities, query.k)
