"""Alternative uncertain top-k semantics and the naive baseline.

The paper positions PT-k against two earlier semantics (Soliman, Ilyas &
Chang, ICDE 2007), compared head-to-head in Section 6.1:

* **U-TopK** (:mod:`~repro.semantics.utopk`) — the *vector* of k tuples
  most likely to be exactly the top-k list of a possible world.
* **U-KRanks** (:mod:`~repro.semantics.ukranks`) — for each rank
  ``i <= k``, the tuple most likely to be ranked exactly ``i``-th.

Plus:

* :mod:`~repro.semantics.naive` — exact PT-k by enumerating every
  possible world: exponential, but the ground truth every fast algorithm
  is tested against.
* :mod:`~repro.semantics.extras` — additional derived semantics
  (Global-Topk selection, expected ranks) used by examples and the
  comparison tooling.
"""

from repro.semantics.expected_rank import expected_rank_topk, expected_rank_values
from repro.semantics.naive import (
    naive_ptk_answer,
    naive_topk_probabilities,
    naive_position_probabilities,
)
from repro.semantics.ukranks import UKRanksAnswer, ukranks_query
from repro.semantics.utopk import UTopKAnswer, utopk_query

__all__ = [
    "UKRanksAnswer",
    "UTopKAnswer",
    "expected_rank_topk",
    "expected_rank_values",
    "naive_position_probabilities",
    "naive_ptk_answer",
    "naive_topk_probabilities",
    "ukranks_query",
    "utopk_query",
]
