"""Naive exact PT-k answering by possible-world enumeration.

This is the baseline Section 2 dismisses as infeasible at scale — and
precisely because it is a direct transcription of the definitions
(Equations 1–2), it serves as the ground truth for every fast algorithm
in the library.  All correctness tests cross-validate against it on
small tables.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Union

from repro.core.results import AlgorithmStats, PTKAnswer
from repro.exceptions import QueryError
from repro.model.table import UncertainTable
from repro.model.worlds import DEFAULT_WORLD_LIMIT, enumerate_possible_worlds
from repro.query.topk import TopKQuery


def naive_topk_probabilities(
    table: UncertainTable,
    query: TopKQuery,
    world_limit: int = DEFAULT_WORLD_LIMIT,
    exact: bool = False,
) -> Dict[Any, Union[float, Fraction]]:
    """``Pr^k`` for every tuple, straight from Equation 2.

    Enumerates every possible world of ``P(table)``, applies the certain
    top-k query to each, and accumulates world probabilities per member
    of each top-k list.

    :param world_limit: safety cap forwarded to the enumerator.
    :param exact: accumulate in exact rational arithmetic and return
        :class:`fractions.Fraction` values.  Comparing those against a
        float threshold (``Fraction >= float``) is itself exact, which
        makes this mode the right oracle for threshold-boundary tests:
        a naive float accumulation of the same worlds can land an ulp
        away from the DP's compensated result and misclassify tuples
        whose true ``Pr^k`` sits exactly on the threshold.
    :returns: mapping tuple id -> exact top-k probability (tuples never
        in any top-k get 0.0 entries, so the mapping covers all of
        ``P(table)``).
    """
    selected = query.selected(table)
    by_id = {tup.tid: tup for tup in selected}
    zero: Union[float, Fraction] = Fraction(0) if exact else 0.0
    result: Dict[Any, Union[float, Fraction]] = {tid: zero for tid in by_id}
    for world in enumerate_possible_worlds(selected, limit=world_limit, exact=exact):
        members = [by_id[tid] for tid in world.tuple_ids]
        for tup in query.answer_on_world(members):
            result[tup.tid] += world.probability
    return result


def naive_ptk_answer(
    table: UncertainTable,
    query: TopKQuery,
    threshold: float,
    world_limit: int = DEFAULT_WORLD_LIMIT,
) -> PTKAnswer:
    """The full PT-k answer by enumeration, in ranking order."""
    if not (0.0 < threshold <= 1.0):
        raise QueryError(
            f"probability threshold must be in (0, 1], got {threshold!r}"
        )
    probabilities = naive_topk_probabilities(table, query, world_limit=world_limit)
    ranked = query.ranking.rank_table(query.selected(table))
    answer = PTKAnswer(k=query.k, threshold=threshold, method="naive")
    answer.probabilities = probabilities
    answer.answers = [
        tup.tid for tup in ranked if probabilities[tup.tid] >= threshold
    ]
    answer.stats = AlgorithmStats(
        scan_depth=len(ranked),
        tuples_evaluated=len(ranked),
        stopped_by="exhausted",
    )
    return answer


def naive_position_probabilities(
    table: UncertainTable,
    query: TopKQuery,
    world_limit: int = DEFAULT_WORLD_LIMIT,
) -> Dict[Any, List[float]]:
    """``Pr(t, j)`` for ``j = 1..k`` by enumeration (U-KRanks ground truth).

    :returns: mapping tuple id -> list of k probabilities; index 0 is the
        probability of being ranked first.
    """
    selected = query.selected(table)
    by_id = {tup.tid: tup for tup in selected}
    result: Dict[Any, List[float]] = {tid: [0.0] * query.k for tid in by_id}
    for world in enumerate_possible_worlds(selected, limit=world_limit):
        members = [by_id[tid] for tid in world.tuple_ids]
        for position, tup in enumerate(query.answer_on_world(members)):
            result[tup.tid][position] += world.probability
    return result


def naive_topk_vector_probabilities(
    table: UncertainTable,
    query: TopKQuery,
    world_limit: int = DEFAULT_WORLD_LIMIT,
) -> Dict[tuple, float]:
    """Probability of each distinct top-k *vector* (U-TopK ground truth).

    :returns: mapping (ordered tuple-id vector) -> total probability of
        the worlds whose top-k list is exactly that vector.
    """
    selected = query.selected(table)
    by_id = {tup.tid: tup for tup in selected}
    result: Dict[tuple, float] = {}
    for world in enumerate_possible_worlds(selected, limit=world_limit):
        members = [by_id[tid] for tid in world.tuple_ids]
        vector = tuple(t.tid for t in query.answer_on_world(members))
        result[vector] = result.get(vector, 0.0) + world.probability
    return result
