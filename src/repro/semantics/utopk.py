"""U-TopK queries: the most probable top-k vector (Soliman et al., 2007).

A U-TopK query returns the length-k tuple vector with the highest
probability of being *exactly* the top-k list of a possible world.  The
paper compares PT-k answers against U-TopK on the iceberg data
(Section 6.1), noting that the most probable vector can have a very low
absolute probability (0.0299 there) and can omit tuples whose top-k
probability is high.

Implementation: best-first search over scan-prefix states, the approach
of Soliman et al.  A state fixes, for a prefix of the ranked list, which
tuples are in the top-k list; its probability is the product of

* ``Pr(t)`` for each included tuple (conditioned through its rule:
  including a member whose rule already skipped mass ``s`` contributes
  ``Pr(t) / (1 - s)`` on top of the earlier skip factors, telescoping to
  exactly ``Pr(t)``),
* ``1 - Pr(t)`` for each excluded independent tuple, and
* ``(1 - s - Pr(t)) / (1 - s)`` for each excluded rule member (``s`` =
  mass of previously excluded members of the same rule), telescoping to
  ``1 - sum of excluded members`` when the rule never fires.

Every factor is at most 1, so a state's probability upper-bounds all of
its descendants and the first *complete* state popped from the priority
queue is the exact answer.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.rule_compression import rule_index_of_table
from repro.exceptions import QueryError
from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.query.topk import TopKQuery

#: Default cap on search-state expansions before giving up.
DEFAULT_MAX_EXPANSIONS = 2_000_000


@dataclass(frozen=True)
class UTopKAnswer:
    """The most probable top-k vector and its probability.

    :param vector: tuple ids in ranking order.  May be shorter than k
        when the most probable outcome is a world with fewer than k
        tuples (possible for very sparse tables).
    :param probability: probability that the top-k list is exactly
        ``vector``.
    :param expansions: search states expanded (effort diagnostic).
    """

    vector: Tuple[Any, ...]
    probability: float
    expansions: int = 0


@dataclass(order=True)
class _State:
    """A search state: assignment over the first ``position`` tuples."""

    sort_key: float  # negative probability (heapq is a min-heap)
    tiebreak: int = field(compare=True)
    probability: float = field(compare=False, default=1.0)
    position: int = field(compare=False, default=0)
    chosen: Tuple[Any, ...] = field(compare=False, default=())
    # rule id -> excluded-mass accumulated so far
    rule_skipped: Tuple[Tuple[Any, float], ...] = field(compare=False, default=())
    # rule ids whose member is already in `chosen`
    rules_fired: frozenset = field(compare=False, default=frozenset())


def _skipped_lookup(state: _State) -> Dict[Any, float]:
    return dict(state.rule_skipped)


def utopk_search(
    ranked: Sequence[UncertainTuple],
    rule_of: Mapping[Any, GenerationRule],
    k: int,
    max_expansions: int = DEFAULT_MAX_EXPANSIONS,
) -> UTopKAnswer:
    """Best-first search for the most probable top-k vector.

    :param ranked: tuples in ranking order, best first.
    :param rule_of: maps tuple id -> multi-tuple rule.
    :param k: vector length.
    :param max_expansions: safety cap on popped states.
    :raises QueryError: when the cap is exceeded (pathological inputs).
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    counter = itertools.count()
    heap: List[_State] = [_State(sort_key=-1.0, tiebreak=next(counter))]
    expansions = 0
    n = len(ranked)
    while heap:
        state = heapq.heappop(heap)
        expansions += 1
        if expansions > max_expansions:
            raise QueryError(
                f"U-TopK search exceeded {max_expansions} expansions; "
                f"raise max_expansions for this workload"
            )
        if len(state.chosen) == k or state.position == n:
            return UTopKAnswer(
                vector=state.chosen,
                probability=state.probability,
                expansions=expansions,
            )
        tup = ranked[state.position]
        rule = rule_of.get(tup.tid)
        skipped = _skipped_lookup(state)
        rule_id = rule.rule_id if rule is not None else None
        s = skipped.get(rule_id, 0.0) if rule_id is not None else 0.0
        fired = rule_id is not None and rule_id in state.rules_fired

        # Child 1: include the tuple (impossible if its rule fired).
        if not fired:
            denom = 1.0 - s
            if denom > 0.0:
                include_probability = state.probability * (tup.probability / denom)
                if include_probability > 0.0:
                    heapq.heappush(
                        heap,
                        _State(
                            sort_key=-include_probability,
                            tiebreak=next(counter),
                            probability=include_probability,
                            position=state.position + 1,
                            chosen=state.chosen + (tup.tid,),
                            rule_skipped=state.rule_skipped,
                            rules_fired=(
                                state.rules_fired | {rule_id}
                                if rule_id is not None
                                else state.rules_fired
                            ),
                        ),
                    )

        # Child 2: exclude the tuple.
        if rule_id is None:
            exclude_factor = 1.0 - tup.probability
            new_skipped = state.rule_skipped
        elif fired:
            exclude_factor = 1.0  # cannot appear anyway
            new_skipped = state.rule_skipped
        else:
            denom = 1.0 - s
            exclude_factor = (
                (1.0 - s - tup.probability) / denom if denom > 0.0 else 0.0
            )
            updated = dict(skipped)
            updated[rule_id] = s + tup.probability
            new_skipped = tuple(sorted(updated.items(), key=lambda kv: str(kv[0])))
        exclude_probability = state.probability * exclude_factor
        if exclude_probability > 0.0:
            heapq.heappush(
                heap,
                _State(
                    sort_key=-exclude_probability,
                    tiebreak=next(counter),
                    probability=exclude_probability,
                    position=state.position + 1,
                    chosen=state.chosen,
                    rule_skipped=new_skipped,
                    rules_fired=state.rules_fired,
                ),
            )
    # Only reachable when every branch had probability 0, which the model
    # forbids (probabilities are strictly positive); keep a safe fallback.
    return UTopKAnswer(vector=(), probability=0.0, expansions=expansions)


def utopk_query(
    table: UncertainTable,
    query: TopKQuery,
    max_expansions: int = DEFAULT_MAX_EXPANSIONS,
) -> UTopKAnswer:
    """Answer a U-TopK query on an uncertain table."""
    selected = query.selected(table)
    ranked = query.ranking.rank_table(selected)
    rule_of = rule_index_of_table(selected)
    return utopk_search(ranked, rule_of, query.k, max_expansions=max_expansions)
