"""Expected-rank top-k: the rank-aggregation semantics (Cormode et al.).

A later strand of the uncertain top-k literature (Cormode, Li & Yi,
ICDE 2009) ranks tuples by *expected rank*: in a possible world ``W``,

.. math::

    rank(t, W) = |\\{t' \\in W : t' \\prec_f t\\}| \\text{ if } t \\in W,
    \\qquad rank(t, W) = |W| \\text{ otherwise}

(an absent tuple ranks after everything present), and the answer is the
k tuples with the smallest ``E[rank(t)]``.  Including it here rounds
out the semantics-comparison tooling — it behaves differently from both
PT-k and U-TopK/U-KRanks on the same data.

Linearity of expectation gives a closed form (no DP needed).  With
``D(t)`` = tuples ranked above ``t``, ``R(t)`` = ``t``'s rule-mates:

* present part: ``Σ_{t' ∈ D(t) \\ R(t)} Pr(t) Pr(t')``
  (rule-mates can never coexist with ``t``);
* absent part: ``Σ_{t' ∈ R(t)} Pr(t')  +  Σ_{t' ∉ R(t), t' ≠ t}
  Pr(t') (1 − Pr(t))``
  (a rule-mate of ``t`` being present *implies* ``t`` absent, so its
  joint probability is just ``Pr(t')``).

Both sums come from two table-wide prefix totals, so the whole ranking
costs O(n) after sorting — validated against enumeration in the tests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.rule_compression import rule_index_of_table
from repro.exceptions import QueryError
from repro.model.table import UncertainTable
from repro.query.topk import TopKQuery


def expected_rank_values(
    table: UncertainTable, query: TopKQuery
) -> Dict[Any, float]:
    """``E[rank(t)]`` for every tuple satisfying the predicate.

    Ranks are 0-based (the best possible expected rank is 0: always
    present, nothing above).  See the module docstring for the closed
    form.
    """
    selected = query.selected(table)
    ranked = query.ranking.rank_table(selected)
    rule_of = rule_index_of_table(selected)
    total_mass = sum(t.probability for t in ranked)

    # per-rule total mass (for the rule-mate corrections)
    rule_mass: Dict[Any, float] = {}
    for tup in ranked:
        rule = rule_of.get(tup.tid)
        if rule is not None:
            rule_mass[rule.rule_id] = (
                rule_mass.get(rule.rule_id, 0.0) + tup.probability
            )

    result: Dict[Any, float] = {}
    prefix_mass = 0.0  # Σ Pr(t') over t' ranked above the current tuple
    rule_prefix_mass: Dict[Any, float] = {}  # same, restricted per rule
    for tup in ranked:
        rule = rule_of.get(tup.tid)
        rule_id = rule.rule_id if rule is not None else None
        p = tup.probability
        own_rule_above = rule_prefix_mass.get(rule_id, 0.0) if rule_id else 0.0
        # an independent tuple behaves like a singleton rule: its "rule"
        # mass is just its own probability (no rule-mates)
        own_rule_total = rule_mass.get(rule_id, p) if rule_id else p

        # present part: dominants that can coexist with t
        present = p * (prefix_mass - own_rule_above)
        # absent part: rule-mates imply absence; others need (1 - p)
        rule_mates_mass = own_rule_total - p
        others_mass = total_mass - own_rule_total
        absent = rule_mates_mass + (1.0 - p) * others_mass
        result[tup.tid] = present + absent

        prefix_mass += p
        if rule_id is not None:
            rule_prefix_mass[rule_id] = own_rule_above + p
    return result


def expected_rank_topk(
    table: UncertainTable, query: TopKQuery
) -> List[Tuple[Any, float]]:
    """The k tuples of smallest expected rank.

    Ties are broken by ranking position (better-ranked tuple wins).

    :returns: list of ``(tuple id, expected rank)``, best first.
    """
    if query.k <= 0:
        raise QueryError(f"k must be positive, got {query.k}")
    values = expected_rank_values(table, query)
    ranked = query.ranking.rank_table(query.selected(table))
    position = {tup.tid: i for i, tup in enumerate(ranked)}
    ordered = sorted(values.items(), key=lambda kv: (kv[1], position[kv[0]]))
    return ordered[: query.k]
