"""State-materializing scan for U-TopK — the approach PT-k avoids.

Challenge 2 of the paper: the algorithms of Soliman et al. "scan the
tuples in the ranking descending order and materialize all the possible
states based on the tuples seen so far ... the number of states needs to
be maintained is exponential in the number of tuples searched", and
because those semantics are *rank-sensitive* this materialization is
unavoidable — whereas PT-k only needs the (k-entry) subset-probability
vector.

This module implements that state-materializing scan faithfully (with
the standard lower-bound pruning) and *instruments* it: the peak number
of live states is the quantity the paper's argument turns on, and the
``bench_semantics_runtime`` benchmark compares it against the PT-k
engine's O(k) state.  Results agree exactly with the best-first search
in :mod:`repro.semantics.utopk`.

A *state* after scanning ``i`` tuples is the vector of scanned tuples
chosen for the top-k so far; its probability is the total probability of
the worlds whose scanned part realises exactly that choice (rule
exclusions folded in incrementally, as in the best-first search).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Sequence, Tuple

from repro.exceptions import QueryError
from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.query.topk import TopKQuery
from repro.semantics.utopk import UTopKAnswer

#: Guard against state explosions on adversarial inputs.
DEFAULT_MAX_STATES = 5_000_000


@dataclass(frozen=True)
class StateScanResult:
    """Outcome of the materializing scan, with its cost counters.

    :param answer: the U-TopK answer (identical to the best-first one).
    :param peak_states: the largest number of live states at any scan
        position — the materialization cost of Challenge 2.
    :param total_states: states created over the whole scan.
    :param scan_depth: tuples scanned before termination.
    """

    answer: UTopKAnswer
    peak_states: int
    total_states: int
    scan_depth: int


@dataclass(frozen=True)
class _StateKey:
    """Identity of a state: the chosen vector plus rule bookkeeping."""

    chosen: Tuple[Any, ...]
    rule_skipped: Tuple[Tuple[Any, float], ...]
    rules_fired: frozenset


def utopk_state_scan(
    ranked: Sequence[UncertainTuple],
    rule_of: Mapping[Any, GenerationRule],
    k: int,
    max_states: int = DEFAULT_MAX_STATES,
) -> StateScanResult:
    """Scan the ranked list materializing every live state.

    Pruning: once a complete (length-k or end-of-list) state exists,
    any live state whose probability is already below the best complete
    one can never win (all remaining factors are <= 1) and is dropped;
    the scan stops when no live state remains.

    :raises QueryError: if the live-state count exceeds ``max_states``.
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")

    # state key -> probability
    states: Dict[_StateKey, float] = {
        _StateKey(chosen=(), rule_skipped=(), rules_fired=frozenset()): 1.0
    }
    best_vector: Tuple[Any, ...] = ()
    best_probability = 0.0
    peak_states = 1
    total_states = 1
    depth = 0

    for tup in ranked:
        if not states:
            break
        depth += 1
        rule = rule_of.get(tup.tid)
        rule_id = rule.rule_id if rule is not None else None
        successors: Dict[_StateKey, float] = {}

        for key, probability in states.items():
            skipped = dict(key.rule_skipped)
            s = skipped.get(rule_id, 0.0) if rule_id is not None else 0.0
            fired = rule_id is not None and rule_id in key.rules_fired

            # Branch 1: include the tuple.
            if not fired and (1.0 - s) > 0.0:
                include_probability = probability * tup.probability / (1.0 - s)
                if include_probability > 0.0:
                    chosen = key.chosen + (tup.tid,)
                    if len(chosen) == k:
                        if include_probability > best_probability:
                            best_probability = include_probability
                            best_vector = chosen
                    else:
                        fired_set = (
                            key.rules_fired | {rule_id}
                            if rule_id is not None
                            else key.rules_fired
                        )
                        successor = _StateKey(
                            chosen=chosen,
                            rule_skipped=key.rule_skipped,
                            rules_fired=fired_set,
                        )
                        successors[successor] = (
                            successors.get(successor, 0.0) + include_probability
                        )

            # Branch 2: exclude the tuple.
            if rule_id is None:
                factor = 1.0 - tup.probability
                new_skipped = key.rule_skipped
            elif fired:
                factor = 1.0
                new_skipped = key.rule_skipped
            else:
                denominator = 1.0 - s
                factor = (
                    (1.0 - s - tup.probability) / denominator
                    if denominator > 0.0
                    else 0.0
                )
                updated = dict(skipped)
                updated[rule_id] = s + tup.probability
                new_skipped = tuple(
                    sorted(updated.items(), key=lambda kv: str(kv[0]))
                )
            exclude_probability = probability * factor
            if exclude_probability > 0.0:
                successor = _StateKey(
                    chosen=key.chosen,
                    rule_skipped=new_skipped,
                    rules_fired=key.rules_fired,
                )
                successors[successor] = (
                    successors.get(successor, 0.0) + exclude_probability
                )

        # Lower-bound pruning: states already beaten cannot recover.
        states = {
            key: probability
            for key, probability in successors.items()
            if probability > best_probability
        }
        total_states += len(states)
        peak_states = max(peak_states, len(states))
        if len(states) > max_states:
            raise QueryError(
                f"state-materializing scan exceeded {max_states} live "
                f"states; this is the blow-up Challenge 2 describes"
            )

    # End of list: surviving partial states are complete short vectors.
    for key, probability in states.items():
        if probability > best_probability:
            best_probability = probability
            best_vector = key.chosen

    return StateScanResult(
        answer=UTopKAnswer(
            vector=best_vector,
            probability=best_probability,
            expansions=total_states,
        ),
        peak_states=peak_states,
        total_states=total_states,
        scan_depth=depth,
    )


def utopk_by_state_scan(
    table: UncertainTable,
    query: TopKQuery,
    max_states: int = DEFAULT_MAX_STATES,
) -> StateScanResult:
    """Run the materializing scan on an uncertain table."""
    from repro.core.rule_compression import rule_index_of_table

    selected = query.selected(table)
    ranked = query.ranking.rank_table(selected)
    rule_of = rule_index_of_table(selected)
    return utopk_state_scan(ranked, rule_of, query.k, max_states=max_states)
