"""Example tables and the Section 6.1 semantics comparison.

* :func:`panda_example_tables` regenerates Tables 2 and 3 of the paper
  (possible worlds of the panda data and the top-2 probabilities).
* :func:`iceberg_comparison` reruns the Section 6.1 study — PT-k vs
  U-TopK vs U-KRanks with ``k = 10``, ``p = 0.5`` — on the simulated
  iceberg sightings table, producing the paper's Tables 5 and 6 shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bench.harness import ExperimentTable
from repro.datagen.iceberg import IcebergConfig, generate_iceberg_table
from repro.datagen.sensors import panda_table
from repro.model.table import UncertainTable
from repro.model.worlds import enumerate_possible_worlds
from repro.query.engine import SemanticsComparison, UncertainDB
from repro.query.topk import TopKQuery


def panda_worlds_table() -> ExperimentTable:
    """Table 2: every possible world of the panda data with its top-2."""
    table = panda_table()
    query = TopKQuery(k=2)
    by_id = {t.tid: t for t in table}
    result = ExperimentTable(
        title="Table 2: possible worlds of the panda records",
        columns=["world", "probability", "top2"],
    )
    worlds = sorted(
        enumerate_possible_worlds(table),
        key=lambda w: sorted(str(t) for t in w.tuple_ids),
    )
    for world in worlds:
        members = [by_id[tid] for tid in world.tuple_ids]
        top = query.answer_on_world(members)
        result.add_row(
            "{" + ", ".join(sorted(world.tuple_ids)) + "}",
            world.probability,
            ", ".join(t.tid for t in top),
        )
    return result


def panda_probabilities_table() -> ExperimentTable:
    """Table 3: exact top-2 probability of every panda record."""
    db = UncertainDB()
    db.register(panda_table())
    probabilities = db.topk_probabilities("panda_sightings", k=2)
    result = ExperimentTable(
        title="Table 3: top-2 probabilities of the panda records",
        columns=["tuple", "top2_probability"],
    )
    for tid in sorted(probabilities, key=str):
        result.add_row(tid, probabilities[tid])
    return result


@dataclass
class IcebergStudy:
    """Everything the Section 6.1 study produces.

    :param comparison: the three semantics' answers.
    :param answer_table: Tables 5/6-style summary of every mentioned
        tuple: drift score, membership probability, top-k probability,
        and which semantics selected it.
    """

    comparison: SemanticsComparison
    answer_table: ExperimentTable


def iceberg_comparison(
    k: int = 10,
    threshold: float = 0.5,
    config: Optional[IcebergConfig] = None,
    table: Optional[UncertainTable] = None,
) -> IcebergStudy:
    """Rerun the Section 6.1 comparison on (simulated) iceberg data."""
    table = table if table is not None else generate_iceberg_table(config)
    db = UncertainDB()
    db.register(table, name="iceberg")
    comparison = db.compare_semantics("iceberg", k=k, threshold=threshold)

    ptk_set = comparison.ptk.answer_set
    utopk_set = set(comparison.utopk.vector)
    ukranks_set = set(comparison.ukranks.tuple_ids)

    summary = ExperimentTable(
        title=(
            f"Section 6.1 comparison on {table.name} "
            f"(k={k}, p={threshold}; "
            f"U-TopK vector probability={comparison.utopk.probability:.4g})"
        ),
        columns=[
            "tuple",
            "drifted_days",
            "membership_prob",
            "topk_prob",
            "in_PTk",
            "in_UTopK",
            "in_UKRanks",
        ],
    )
    ranked = TopKQuery(k=k).ranking.rank_table(table)
    position = {t.tid: i for i, t in enumerate(ranked)}
    for tid in sorted(comparison.mentioned_tuples(), key=lambda t: position[t]):
        tup = table.get(tid)
        summary.add_row(
            tid,
            tup.score,
            tup.probability,
            comparison.topk_probabilities.get(tid, 0.0),
            tid in ptk_set,
            tid in utopk_set,
            tid in ukranks_set,
        )
    return IcebergStudy(comparison=comparison, answer_table=summary)


def ukranks_table(study: IcebergStudy) -> ExperimentTable:
    """Table 5: the U-KRanks winner and probability at every rank."""
    result = ExperimentTable(
        title="Table 5: U-KRanks answers (rank, tuple, probability at rank)",
        columns=["rank", "tuple", "probability_at_rank"],
    )
    for rank, (tid, probability) in enumerate(
        study.comparison.ukranks.winners, start=1
    ):
        result.add_row(rank, tid, probability)
    return result
