"""Figure 7: scalability with table size and rule count.

Panel (a)/(b): runtime and scan depth as the number of tuples grows from
20,000 to 100,000 (rules fixed at 10% of tuples).  Panel (c)/(d): runtime
and scan depth as the number of rules grows from 500 to 2,500 (tuples
fixed at 20,000).  Both with ``k = 200`` and ``p = 0.3``.

The paper's headline shape: runtime grows only mildly with table size
because the pruned scan depth depends on k, not n; runtime grows with
rule count but the reordering variants stay scalable.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bench.harness import ExperimentTable, measure, run_sweep
from repro.core.exact import ExactVariant, exact_ptk_query
from repro.core.sampling import SamplingConfig, sampled_ptk_query
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.query.topk import TopKQuery

DEFAULT_TUPLE_COUNTS: Sequence[int] = (20_000, 40_000, 60_000, 80_000, 100_000)
DEFAULT_RULE_COUNTS: Sequence[int] = (500, 1_000, 1_500, 2_000, 2_500)

_METRICS = [
    "runtime_rc_lr",
    "runtime_rc_ar",
    "runtime_sampling",
    "scan_depth",
    "sample_length",
]


def _best_of(fn, repeats: int = 3):
    """Run ``fn`` several times, returning (last result, best seconds).

    Minimum-of-repeats filters scheduler noise and CPU contention out of
    the scalability trend, which compares runtimes across points.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        result, seconds = measure(fn)
        best = min(best, seconds)
    return result, best


def _measure(config: SyntheticConfig, k: int, threshold: float, seed: int) -> Dict:
    table = generate_synthetic_table(config)
    query = TopKQuery(k=k)
    point: Dict = {}
    answer, seconds = _best_of(
        lambda: exact_ptk_query(table, query, threshold, variant=ExactVariant.RC_LR)
    )
    point["runtime_rc_lr"] = seconds
    point["scan_depth"] = answer.stats.scan_depth
    _, seconds = _best_of(
        lambda: exact_ptk_query(table, query, threshold, variant=ExactVariant.RC_AR)
    )
    point["runtime_rc_ar"] = seconds
    sampled, seconds = measure(
        lambda: sampled_ptk_query(
            table, query, threshold, config=SamplingConfig(seed=seed)
        )
    )
    point["runtime_sampling"] = seconds
    point["sample_length"] = sampled.stats.avg_sample_length
    return point


def scalability_vs_tuples(
    tuple_counts: Sequence[int] = DEFAULT_TUPLE_COUNTS,
    rule_fraction: float = 0.1,
    k: int = 200,
    threshold: float = 0.3,
    seed: int = 7,
    scale: float = 1.0,
) -> ExperimentTable:
    """Figure 7(a/b): vary the number of tuples, rules at 10%.

    :param scale: uniform shrink factor on tuple counts and k for quick
        runs; 1.0 reproduces the paper's sizes.
    """
    k_scaled = max(1, int(round(k * scale)))

    def point(n: int) -> Dict:
        n_scaled = max(10, int(round(n * scale)))
        config = SyntheticConfig(
            n_tuples=n_scaled,
            n_rules=int(n_scaled * rule_fraction),
            seed=seed,
        )
        return _measure(config, k_scaled, threshold, seed)

    return run_sweep(
        title="Figure 7(a/b): scalability vs number of tuples",
        x_name="n_tuples",
        x_values=list(tuple_counts),
        metrics=_METRICS,
        point_fn=point,
        notes=f"rules=10% of tuples, k={k_scaled}, p={threshold}, scale={scale}",
    )


def scalability_vs_rules(
    rule_counts: Sequence[int] = DEFAULT_RULE_COUNTS,
    n_tuples: int = 20_000,
    k: int = 200,
    threshold: float = 0.3,
    seed: int = 7,
    scale: float = 1.0,
) -> ExperimentTable:
    """Figure 7(c/d): vary the number of rules, tuples fixed."""
    k_scaled = max(1, int(round(k * scale)))
    n_scaled = max(10, int(round(n_tuples * scale)))

    def point(n_rules: int) -> Dict:
        config = SyntheticConfig(
            n_tuples=n_scaled,
            n_rules=max(0, int(round(n_rules * scale))),
            seed=seed,
        )
        return _measure(config, k_scaled, threshold, seed)

    return run_sweep(
        title="Figure 7(c/d): scalability vs number of rules",
        x_name="n_rules",
        x_values=list(rule_counts),
        metrics=_METRICS,
        point_fn=point,
        notes=f"n={n_scaled}, k={k_scaled}, p={threshold}, scale={scale}",
    )
