"""Figures 4 and 5: scan depth and runtime vs workload parameters.

One *sweep point* generates a synthetic table (Section 6.2 defaults
unless the swept axis overrides a parameter) and measures, on identical
input:

* the exact algorithm's scan depth, answer-set size, and per-variant
  runtime / subset-probability-extension counts (RC, RC+AR, RC+LR);
* the sampling algorithm's average sample length and runtime.

Figure 4 reads the depth/length/answer columns; Figure 5 reads the
runtime columns.  The four panels of each figure are the four axes:

====================  =========================================
axis                  paper x-axis
====================  =========================================
``membership``        expected membership probability (4a/5a)
``rule_complexity``   expected number of tuples per rule (4b/5b)
``k``                 parameter k (4c/5c)
``threshold``         probability threshold p (4d/5d)
====================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Sequence

from repro.bench.harness import ExperimentTable, measure, run_sweep
from repro.core.exact import ExactVariant, exact_ptk_query
from repro.core.sampling import SamplingConfig, sampled_ptk_query
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.query.topk import TopKQuery

#: Sweep values for each axis, shaped like the paper's x-axes.
DEFAULT_AXIS_VALUES: Dict[str, Sequence[Any]] = {
    "membership": [0.1, 0.3, 0.5, 0.7, 0.9],
    "rule_complexity": [2, 4, 6, 8, 10],
    "k": [50, 100, 200, 400, 800],
    "threshold": [0.1, 0.3, 0.5, 0.7, 0.9],
}

#: Metric columns produced at every sweep point.
SWEEP_METRICS = [
    "scan_depth",
    "sample_length",
    "answer_size",
    "runtime_rc",
    "runtime_rc_ar",
    "runtime_rc_lr",
    "runtime_sampling",
    "ext_rc",
    "ext_rc_ar",
    "ext_rc_lr",
]


@dataclass
class SweepSettings:
    """Workload and query defaults for the Figure 4/5 sweeps.

    Paper defaults: 20,000 tuples, 2,000 rules, ``|R| ~ N(5,2)``,
    independent probabilities ``N(0.5,0.2)``, rule probabilities
    ``N(0.7,0.2)``, ``k = 200``, ``p = 0.3``.

    :param scale: uniform shrink factor applied to ``n_tuples``,
        ``n_rules`` and ``k`` — lets tests and quick runs keep the
        paper's shape at a fraction of the cost.  ``1.0`` reproduces the
        paper's sizes.
    """

    n_tuples: int = 20_000
    n_rules: int = 2_000
    rule_size_mean: float = 5.0
    membership_mean: float = 0.5
    rule_prob_mean: float = 0.7
    k: int = 200
    threshold: float = 0.3
    seed: int = 7
    scale: float = 1.0
    sampling: Optional[SamplingConfig] = None

    def scaled(self, value: int) -> int:
        """Apply the shrink factor, keeping at least 1."""
        return max(1, int(round(value * self.scale)))

    def synthetic_config(self, **overrides: Any) -> SyntheticConfig:
        """The generator config at one sweep point."""
        params = {
            "n_tuples": self.scaled(self.n_tuples),
            "n_rules": self.scaled(self.n_rules),
            "rule_size_mean": self.rule_size_mean,
            "independent_prob_mean": self.membership_mean,
            "rule_prob_mean": self.rule_prob_mean,
            "seed": self.seed,
        }
        params.update(overrides)
        return SyntheticConfig(**params)


def measure_point(
    settings: SweepSettings,
    axis: str,
    value: Any,
) -> Dict[str, Any]:
    """All sweep metrics at one ``(axis, value)`` point."""
    k = settings.scaled(settings.k)
    threshold = settings.threshold
    overrides: Dict[str, Any] = {}
    if axis == "membership":
        overrides["independent_prob_mean"] = value
        overrides["rule_prob_mean"] = min(1.0, value + 0.2)
    elif axis == "rule_complexity":
        overrides["rule_size_mean"] = value
        # keep the tuple budget feasible when rules grow
        max_rules = settings.scaled(settings.n_tuples) // max(2, int(value) + 2)
        overrides["n_rules"] = min(settings.scaled(settings.n_rules), max_rules)
    elif axis == "k":
        k = settings.scaled(value)
    elif axis == "threshold":
        threshold = value
    else:
        raise ValueError(
            f"unknown axis {axis!r}; expected one of {sorted(DEFAULT_AXIS_VALUES)}"
        )

    table = generate_synthetic_table(settings.synthetic_config(**overrides))
    query = TopKQuery(k=k)

    point: Dict[str, Any] = {}
    for variant, runtime_key, ext_key in (
        (ExactVariant.RC, "runtime_rc", "ext_rc"),
        (ExactVariant.RC_AR, "runtime_rc_ar", "ext_rc_ar"),
        (ExactVariant.RC_LR, "runtime_rc_lr", "ext_rc_lr"),
    ):
        answer, seconds = measure(
            lambda v=variant: exact_ptk_query(table, query, threshold, variant=v)
        )
        point[runtime_key] = seconds
        point[ext_key] = answer.stats.subset_extensions
        if variant is ExactVariant.RC_LR:
            point["scan_depth"] = answer.stats.scan_depth
            point["answer_size"] = len(answer)

    sampling_config = settings.sampling or SamplingConfig(seed=settings.seed)
    sampled, seconds = measure(
        lambda: sampled_ptk_query(table, query, threshold, config=sampling_config)
    )
    point["runtime_sampling"] = seconds
    point["sample_length"] = sampled.stats.avg_sample_length
    return point


def sweep_axis(
    axis: str,
    values: Optional[Sequence[Any]] = None,
    settings: Optional[SweepSettings] = None,
) -> ExperimentTable:
    """Run the full Figure 4/5 sweep along one axis."""
    settings = settings or SweepSettings()
    values = values if values is not None else DEFAULT_AXIS_VALUES[axis]
    notes = (
        f"n={settings.scaled(settings.n_tuples)}, "
        f"rules={settings.scaled(settings.n_rules)}, "
        f"k={settings.scaled(settings.k)}, p={settings.threshold}, "
        f"seed={settings.seed}"
    )
    return run_sweep(
        title=f"Figures 4/5 sweep over {axis}",
        x_name=axis,
        x_values=list(values),
        metrics=SWEEP_METRICS,
        point_fn=lambda v: measure_point(settings, axis, v),
        notes=notes,
    )


def figure4_view(sweep: ExperimentTable) -> ExperimentTable:
    """Project a sweep onto the Figure 4 columns (scan-depth panel)."""
    keep = [sweep.columns[0], "scan_depth", "sample_length", "answer_size"]
    view = ExperimentTable(
        title=sweep.title.replace("Figures 4/5", "Figure 4"),
        columns=keep,
        notes=sweep.notes,
    )
    for row in sweep.as_dicts():
        view.add_row(*[row[c] for c in keep])
    return view


def figure5_view(sweep: ExperimentTable) -> ExperimentTable:
    """Project a sweep onto the Figure 5 columns (runtime panel)."""
    keep = [
        sweep.columns[0],
        "runtime_rc",
        "runtime_rc_ar",
        "runtime_rc_lr",
        "runtime_sampling",
    ]
    view = ExperimentTable(
        title=sweep.title.replace("Figures 4/5", "Figure 5"),
        columns=keep,
        notes=sweep.notes,
    )
    for row in sweep.as_dicts():
        view.add_row(*[row[c] for c in keep])
    return view
