"""Measurement plumbing shared by every benchmark module."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def measure(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run ``fn`` once and return ``(result, elapsed_seconds)``.

    Wall-clock via ``time.perf_counter``; the paper's figures compare
    *relative* runtimes of algorithm variants, for which single-shot
    wall-clock on identical inputs is adequate (the pytest-benchmark
    wrappers add repetition where it matters).
    """
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@dataclass
class ExperimentTable:
    """One experiment's output: named columns, one row per sweep point.

    :param title: experiment title (e.g. ``"Figure 4(a): scan depth vs
        expected membership probability"``).
    :param columns: column names, x-axis first.
    :param rows: row values aligned with ``columns``.
    :param notes: free-form provenance (workload parameters, seeds).
    """

    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Any]:
        """All values of one column, by name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


def run_sweep(
    title: str,
    x_name: str,
    x_values: Sequence[Any],
    metrics: Sequence[str],
    point_fn: Callable[[Any], Dict[str, Any]],
    notes: str = "",
) -> ExperimentTable:
    """Evaluate ``point_fn`` at every x value and tabulate the metrics.

    :param point_fn: maps one x value to a metric-name -> value dict;
        must supply every name in ``metrics``.
    """
    table = ExperimentTable(
        title=title, columns=[x_name, *metrics], notes=notes
    )
    for x in x_values:
        point = point_fn(x)
        table.add_row(x, *[point[m] for m in metrics])
    return table
