"""ASCII charts for experiment tables (no plotting dependency).

The paper's evaluation is figures; in a terminal-only environment the
benchmarks render their series as compact ASCII charts so trends and
crossovers are visible at a glance::

    render_chart(sweep, x="k", series=["runtime_rc", "runtime_rc_lr"])

Each series gets a marker; the y-axis auto-scales (optionally
logarithmically, which suits runtime series spanning decades).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.bench.harness import ExperimentTable

#: Markers assigned to series in order.
MARKERS = "ox*+#@%&"


def _scale(value: float, low: float, high: float, log: bool) -> float:
    """Map a value into [0, 1] under the chosen axis scale."""
    if log:
        value, low, high = (
            math.log10(max(value, 1e-12)),
            math.log10(max(low, 1e-12)),
            math.log10(max(high, 1e-12)),
        )
    if high <= low:
        return 0.5
    return (value - low) / (high - low)


def render_chart(
    table: ExperimentTable,
    x: str,
    series: Sequence[str],
    height: int = 12,
    width: Optional[int] = None,
    log_y: bool = False,
) -> str:
    """Render selected columns of an experiment table as an ASCII chart.

    :param table: the experiment data.
    :param x: column used for the x axis (labels only; points are
        spaced evenly, matching how sweep values are chosen).
    :param series: y columns to plot, each with its own marker.
    :param height: chart rows.
    :param width: chart columns; default spreads points 8 cells apart.
    :param log_y: log-scale the y axis (for runtime series).
    :returns: the chart with a legend line, ready to print.
    """
    if not series:
        raise ValueError("at least one series is required")
    if len(series) > len(MARKERS):
        raise ValueError(f"at most {len(MARKERS)} series supported")
    xs = table.column(x)
    n_points = len(xs)
    if n_points == 0:
        return f"(no data for chart over {x})"
    width = width or max(24, 8 * n_points)

    values: List[List[float]] = [
        [float(v) for v in table.column(name)] for name in series
    ]
    flat = [v for column in values for v in column]
    low, high = min(flat), max(flat)

    grid = [[" "] * width for _ in range(height)]
    for s, column in enumerate(values):
        marker = MARKERS[s]
        for i, value in enumerate(column):
            col = (
                int(round(i * (width - 1) / (n_points - 1)))
                if n_points > 1
                else width // 2
            )
            row = height - 1 - int(
                round(_scale(value, low, high, log_y) * (height - 1))
            )
            row = min(max(row, 0), height - 1)
            # later series win collisions; close enough for a glance
            grid[row][col] = marker

    def label(value: float) -> str:
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.2g}"

    axis_width = max(len(label(low)), len(label(high)))
    lines = []
    for r, row in enumerate(grid):
        if r == 0:
            prefix = label(high).rjust(axis_width)
        elif r == height - 1:
            prefix = label(low).rjust(axis_width)
        else:
            prefix = " " * axis_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * axis_width + " +" + "-" * width)
    x_labels = "  ".join(str(v) for v in xs)
    lines.append(" " * (axis_width + 2) + f"{x}: {x_labels}")
    legend = "  ".join(
        f"{MARKERS[s]}={name}" for s, name in enumerate(series)
    )
    scale_note = " (log y)" if log_y else ""
    lines.append(" " * (axis_width + 2) + legend + scale_note)
    return "\n".join(lines)


def chart_for_runtime_sweep(table: ExperimentTable, x: str) -> str:
    """Convenience: the Figure-5 style runtime chart (log y)."""
    series = [
        name
        for name in (
            "runtime_rc",
            "runtime_rc_ar",
            "runtime_rc_lr",
            "runtime_sampling",
        )
        if name in table.columns
    ]
    return render_chart(table, x=x, series=series, log_y=True)
