"""Ablation benchmarks: reordering cost (Equation 5) and pruning rules.

Two studies the paper discusses in text without dedicated figures:

* **Reordering cost** (Example 5 / Equation 5): the number of
  subset-probability extensions each ordering strategy pays.  The paper
  works Example 5 by hand (aggressive 15, lazy 12) and claims lazy is
  never worse; :func:`reordering_cost_experiment` measures both on any
  table and :func:`example5_costs` reproduces the hand-worked numbers.
* **Pruning ablation** (Section 4.4): scan depth and evaluated-tuple
  counts with each pruning rule toggled, quantifying each theorem's
  contribution to "only a very small portion of the tuples ... are
  retrieved".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentTable, measure
from repro.core.exact import ExactVariant, exact_ptk_query
from repro.core.pruning import PruningFlags
from repro.core.reordering import (
    AggressiveReordering,
    LazyReordering,
    ReorderingStrategy,
    reordering_cost,
)
from repro.core.rule_compression import (
    CompressionUnit,
    DominantSetScan,
    rule_index_of_table,
)
from repro.datagen.sensors import example5_table
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.model.table import UncertainTable
from repro.query.topk import TopKQuery


def unit_orders(
    table: UncertainTable,
    query: TopKQuery,
    strategy: ReorderingStrategy,
) -> List[List[CompressionUnit]]:
    """Per-tuple compressed-dominant-set orders under one strategy.

    Replays the full scan (no pruning) and records the order the
    strategy produces for every tuple — the ``L(t_i)`` sequences of
    Section 4.3.2.
    """
    selected = query.selected(table)
    ranked = query.ranking.rank_table(selected)
    rule_of = rule_index_of_table(selected)
    scan = DominantSetScan(ranked, rule_of)
    orders: List[List[CompressionUnit]] = []
    previous: List[CompressionUnit] = []
    for tup in ranked:
        units = scan.units_for(tup)
        order = strategy.order_units(units, previous)
        orders.append(order)
        previous = order
        scan.advance(tup)
    return orders


def example5_costs() -> Dict[str, int]:
    """Equation-5 costs on Example 5 (paper: aggressive 15, lazy 12)."""
    table = example5_table()
    query = TopKQuery(k=3)
    return {
        "aggressive": reordering_cost(
            unit_orders(table, query, AggressiveReordering())
        ),
        "lazy": reordering_cost(unit_orders(table, query, LazyReordering())),
    }


def reordering_cost_experiment(
    rule_size_means: Sequence[float] = (2, 4, 6, 8, 10),
    n_tuples: int = 2_000,
    n_rules: int = 200,
    k: int = 50,
    seed: int = 7,
) -> ExperimentTable:
    """Equation-5 cost of aggressive vs lazy as rules grow longer.

    Longer rules stay open across wider spans of the ranking, which is
    exactly where prefix reuse matters; the lazy column must never
    exceed the aggressive one.
    """
    result = ExperimentTable(
        title="Equation-5 reordering cost: aggressive vs lazy",
        columns=["rule_size_mean", "cost_aggressive", "cost_lazy", "lazy_savings"],
        notes=f"n={n_tuples}, rules={n_rules}, k={k}, full scan, seed={seed}",
    )
    query = TopKQuery(k=k)
    for mean in rule_size_means:
        config = SyntheticConfig(
            n_tuples=n_tuples,
            n_rules=min(n_rules, n_tuples // (int(mean) + 2)),
            rule_size_mean=mean,
            seed=seed,
        )
        table = generate_synthetic_table(config)
        aggressive = reordering_cost(
            unit_orders(table, query, AggressiveReordering())
        )
        lazy = reordering_cost(unit_orders(table, query, LazyReordering()))
        savings = 1.0 - (lazy / aggressive) if aggressive else 0.0
        result.add_row(mean, aggressive, lazy, savings)
    return result


#: The ablation steps: label -> pruning flags.
ABLATION_STEPS: Dict[str, Optional[PruningFlags]] = {
    "none": None,  # pruning disabled entirely
    "T3 only": PruningFlags(True, False, False, False),
    "T3+T4": PruningFlags(True, True, False, False),
    "T3+T4+T5": PruningFlags(True, True, True, False),
    "all (+tail)": PruningFlags(True, True, True, True),
}


def pruning_ablation(
    config: Optional[SyntheticConfig] = None,
    k: int = 200,
    threshold: float = 0.3,
) -> ExperimentTable:
    """Scan depth / evaluations / runtime with pruning rules toggled.

    Note Theorems 3 and 4 skip *evaluations* while Theorem 5 and the
    tail bound stop *retrieval*: the first two shrink the ``evaluated``
    column, the last two shrink ``scan_depth``.
    """
    table = generate_synthetic_table(config or SyntheticConfig())
    query = TopKQuery(k=k)
    result = ExperimentTable(
        title=f"Pruning ablation (k={k}, p={threshold})",
        columns=[
            "rules_enabled",
            "scan_depth",
            "evaluated",
            "pruned",
            "runtime",
            "answer_size",
        ],
        notes=f"table={table.name}, n={len(table)}",
    )
    for label, flags in ABLATION_STEPS.items():
        if flags is None:
            answer, seconds = measure(
                lambda: exact_ptk_query(
                    table, query, threshold, variant=ExactVariant.RC_LR, pruning=False
                )
            )
        else:
            answer, seconds = measure(
                lambda f=flags: exact_ptk_query(
                    table,
                    query,
                    threshold,
                    variant=ExactVariant.RC_LR,
                    pruning_flags=f,
                )
            )
        result.add_row(
            label,
            answer.stats.scan_depth,
            answer.stats.tuples_evaluated,
            answer.stats.tuples_pruned,
            seconds,
            len(answer),
        )
    return result
