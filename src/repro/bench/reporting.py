"""Fixed-width rendering of experiment tables for terminal output."""

from __future__ import annotations

from typing import Any, List

from repro.bench.harness import ExperimentTable


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(table: ExperimentTable) -> str:
    """Render an :class:`ExperimentTable` as an aligned text table."""
    header = list(table.columns)
    body: List[List[str]] = [
        [_format_cell(value) for value in row] for row in table.rows
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"== {table.title} =="]
    if table.notes:
        lines.append(f"   ({table.notes})")
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(table: ExperimentTable) -> None:
    """Render and print (convenience for benchmark scripts)."""
    print()
    print(render_table(table))
