"""One-shot experiment runner: every paper artifact into one report.

``python -m repro.bench.runner [--scale S] [--out report.md]`` runs the
full experiment suite programmatically (the same code paths the pytest
benchmarks drive) and writes a single markdown report with every table.
Useful for regenerating EXPERIMENTS.md numbers without pytest plumbing.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.bench.ablation import (
    example5_costs,
    pruning_ablation,
    reordering_cost_experiment,
)
from repro.bench.comparison import (
    iceberg_comparison,
    panda_probabilities_table,
    panda_worlds_table,
    ukranks_table,
)
from repro.bench.harness import ExperimentTable
from repro.bench.quality import quality_experiment
from repro.bench.reporting import render_table
from repro.bench.scalability import scalability_vs_rules, scalability_vs_tuples
from repro.bench.sweeps import (
    SweepSettings,
    figure4_view,
    figure5_view,
    sweep_axis,
)
from repro.datagen.iceberg import IcebergConfig
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table


def run_all(scale: float = 0.5, seed: int = 7) -> List[ExperimentTable]:
    """Run every experiment at the given workload scale.

    :returns: all experiment tables, in the DESIGN.md experiment order.
    """
    tables: List[ExperimentTable] = []

    # E1 — the worked example
    tables.append(panda_worlds_table())
    tables.append(panda_probabilities_table())

    # E2 — iceberg comparison
    study = iceberg_comparison(
        k=10,
        threshold=0.5,
        config=IcebergConfig(
            n_tuples=max(300, int(4231 * scale)),
            n_rules=max(50, int(825 * scale)),
        ),
    )
    tables.append(ukranks_table(study))
    tables.append(study.answer_table)

    # E3/E4 — the four sweeps (Figures 4 and 5 views)
    settings = SweepSettings(scale=scale, seed=seed)
    for axis in ("membership", "rule_complexity", "k", "threshold"):
        sweep = sweep_axis(axis, settings=settings)
        tables.append(figure4_view(sweep))
        tables.append(figure5_view(sweep))

    # E5 — sampling quality at two k values over one shared workload
    workload = generate_synthetic_table(
        SyntheticConfig(
            n_tuples=max(500, int(20_000 * scale)),
            n_rules=max(50, int(2_000 * scale)),
            seed=11,
        )
    )
    tables.append(quality_experiment(k=max(5, int(200 * scale)), table=workload))
    tables.append(quality_experiment(k=max(20, int(1_000 * scale)), table=workload))

    # E6 — scalability
    tables.append(scalability_vs_tuples(scale=scale, seed=seed))
    tables.append(scalability_vs_rules(scale=scale, seed=seed))

    # E7 — reordering cost (plus the hand-worked Example 5 values)
    costs = example5_costs()
    example5 = ExperimentTable(
        title="Example 5 Equation-5 costs (paper: aggressive 15, lazy 12)",
        columns=["strategy", "cost"],
    )
    example5.add_row("aggressive", costs["aggressive"])
    example5.add_row("lazy", costs["lazy"])
    tables.append(example5)
    tables.append(
        reordering_cost_experiment(
            n_tuples=max(500, int(4_000 * scale)),
            n_rules=max(50, int(400 * scale)),
            k=max(10, int(100 * scale)),
        )
    )

    # E8 — pruning ablation
    tables.append(
        pruning_ablation(
            config=SyntheticConfig(
                n_tuples=max(500, int(20_000 * scale)),
                n_rules=max(50, int(2_000 * scale)),
                seed=seed,
            ),
            k=max(10, int(200 * scale)),
        )
    )
    return tables


def write_report(
    tables: List[ExperimentTable], path: Path, scale: float, elapsed: float
) -> None:
    """Render all tables (with charts for the figure sweeps) into one
    markdown report file."""
    from repro.bench.charts import render_chart

    lines = [
        "# Experiment report",
        "",
        f"Workload scale: {scale} (1.0 = the paper's sizes).  "
        f"Total runtime: {elapsed:.1f}s.",
        "",
    ]
    for table in tables:
        lines.append("```")
        lines.append(render_table(table))
        if table.title.startswith("Figure 5") and len(table.rows) > 1:
            lines.append("")
            lines.append(
                render_chart(
                    table,
                    x=table.columns[0],
                    series=[c for c in table.columns[1:]],
                    log_y=True,
                )
            )
        elif table.title.startswith("Figure 4") and len(table.rows) > 1:
            lines.append("")
            lines.append(
                render_chart(
                    table,
                    x=table.columns[0],
                    series=[c for c in table.columns[1:]],
                )
            )
        lines.append("```")
        lines.append("")
    path.write_text("\n".join(lines))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.runner",
        description="run every paper experiment and write one report",
    )
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", type=Path, default=Path("experiment_report.md")
    )
    args = parser.parse_args(argv)
    start = time.perf_counter()
    tables = run_all(scale=args.scale, seed=args.seed)
    elapsed = time.perf_counter() - start
    write_report(tables, args.out, args.scale, elapsed)
    print(f"wrote {len(tables)} experiment tables to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
