"""Figure 6: approximation quality of the sampling method.

Panels (a)/(b): average relative error of the estimated top-k
probabilities vs sample size, against the Chernoff–Hoeffding reference
bound, for two values of k.  Panels (c)/(d): precision and recall of the
sampled PT-k answer set vs sample size.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.exact import exact_ptk_query, exact_topk_probabilities
from repro.core.sampling import SamplingConfig, sampled_topk_probabilities
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.model.table import UncertainTable
from repro.query.topk import TopKQuery
from repro.stats.bounds import chernoff_hoeffding_error_bound
from repro.stats.metrics import average_relative_error, precision_recall

#: Sample sizes swept in Figure 6 (the paper sweeps to a few thousand).
DEFAULT_SAMPLE_SIZES: Sequence[int] = (200, 500, 1000, 2000, 4000)


def quality_experiment(
    k: int,
    threshold: float = 0.3,
    sample_sizes: Sequence[int] = DEFAULT_SAMPLE_SIZES,
    config: Optional[SyntheticConfig] = None,
    delta: float = 0.05,
    seed: int = 11,
    table: Optional[UncertainTable] = None,
) -> ExperimentTable:
    """Error rate, CH bound, precision and recall vs sample size.

    The exact probabilities and exact answer set are computed once
    (RC+LR, no approximation); each sample size then runs the sampler
    with progressive stopping disabled so the drawn size is exactly the
    x value.

    :param table: pass a pre-generated table to share one workload
        across several k values (as the paper's panels do).
    """
    if table is None:
        table = generate_synthetic_table(config or SyntheticConfig(seed=seed))
    query = TopKQuery(k=k)
    exact_probabilities = exact_topk_probabilities(table, query)
    exact_answer = exact_ptk_query(table, query, threshold)

    result = ExperimentTable(
        title=f"Figure 6: sampling quality (k={k}, p={threshold})",
        columns=[
            "sample_size",
            "error_rate",
            "ch_bound",
            "precision",
            "recall",
        ],
        notes=f"table={table.name}, |answer|={len(exact_answer)}, delta={delta}",
    )
    for size in sample_sizes:
        rng = np.random.default_rng(seed + size)
        sampling = sampled_topk_probabilities(
            table,
            query,
            config=SamplingConfig(sample_size=size, progressive=False),
            rng=rng,
        )
        error = average_relative_error(
            exact_probabilities, sampling.estimates, threshold
        )
        ranked = query.ranking.rank_table(query.selected(table))
        predicted = [
            t.tid for t in ranked if sampling.estimate_of(t.tid) >= threshold
        ]
        precision, recall = precision_recall(exact_answer.answers, predicted)
        result.add_row(
            size,
            error,
            chernoff_hoeffding_error_bound(size, delta),
            precision,
            recall,
        )
    return result


def convergence_experiment(
    k: int,
    threshold: float = 0.3,
    config: Optional[SyntheticConfig] = None,
    seed: int = 11,
    tolerances: Sequence[float] = (0.02, 0.01, 0.005, 0.002),
    table: Optional[UncertainTable] = None,
) -> ExperimentTable:
    """Progressive-stopping behaviour: units drawn and quality vs ``phi``.

    Supplementary to Figure 6: shows the (d, phi) rule trading samples
    for accuracy, with the Theorem-6 budget as the ceiling.

    :param table: pass a pre-generated table to share one workload with
        the other Figure-6 panels.
    """
    if table is None:
        table = generate_synthetic_table(config or SyntheticConfig(seed=seed))
    query = TopKQuery(k=k)
    exact_probabilities = exact_topk_probabilities(table, query)

    result = ExperimentTable(
        title=f"Progressive sampling convergence (k={k}, p={threshold})",
        columns=["phi", "units_drawn", "budget", "converged_early", "error_rate"],
        notes=f"table={table.name}, d=100",
    )
    for phi in tolerances:
        sampling = sampled_topk_probabilities(
            table,
            query,
            config=SamplingConfig(tolerance=phi, seed=seed),
        )
        error = average_relative_error(
            exact_probabilities, sampling.estimates, threshold
        )
        result.add_row(
            phi,
            sampling.units_drawn,
            sampling.budget,
            sampling.converged_early,
            error,
        )
    return result
