"""Benchmark harness: regenerates every table and figure of the paper.

Each module owns one experiment family (see DESIGN.md's experiment
index); the ``benchmarks/`` pytest files are thin wrappers that call
these functions and print the resulting tables, so every experiment can
also be driven programmatically or from an interactive session.

* :mod:`~repro.bench.harness` — timing and sweep plumbing.
* :mod:`~repro.bench.reporting` — fixed-width table rendering.
* :mod:`~repro.bench.sweeps` — the Figure 4 (scan depth) and Figure 5
  (runtime) parameter sweeps.
* :mod:`~repro.bench.quality` — Figure 6: sampling error rate vs the
  Chernoff–Hoeffding bound, precision/recall.
* :mod:`~repro.bench.scalability` — Figure 7: runtime and scan depth vs
  table size and rule count.
* :mod:`~repro.bench.ablation` — Equation-5 reordering costs (Example 5)
  and the pruning-rule ablation.
* :mod:`~repro.bench.comparison` — Tables 2/3 (panda example) and the
  Section 6.1 PT-k / U-TopK / U-KRanks comparison.
"""

from repro.bench.harness import ExperimentTable, measure
from repro.bench.reporting import render_table

__all__ = ["ExperimentTable", "measure", "render_table"]
