"""Ranked, progressive tuple access with scan-depth accounting.

Section 4.4 of the paper assumes tuples satisfying the query predicate can
be retrieved "in batch ... in the ranking order" (e.g. by an adaptation of
the TA algorithm).  :class:`RankedStream` is that abstraction: a cursor
over the ranked list of ``P(T)`` that

* yields tuples one at a time, best first,
* counts how many tuples have been pulled (the *scan depth* reported in
  Figures 4 and 7), and
* lets the exact algorithm stop early once the pruning rules prove that
  no unseen tuple can pass the probability threshold.

The stream materialises the sorted list lazily on first access, standing
in for the ranked index a real DBMS would provide; algorithms only ever
interact with the cursor interface, so swapping in a genuinely external
ranked source requires no algorithm changes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.query.ranking import RankingFunction, by_score


class RankedStream:
    """A cursor over tuples in the ranking order, best first.

    :param tuples: tuples already filtered by the query predicate.
    :param ranking: ranking function; defaults to descending score.
    :param presorted: set True when ``tuples`` is already in ranking
        order, skipping the sort (used by benchmarks that treat "the
        generation of the ranked list as a black box", Section 6.2).
    """

    def __init__(
        self,
        tuples: Sequence[UncertainTuple],
        ranking: Optional[RankingFunction] = None,
        presorted: bool = False,
    ) -> None:
        self.ranking = ranking or by_score()
        if presorted:
            self._ranked: List[UncertainTuple] = list(tuples)
        else:
            self._ranked = self.ranking.order(tuples)
        self._cursor = 0

    @classmethod
    def from_table(
        cls,
        table: UncertainTable,
        ranking: Optional[RankingFunction] = None,
    ) -> "RankedStream":
        """Build a stream over all tuples of ``table``."""
        return cls(list(table), ranking=ranking)

    # ------------------------------------------------------------------
    # Cursor interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total number of tuples behind the stream (``|P(T)|``)."""
        return len(self._ranked)

    @property
    def scan_depth(self) -> int:
        """Number of tuples retrieved so far."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """True when every tuple has been retrieved."""
        return self._cursor >= len(self._ranked)

    def next_tuple(self) -> Optional[UncertainTuple]:
        """Retrieve the next tuple in ranking order, or ``None`` at the end."""
        if self._cursor >= len(self._ranked):
            return None
        tup = self._ranked[self._cursor]
        self._cursor += 1
        return tup

    def peek(self) -> Optional[UncertainTuple]:
        """The next tuple without advancing the cursor (``None`` at end)."""
        if self._cursor >= len(self._ranked):
            return None
        return self._ranked[self._cursor]

    def __iter__(self) -> Iterator[UncertainTuple]:
        while True:
            tup = self.next_tuple()
            if tup is None:
                return
            yield tup

    def rewind(self) -> None:
        """Reset the cursor (scan depth restarts from zero)."""
        self._cursor = 0

    # ------------------------------------------------------------------
    # Whole-list access (for algorithms that need the full ranking)
    # ------------------------------------------------------------------
    def full_ranked_list(self) -> List[UncertainTuple]:
        """The complete ranked list *without* advancing the scan counter.

        Used by the sampler and the alternative-semantics baselines, whose
        cost accounting is separate from the exact algorithm's scan depth.
        """
        return list(self._ranked)
