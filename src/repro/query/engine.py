"""The user-facing query engine facade.

:class:`UncertainDB` is the "database" a downstream application talks
to: it registers named uncertain tables and answers ranking queries
under every semantics the library implements —

* ``ptk`` / ``ptk-sampled`` — the paper's probabilistic threshold top-k,
* ``utopk`` — most probable top-k vector,
* ``ukranks`` — most probable tuple per rank,
* ``global-topk`` — the k tuples of highest top-k probability,

plus raw per-tuple probability reports.  Examples and the Section 6.1
comparison are written against this facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.exact import (
    ExactVariant,
    exact_ptk_query,
    exact_topk_probabilities,
)
from repro.core.results import PTKAnswer
from repro.core.sampling import SamplingConfig, sampled_ptk_query
from repro.dynamic.delta import TableDelta
from repro.exceptions import QueryError, UnknownTableError
from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.obs import query_scope
from repro.query.prepare import PrepareCache
from repro.query.topk import TopKQuery
from repro.semantics.extras import expected_ranks, global_topk
from repro.semantics.ukranks import UKRanksAnswer, ukranks_query
from repro.semantics.utopk import UTopKAnswer, utopk_query


@dataclass
class SemanticsComparison:
    """Answers of all three published semantics on one query (Section 6.1).

    :param ptk: the PT-k answer at the supplied threshold.
    :param utopk: the most probable top-k vector.
    :param ukranks: the per-rank winners.
    :param topk_probabilities: exact ``Pr^k`` of every tuple appearing in
        any of the three answers (the paper's Table 6 view).
    """

    ptk: PTKAnswer
    utopk: UTopKAnswer
    ukranks: UKRanksAnswer
    topk_probabilities: Dict[Any, float]

    def mentioned_tuples(self) -> List[Any]:
        """Every tuple id referenced by at least one of the answers."""
        mentioned: List[Any] = []
        seen = set()
        for tid in (
            list(self.ptk.answers)
            + list(self.utopk.vector)
            + self.ukranks.tuple_ids
        ):
            if tid not in seen:
                seen.add(tid)
                mentioned.append(tid)
        return mentioned


class UncertainDB:
    """A registry of uncertain tables with a query front-end.

    ::

        db = UncertainDB()
        db.register(panda_table())
        answer = db.ptk("panda_sightings", k=2, threshold=0.35)
    """

    def __init__(self) -> None:
        self._tables: Dict[str, UncertainTable] = {}
        self._prepare_cache = PrepareCache()
        self._dynamic: Optional[Any] = None

    @property
    def prepare_cache(self) -> PrepareCache:
        """The table-level prepared-ranking cache (see ``repro.query.prepare``).

        Shared by the exact, sampling, profile, and batch paths; consult
        :meth:`PrepareCache.stats` for hit/miss counters.
        """
        return self._prepare_cache

    @property
    def dynamic(self) -> Optional[Any]:
        """The incremental PT-k index registry, or ``None`` until
        :meth:`enable_dynamic` is called."""
        return self._dynamic

    def enable_dynamic(
        self,
        cap: Optional[int] = None,
        max_backlog: Optional[int] = None,
    ) -> Any:
        """Turn on incremental PT-k maintenance (:mod:`repro.dynamic`).

        Once enabled, every mutation routed through this engine's
        methods (:meth:`add`, :meth:`remove_tuple`, ...) emits a
        :class:`~repro.dynamic.delta.TableDelta` that advances the
        per-table dynamic indexes and refreshes warm prepared rankings
        in place; default-shape :meth:`ptk` reads are answered from the
        maintained index (byte-identical to a cold columnar scan).

        Idempotent: a second call returns the existing registry
        unchanged (``cap`` / ``max_backlog`` are only read on the
        first).

        :param cap: largest ``k`` served incrementally (default
            :data:`repro.dynamic.index.DEFAULT_CAP`).
        :param max_backlog: queued deltas beyond which a read rebuilds
            cold instead of replaying.
        :returns: the :class:`~repro.dynamic.registry.DynamicIndexRegistry`.
        """
        from repro.dynamic.registry import (
            DEFAULT_MAX_BACKLOG,
            DynamicIndexRegistry,
        )
        from repro.dynamic.index import DEFAULT_CAP

        if self._dynamic is None:
            self._dynamic = DynamicIndexRegistry(
                cap=DEFAULT_CAP if cap is None else cap,
                max_backlog=(
                    DEFAULT_MAX_BACKLOG if max_backlog is None else max_backlog
                ),
            )
            for name in self.tables():
                self._dynamic.register(name, self._dynamic_epoch(name))
        return self._dynamic

    def _dynamic_epoch(self, name: str) -> int:
        """The registration epoch deltas for ``name`` are stamped with.

        The in-memory engine has no re-registration history, so every
        table lives in epoch 0; :class:`~repro.durable.db.DurableDB`
        overrides this with its journalled epochs.
        """
        return 0

    def _emit_delta(
        self,
        name: str,
        table: UncertainTable,
        op: str,
        previous_version: int,
        **fields: Any,
    ) -> TableDelta:
        """Publish one committed mutation to the incremental machinery:
        refresh warm prepared rankings in place, then queue the delta
        for the dynamic indexes (if enabled)."""
        delta = TableDelta(
            table=name,
            op=op,
            previous_version=previous_version,
            version=table.version,
            epoch=self._dynamic_epoch(name),
            **fields,
        )
        self._prepare_cache.refresh(table, delta)
        if self._dynamic is not None:
            self._dynamic.enqueue(delta)
        return delta

    # ------------------------------------------------------------------
    # Catalogue
    # ------------------------------------------------------------------
    def register(self, table: UncertainTable, name: Optional[str] = None) -> str:
        """Register a table under ``name`` (default: the table's name).

        :returns: the name the table is registered under.
        :raises QueryError: if the name is already taken.
        """
        key = name or table.name
        if key in self._tables:
            raise QueryError(f"a table named {key!r} is already registered")
        self._tables[key] = table
        # No cache invalidation here: the cache is keyed by table object
        # identity and version, so a previously dropped table's entries
        # are already gone (``drop`` invalidates them) and a table object
        # registered under a second name must keep its warm preparations.
        if self._dynamic is not None:
            self._dynamic.register(key, self._dynamic_epoch(key))
        return key

    def table(self, name: str) -> UncertainTable:
        """Look up a registered table.

        :raises UnknownTableError: when no table is registered under
            ``name``.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no table registered as {name!r}") from None

    def tables(self) -> List[str]:
        """Names of all registered tables."""
        return list(self._tables)

    def drop(self, name: str) -> None:
        """Remove a table from the registry and forget its preparations."""
        table = self.table(name)
        del self._tables[name]
        self._prepare_cache.invalidate(table)
        if self._dynamic is not None:
            self._dynamic.drop(name)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    # The engine-level mutation boundary: inputs are validated by the
    # model layer (probabilities in (0, 1], finite scores, no duplicate
    # ids — all raising MutationError subclasses *before* any state
    # changes), and every committed mutation is published through
    # ``_emit_delta`` so warm preparations and dynamic indexes advance
    # instead of going cold.  DurableDB overrides each method to add
    # WAL journalling on top.

    def add(
        self,
        name: str,
        tid: Any,
        score: float,
        probability: float,
        **attributes: Any,
    ) -> UncertainTuple:
        """Add one tuple to a registered table.

        :raises InvalidProbabilityError: probability outside ``(0, 1]``
            or not finite.
        :raises InvalidScoreError: NaN / infinite / non-numeric score.
        :raises DuplicateTupleError: the id is already present.
        :raises UnknownTableError: no such table.
        """
        table = self.table(name)
        previous = table.version
        tup = table.add(tid, score, probability, **attributes)
        self._emit_delta(
            name,
            table,
            "add",
            previous,
            tid=tid,
            score=tup.score,
            probability=tup.probability,
            attributes=dict(attributes) or None,
        )
        return tup

    def add_rule(self, name: str, rule: GenerationRule) -> None:
        """Attach a multi-tuple generation rule to a registered table."""
        table = self.table(name)
        previous = table.version
        table.add_rule(rule)
        self._emit_delta(
            name,
            table,
            "rule",
            previous,
            rule_id=rule.rule_id,
            members=tuple(rule.tuple_ids),
        )

    def add_exclusive(
        self, name: str, rule_id: Any, *tuple_ids: Any
    ) -> GenerationRule:
        """Convenience wrapper over :meth:`add_rule`."""
        rule = GenerationRule(rule_id=rule_id, tuple_ids=tuple(tuple_ids))
        self.add_rule(name, rule)
        return rule

    def remove_tuple(self, name: str, tid: Any) -> UncertainTuple:
        """Remove one tuple (shrinking its rule, if any)."""
        table = self.table(name)
        previous = table.version
        removed = table.remove_tuple(tid)
        self._emit_delta(name, table, "remove", previous, tid=tid)
        return removed

    def update_probability(
        self, name: str, tid: Any, probability: float
    ) -> UncertainTuple:
        """Replace one tuple's membership probability."""
        table = self.table(name)
        previous = table.version
        updated = table.update_probability(tid, probability)
        self._emit_delta(
            name,
            table,
            "update",
            previous,
            tid=tid,
            probability=updated.probability,
        )
        return updated

    def update_score(self, name: str, tid: Any, score: float) -> UncertainTuple:
        """Replace one tuple's ranking score (it moves in the order)."""
        table = self.table(name)
        previous = table.version
        updated = table.update_score(tid, score)
        self._emit_delta(
            name, table, "score", previous, tid=tid, score=updated.score
        )
        return updated

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def ptk(
        self,
        name: str,
        k: int,
        threshold: float,
        query: Optional[TopKQuery] = None,
        variant: ExactVariant = ExactVariant.RC_LR,
        pruning: bool = True,
    ) -> PTKAnswer:
        """Exact PT-k query against a registered table.

        With :meth:`enable_dynamic` on, a default-shape query (no
        explicit ``query`` object) whose ``k`` fits the registry cap is
        answered from the maintained incremental index: same answer
        set, ``method="dynamic"``, and ``probabilities`` covering every
        tuple (the full-scan shape) — bitwise what a cold columnar scan
        of the current table would compute.
        """
        with query_scope("ptk", table=name, k=k, threshold=threshold):
            if query is None and self._dynamic is not None:
                answer = self._dynamic.answer(
                    name, self.table(name), k, threshold
                )
                if answer is not None:
                    return answer
            return exact_ptk_query(
                self.table(name),
                query or TopKQuery(k=k),
                threshold,
                variant=variant,
                pruning=pruning,
                cache=self._prepare_cache,
            )

    def ptk_sampled(
        self,
        name: str,
        k: int,
        threshold: float,
        query: Optional[TopKQuery] = None,
        config: Optional[SamplingConfig] = None,
    ) -> PTKAnswer:
        """Approximate PT-k query via the sampling method."""
        with query_scope("ptk-sampled", table=name, k=k, threshold=threshold):
            return sampled_ptk_query(
                self.table(name),
                query or TopKQuery(k=k),
                threshold,
                config=config,
                cache=self._prepare_cache,
            )

    def ptk_batch(
        self,
        name: str,
        requests: "List[Tuple[int, float]]",
        ranking=None,
        n_workers: int = 1,
        use_processes: bool = True,
    ) -> List[PTKAnswer]:
        """Several ``(k, threshold)`` PT-k queries sharing one scan.

        Delegates to :func:`repro.core.batch.batch_ptk_queries` with this
        engine's prepare cache, so back-to-back batches on an unchanged
        table skip selection/ranking/rule indexing entirely.

        :param n_workers: ``1`` answers all requests over one serial
            scan; ``> 1`` (or ``0`` for one per CPU) partitions them
            across a process pool sharing one prepared ranking.
        """
        from repro.core.batch import batch_ptk_queries

        with query_scope("ptk-batch", table=name, requests=len(requests)):
            return batch_ptk_queries(
                self.table(name),
                requests,
                ranking=ranking,
                cache=self._prepare_cache,
                n_workers=n_workers,
                use_processes=use_processes,
            )

    def ptk_many(
        self,
        requests: "List[Tuple[str, int, float]]",
        n_workers: Optional[int] = None,
        variant: ExactVariant = ExactVariant.RC_LR,
        pruning: bool = True,
        use_processes: bool = True,
    ) -> List[PTKAnswer]:
        """Independent exact PT-k queries fanned out across workers.

        Each request is a ``(table_name, k, threshold)`` triple; requests
        may span several registered tables.  Every distinct table is
        prepared **once** in the parent — through this engine's prepare
        cache, so the warm entries also serve later queries — and the
        prepared rankings are shared by all workers.  Answers come back
        in request order and are identical to calling :meth:`ptk` per
        request.

        :param n_workers: pool size; ``None``/``0`` means one worker per
            available CPU, ``1`` answers serially in-process.
        :param use_processes: set False to run the partitions inline
            (identical answers, no pool).
        """
        from repro.parallel.fanout import parallel_ptk_queries

        # Preparation is k-independent (keyed by predicate and ranking),
        # so one cache lookup per distinct table covers every request.
        ready: Dict[str, Any] = {}
        for name, k, _ in requests:
            if name not in ready:
                ready[name] = self._prepare_cache.get(
                    self.table(name), TopKQuery(k=k)
                )
        with query_scope(
            "ptk-many", requests=len(requests), tables=len(ready)
        ):
            return parallel_ptk_queries(
                ready,
                requests,
                n_workers=n_workers,
                variant=variant,
                pruning=pruning,
                use_processes=use_processes,
            )

    def utopk(
        self, name: str, k: int, query: Optional[TopKQuery] = None
    ) -> UTopKAnswer:
        """U-TopK query (most probable top-k vector)."""
        with query_scope("utopk", table=name, k=k):
            return utopk_query(self.table(name), query or TopKQuery(k=k))

    def ukranks(
        self, name: str, k: int, query: Optional[TopKQuery] = None
    ) -> UKRanksAnswer:
        """U-KRanks query (most probable tuple per rank)."""
        with query_scope("ukranks", table=name, k=k):
            return ukranks_query(self.table(name), query or TopKQuery(k=k))

    def global_topk(
        self, name: str, k: int, query: Optional[TopKQuery] = None
    ) -> List[Tuple[Any, float]]:
        """Global-Topk: the k tuples of highest top-k probability."""
        with query_scope("global-topk", table=name, k=k):
            return global_topk(self.table(name), query or TopKQuery(k=k))

    def expected_rank_topk(
        self, name: str, k: int, query: Optional[TopKQuery] = None
    ) -> List[Tuple[Any, float]]:
        """Expected-rank top-k (Cormode et al. semantics)."""
        from repro.semantics.expected_rank import expected_rank_topk

        with query_scope("expected-rank", table=name, k=k):
            return expected_rank_topk(self.table(name), query or TopKQuery(k=k))

    def topk_probabilities(
        self, name: str, k: int, query: Optional[TopKQuery] = None
    ) -> Dict[Any, float]:
        """Exact ``Pr^k`` of every tuple satisfying the predicate."""
        with query_scope("topk-probabilities", table=name, k=k):
            return exact_topk_probabilities(
                self.table(name),
                query or TopKQuery(k=k),
                cache=self._prepare_cache,
            )

    def expected_ranks(
        self, name: str, query: Optional[TopKQuery] = None
    ) -> Dict[Any, float]:
        """Conditional expected rank of every tuple (see semantics.extras)."""
        with query_scope("expected-ranks", table=name):
            return expected_ranks(self.table(name), query or TopKQuery(k=1))

    def explain_plan(
        self, name: str, k: int, threshold: float, latency_model=None
    ) -> dict:
        """Planning-time cost report for a PT-k query.

        :param latency_model: an optional
            :class:`repro.query.planner.LatencyModel`; when given (the
            serving layer passes its calibrated one) the report also
            carries the predicted wall-clock latency of the exact scan
            and the predicted cost of one sample unit — the numbers the
            deadline-aware degradation policy compares against a
            request's remaining budget.
        :returns: a dict with the predicted scan depth / fraction (see
            :mod:`repro.query.planner`) and the heuristic exact-vs-
            sampling recommendation.
        """
        from repro.query.planner import (
            choose_method,
            estimate_latency,
            estimate_scan_depth,
        )

        table = self.table(name)
        estimate = estimate_scan_depth(table, k, threshold)
        report = {
            "table": name,
            "n_tuples": len(table),
            "estimated_scan_depth": estimate.depth,
            "estimated_fraction": estimate.fraction,
            "recommended_method": choose_method(table, k, threshold),
        }
        if latency_model is not None:
            latency = estimate_latency(
                table, k, threshold, model=latency_model
            )
            report["predicted_exact_seconds"] = latency.exact_seconds
            report["predicted_seconds_per_sample_unit"] = (
                latency.sampled_seconds_per_unit
            )
            report["expected_sample_unit_length"] = (
                latency.expected_unit_length
            )
        return report

    def compare_semantics(
        self,
        name: str,
        k: int,
        threshold: float,
        query: Optional[TopKQuery] = None,
    ) -> SemanticsComparison:
        """Run PT-k, U-TopK and U-KRanks side by side (the Section 6.1 study)."""
        table = self.table(name)
        query = query or TopKQuery(k=k)
        with query_scope("compare-semantics", table=name, k=k):
            ptk = exact_ptk_query(
                table, query, threshold, cache=self._prepare_cache
            )
            utopk = utopk_query(table, query)
            ukranks = ukranks_query(table, query)
            probabilities = exact_topk_probabilities(
                table, query, cache=self._prepare_cache
            )
        mentioned = (
            set(ptk.answers) | set(utopk.vector) | set(ukranks.tuple_ids)
        )
        return SemanticsComparison(
            ptk=ptk,
            utopk=utopk,
            ukranks=ukranks,
            topk_probabilities={
                tid: probabilities[tid] for tid in mentioned if tid in probabilities
            },
        )
