"""Query substrate: predicates, ranking functions, certain top-k, ranked access.

A PT-k query ``Q^k(P, f)`` (Section 2) consists of a predicate ``P``, a
ranking function ``f``, and a result size ``k``.  This package provides:

* :mod:`~repro.query.predicates` — composable tuple predicates,
* :mod:`~repro.query.ranking` — ranking functions inducing the total order
  ``<=_f`` used throughout the algorithms,
* :mod:`~repro.query.topk` — top-k evaluation over a *certain* set of
  tuples (i.e. over one possible world),
* :mod:`~repro.query.access` — a ranked, progressive tuple stream that
  stands in for TA-style ranked retrieval and records scan depth,
* :mod:`~repro.query.engine` — the user-facing facade tying the model, the
  exact algorithm, the sampler, and the alternative semantics together.
  (Import it as ``repro.query.engine`` — it sits above :mod:`repro.core`,
  so re-exporting it here would create an import cycle.)
"""

from repro.query.access import RankedStream
from repro.query.predicates import (
    AlwaysTrue,
    AttributeEquals,
    AttributePredicate,
    Predicate,
    ScoreAbove,
    ScoreBelow,
)
from repro.query.ranking import RankingFunction, by_attribute, by_score
from repro.query.topk import TopKQuery, top_k_of_world

__all__ = [
    "AlwaysTrue",
    "AttributeEquals",
    "AttributePredicate",
    "Predicate",
    "RankedStream",
    "RankingFunction",
    "ScoreAbove",
    "ScoreBelow",
    "TopKQuery",
    "by_attribute",
    "by_score",
    "top_k_of_world",
]
