"""Prepared rankings: amortising per-query preparation across queries.

Every query path in the library — the exact DP, the sampler, batch
answering, and the top-k probability profile — begins with the same
three steps over the target table:

1. apply the predicate (``P(T)``, Section 4),
2. rank the surviving tuples by the ranking function,
3. index the multi-tuple generation rules (and their ``Pr(R)``).

For a production workload serving many queries against slowly-changing
tables, that preparation dominates small-k query cost and is identical
across requests.  :class:`PreparedRanking` bundles the three products
into one immutable object and :class:`PrepareCache` memoises it per
``(table version, predicate, ranking)``, so repeated queries — exact or
sampled, any k or threshold — pay for selection, sorting, and rule
indexing once.

Correctness relies on two identities:

* tables carry a monotone :attr:`~repro.model.table.UncertainTable.version`
  counter bumped on every mutation, so a stale selection is never served;
* predicates and ranking functions expose structural ``cache_key()``
  identities (falling back to object identity, which cannot be falsely
  shared — the cache entry keeps the keyed objects alive, so their ids
  cannot be recycled while the entry lives).

Tables are held weakly: dropping the last reference to a table frees its
cached preparations.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.obs import OBS, catalogued, span as obs_span
from repro.query.topk import TopKQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.kernel import TableColumns

#: Cached preparations kept per table; oldest evicted first.  Dashboards
#: alternating a handful of predicates/rankings stay fully cached.
DEFAULT_MAX_ENTRIES_PER_TABLE = 8


@dataclass(frozen=True)
class PreparedRanking:
    """Everything query engines need that depends only on (table, P, f).

    :param table: the *selected* table ``P(T)`` (the source table itself
        when the predicate is trivial).
    :param ranked: tuples of the selected table in ranking order, best
        first.
    :param rule_of: tuple id -> multi-tuple generation rule (independent
        tuples omitted).
    :param rule_probability: rule id -> ``Pr(R)``.
    :param source_version: the source table's version when prepared.
    :param predicate: the predicate object this preparation is keyed by
        (held so identity-based cache keys stay unambiguous).
    :param ranking: the ranking function, held for the same reason.
    """

    table: UncertainTable
    ranked: Tuple[UncertainTuple, ...]
    rule_of: Mapping[Any, GenerationRule]
    rule_probability: Mapping[Any, float]
    source_version: int = 0
    predicate: Any = None
    ranking: Any = None

    def ranked_list(self) -> List[UncertainTuple]:
        """The ranked tuples as a fresh list (callers may not mutate it)."""
        return list(self.ranked)

    @cached_property
    def columns(self) -> "TableColumns":
        """The ranked tuples as dense float64/int64 columns.

        Built once per preparation and cached on the instance (a
        ``cached_property`` writes straight into ``__dict__``, which a
        frozen dataclass permits), so every full-scan query against a
        cached preparation shares one columnarisation.  The arrays are
        immutable by convention — consumers, including the columnar
        kernel, only read them.
        """
        from repro.core.kernel import TableColumns

        return TableColumns.from_ranked(self.ranked, self.rule_of)

    def __len__(self) -> int:
        return len(self.ranked)


def prepare_ranking(table: UncertainTable, query: TopKQuery) -> PreparedRanking:
    """Run selection, ranking, and rule indexing for ``query`` on ``table``.

    The uncached building block; most callers go through a
    :class:`PrepareCache` (every :class:`~repro.query.engine.UncertainDB`
    owns one) or pass ``prepared=`` explicitly.
    """
    from repro.core.rule_compression import rule_index_of_table

    with obs_span("query.prepare", table=table.name):
        version = table.version
        selected = query.selected(table)
        ranked = tuple(query.ranking.rank_table(selected))
        rule_of = rule_index_of_table(selected)
        rule_probability: Dict[Any, float] = {}
        for rule in rule_of.values():
            if rule.rule_id not in rule_probability:
                rule_probability[rule.rule_id] = selected.rule_probability(rule)
    return PreparedRanking(
        table=selected,
        ranked=ranked,
        rule_of=rule_of,
        rule_probability=rule_probability,
        source_version=version,
        predicate=query.predicate,
        ranking=query.ranking,
    )


@dataclass
class PrepareCacheStats:
    """Point-in-time counters of one cache (also exported via obs).

    ``hits`` and ``misses`` count within the current *epoch*: a full
    clear (``invalidate(None)`` — e.g. after crash recovery replaces
    every table) zeroes them and bumps ``epoch``, so post-restart
    hit rates never mix measurements from before and after the reset.
    ``invalidations`` stays cumulative over the cache's lifetime.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    entries: int = 0
    epoch: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PrepareCache:
    """Memoises :class:`PreparedRanking` per (table version, P, f).

    Tables are weak keys — a dropped table frees its entries.  Per table,
    at most ``max_entries_per_table`` preparations are retained, evicted
    least-recently-used first; entries for stale versions are purged
    eagerly on the first lookup after a mutation.

    The cache is shared freely across query kinds: an exact PT-k query,
    a sampling run, and a profile scan with the same predicate and
    ranking all hit the same entry.

    All public methods are thread-safe: a threaded server can share one
    :class:`~repro.query.engine.UncertainDB` (and therefore one cache)
    across request handlers.  A single re-entrant lock serialises
    lookups, so at most one preparation is built at a time per cache —
    concurrent readers of a warm entry queue briefly behind a miss
    rather than building the same preparation twice.
    """

    def __init__(
        self, max_entries_per_table: int = DEFAULT_MAX_ENTRIES_PER_TABLE
    ) -> None:
        if max_entries_per_table <= 0:
            raise ValueError(
                f"max_entries_per_table must be positive, "
                f"got {max_entries_per_table}"
            )
        self.max_entries_per_table = max_entries_per_table
        self._by_table: "weakref.WeakKeyDictionary[UncertainTable, OrderedDict]" = (
            weakref.WeakKeyDictionary()
        )
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._epoch = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, table: UncertainTable, query: TopKQuery) -> PreparedRanking:
        """The prepared ranking for ``query`` on ``table`` (built on miss)."""
        with self._lock:
            version = table.version
            key = (query.predicate.cache_key(), query.ranking.cache_key())
            entries = self._by_table.get(table)
            if entries is not None:
                # Purge preparations of older table versions eagerly.
                stale = [
                    k for k, prep in entries.items()
                    if prep.source_version != version
                ]
                for k in stale:
                    del entries[k]
                hit = entries.get(key)
                if hit is not None:
                    entries.move_to_end(key)
                    self._hits += 1
                    if OBS.enabled:
                        catalogued("repro_prepare_cache_hits_total").inc()
                        OBS.flight.note_prepare(hit=True)
                    return hit
            self._misses += 1
            if OBS.enabled:
                catalogued("repro_prepare_cache_misses_total").inc()
                OBS.flight.note_prepare(hit=False)
            prepared = prepare_ranking(table, query)
            if entries is None:
                entries = OrderedDict()
                self._by_table[table] = entries
            entries[key] = prepared
            entries.move_to_end(key)
            while len(entries) > self.max_entries_per_table:
                entries.popitem(last=False)
            return prepared

    def refresh(self, table: UncertainTable, delta: Any) -> int:
        """Advance warm preparations of ``table`` across one committed
        mutation instead of letting version keying condemn them.

        For every cached entry prepared at ``delta.previous_version``
        whose shape :func:`repro.dynamic.refresh.refresh_prepared`
        understands (trivial predicate, rank by score descending), the
        entry is replaced in place by ranked-tuple surgery — the next
        read hits a warm, current-version preparation with no cold
        re-prepare.  Entries the surgery declines fall back to the
        ordinary stale-purge path, so a refresh is never less correct
        than an invalidation, only cheaper.

        :param delta: a :class:`repro.dynamic.delta.TableDelta` already
            applied to ``table``.
        :returns: the number of entries refreshed.
        """
        from repro.dynamic.refresh import DEFAULT_SHAPE_KEY, refresh_prepared

        refreshed = 0
        with self._lock:
            entries = self._by_table.get(table)
            if not entries:
                return 0
            for key, prepared in list(entries.items()):
                if key != DEFAULT_SHAPE_KEY:
                    continue
                if prepared.source_version != delta.previous_version:
                    continue
                replacement = refresh_prepared(prepared, table, delta)
                if replacement is None:
                    continue
                entries[key] = replacement
                refreshed += 1
            if refreshed and OBS.enabled:
                catalogued("repro_prepare_cache_refreshes_total").inc(
                    refreshed
                )
        return refreshed

    # ------------------------------------------------------------------
    # Invalidation and introspection
    # ------------------------------------------------------------------
    def invalidate(self, table: Optional[UncertainTable] = None) -> int:
        """Drop cached preparations; all of them when ``table`` is None.

        Version keying already protects correctness — invalidation exists
        to release memory deterministically (``UncertainDB.drop`` calls
        it) and is counted in ``repro_prepare_cache_invalidations_total``.

        A full clear also starts a new counter *epoch*: hit/miss
        counters reset to zero and ``stats().epoch`` increments, so a
        cache wiped by recovery or a table-set swap reports post-restart
        rates instead of mixing two lifetimes (cumulative invalidation
        counts are unaffected).

        :returns: number of entries dropped.
        """
        with self._lock:
            dropped = 0
            if table is None:
                for entries in self._by_table.values():
                    dropped += len(entries)
                self._by_table.clear()
                self._hits = 0
                self._misses = 0
                self._epoch += 1
            else:
                entries = self._by_table.pop(table, None)
                if entries:
                    dropped = len(entries)
            if dropped:
                self._invalidations += dropped
                if OBS.enabled:
                    catalogued("repro_prepare_cache_invalidations_total").inc(
                        dropped
                    )
            return dropped

    def _purge_stale(self) -> int:
        """Drop entries whose source table has since mutated.

        ``get`` purges lazily per table; counting must not wait for the
        next lookup, or ``stats().entries`` over-reports between a table
        mutation and the next query (and any counters built on it lie).

        :returns: the number of *live* entries remaining.
        """
        live = 0
        for table, entries in list(self._by_table.items()):
            version = table.version
            stale = [
                key for key, prep in entries.items()
                if prep.source_version != version
            ]
            for key in stale:
                del entries[key]
            live += len(entries)
        return live

    def stats(self) -> PrepareCacheStats:
        """Hit/miss/invalidation counters plus the live entry count.

        Stale-version entries are purged before counting, so ``entries``
        reflects what the next lookups can actually serve.
        """
        with self._lock:
            return PrepareCacheStats(
                hits=self._hits,
                misses=self._misses,
                invalidations=self._invalidations,
                entries=self._purge_stale(),
                epoch=self._epoch,
            )

    def __len__(self) -> int:
        with self._lock:
            return self._purge_stale()


def resolve_prepared(
    table: UncertainTable,
    query: TopKQuery,
    prepared: Optional[PreparedRanking] = None,
    cache: Optional[PrepareCache] = None,
) -> PreparedRanking:
    """The standard resolution order used by every query entry point.

    An explicitly supplied ``prepared`` wins; otherwise a ``cache`` is
    consulted (building and storing on miss); otherwise the preparation
    is built from scratch.
    """
    if prepared is not None:
        return prepared
    if cache is not None:
        return cache.get(table, query)
    return prepare_ranking(table, query)
