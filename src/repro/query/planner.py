"""Query planning: predicting PT-k scan depth from table statistics.

Figure 7's headline — scan depth depends on k, not on the table size —
has a quantitative core: the tail stop bound fires at the first prefix
whose membership-probability mass ``M_i = Σ_{j<=i} Pr(t_j)`` makes
``Pr(N <= k)`` fall below the threshold, where ``N`` is the
Poisson-binomial count of the prefix.  By the normal approximation this
happens near

.. math::

    M_D \\approx k + z_p \\sqrt{k}

(with ``z_p`` the threshold's normal quantile and variance bounded by
the mean), so the expected depth is roughly ``(k + z_p sqrt(k)) / μ``
for mean membership probability ``μ``.

:func:`estimate_scan_depth` implements both the cheap closed form and a
more careful per-prefix walk over the actual probabilities (still
O(depth), no DP); the accuracy of each against the measured depth is a
test and a benchmark.  A cost-based optimizer would use this to decide
between the exact algorithm and the sampler — :func:`choose_method`
encodes that heuristic, mirroring the paper's observation that each has
its edge (exact for small k, sampling for large k).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.model.statistics import TableStatistics, collect_statistics
from repro.model.table import UncertainTable
from repro.exceptions import QueryError
from repro.stats.intervals import standard_normal_quantile


@dataclass(frozen=True)
class ScanDepthEstimate:
    """Predicted retrieval cost of a PT-k query.

    :param depth: predicted number of tuples retrieved.
    :param fraction: predicted fraction of ``P(T)`` retrieved.
    :param mass_target: the prefix probability mass at which the tail
        bound is expected to fire (``~ k + z sqrt(k)``).
    """

    depth: int
    fraction: float
    mass_target: float


def _mass_target(k: int, threshold: float) -> float:
    """Prefix mass at which ``Pr(N <= k)`` drops below the threshold."""
    # Pr(N <= k) ~ Phi((k - M)/sqrt(V)) with V <= M, so the bound fires
    # near M ~ k + z * sqrt(k) where z = Phi^{-1}(1 - p).  The quantile
    # must stay *signed*: for p > 0.5 it is negative and the tail bound
    # fires before the prefix mass reaches k — high thresholds prune
    # earlier, not later.
    p = min(max(threshold, 1e-12), 1.0 - 1e-12)
    z = standard_normal_quantile(1.0 - p)
    return k + z * math.sqrt(max(k, 1))


def estimate_scan_depth(
    table: UncertainTable,
    k: int,
    threshold: float,
    statistics: Optional[TableStatistics] = None,
) -> ScanDepthEstimate:
    """Closed-form scan-depth prediction from summary statistics.

    Uses only the mean membership probability (catalog information) —
    deliberately *not* the ranked list — so it is a planning-time
    estimate.
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    if not (0.0 < threshold <= 1.0):
        raise QueryError(
            f"probability threshold must be in (0, 1], got {threshold!r}"
        )
    statistics = statistics or collect_statistics(table)
    n = statistics.n_tuples
    if n == 0:
        return ScanDepthEstimate(depth=0, fraction=0.0, mass_target=0.0)
    target = _mass_target(k, threshold)
    mean = max(statistics.mean_probability, 1e-9)
    # At extreme thresholds the target can drop to (or below) zero — the
    # scan still retrieves at least one tuple before any bound can fire.
    depth = min(n, max(1, int(math.ceil(target / mean))))
    return ScanDepthEstimate(
        depth=depth, fraction=depth / n, mass_target=target
    )


def estimate_scan_depth_exactish(
    table: UncertainTable,
    k: int,
    threshold: float,
) -> ScanDepthEstimate:
    """Per-prefix refinement: walk the actual ranked probabilities.

    Still O(depth) and DP-free: accumulates the true prefix mass and
    stops at the first prefix reaching the mass target.  More accurate
    than the closed form when membership probabilities correlate with
    rank (as in the iceberg data).
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    if not (0.0 < threshold <= 1.0):
        raise QueryError(
            f"probability threshold must be in (0, 1], got {threshold!r}"
        )
    ranked = table.ranked_tuples()
    n = len(ranked)
    if n == 0:
        return ScanDepthEstimate(depth=0, fraction=0.0, mass_target=0.0)
    target = _mass_target(k, threshold)
    mass = 0.0
    for depth, tup in enumerate(ranked, start=1):
        mass += tup.probability
        if mass >= target:
            return ScanDepthEstimate(
                depth=depth, fraction=depth / n, mass_target=target
            )
    return ScanDepthEstimate(depth=n, fraction=1.0, mass_target=target)


@dataclass(frozen=True)
class LatencyEstimate:
    """Planning-time wall-clock prediction for one PT-k query.

    :param depth: predicted exact-scan depth (see
        :class:`ScanDepthEstimate`).
    :param exact_seconds: predicted exact-algorithm latency.
    :param sampled_seconds_per_unit: predicted cost of one sample unit
        (used to size a budget from a deadline).
    :param expected_unit_length: predicted tuples scanned per lazy
        sample unit (``~ k / mean membership probability``).
    """

    depth: int
    exact_seconds: float
    sampled_seconds_per_unit: float
    expected_unit_length: float


class LatencyModel:
    """Maps the planner's cost units to wall-clock seconds.

    The paper's cost measure for the exact algorithm is the number of
    O(k) subset-probability DP extensions — quadratic in the scan depth
    in the worst case — and for the sampler it is ``budget * sample
    length``.  This model carries the two machine-dependent coefficients
    that turn those unit counts into seconds, plus a fixed per-query
    floor (dispatch, selection bookkeeping).

    The defaults are deliberately conservative (a slowish core); callers
    serving real traffic should let the model *calibrate itself* by
    feeding measured latencies back via :meth:`observe_exact` /
    :meth:`observe_sampled` — both update the coefficient with an
    exponentially weighted moving average, so the model tracks the
    hardware it actually runs on within a few dozen queries.

    Thread safety: updates are single numeric-slot writes guarded by the
    GIL; a torn read is impossible and a lost update merely slows
    convergence, so no lock is taken on the hot path.
    """

    #: EWMA weight of each new observation.
    alpha = 0.2

    def __init__(
        self,
        seconds_per_cell: float = 2e-7,
        seconds_per_sampled_tuple: float = 1e-7,
        floor_seconds: float = 2e-4,
    ) -> None:
        self.seconds_per_cell = seconds_per_cell
        self.seconds_per_sampled_tuple = seconds_per_sampled_tuple
        self.floor_seconds = floor_seconds

    # -------------------------------------------------------- prediction
    def predict_exact_seconds(self, depth: int) -> float:
        """Predicted exact latency from a scan-depth estimate."""
        cells = float(max(depth, 1)) ** 2
        return self.floor_seconds + self.seconds_per_cell * cells

    def predict_resume_seconds(
        self, done_depth: int, target_depth: int
    ) -> float:
        """Predicted *remaining* latency of a checkpointed exact scan.

        A scan cut off at ``done_depth`` has already paid for the
        ``done_depth^2`` DP-cell prefix; finishing to ``target_depth``
        costs only the difference of squares.  The serving layer's
        scheduler prices a resume with this instead of the full
        ``predict_exact_seconds`` so checkpointed work is correctly
        cheaper than restarting.
        """
        done = float(max(done_depth, 0)) ** 2
        target = float(max(target_depth, 1)) ** 2
        return self.floor_seconds + self.seconds_per_cell * max(
            target - done, 0.0
        )

    def predict_sampled_seconds(
        self, budget: int, unit_length: float
    ) -> float:
        """Predicted sampler latency for a unit budget."""
        return self.floor_seconds + (
            self.seconds_per_sampled_tuple * max(unit_length, 1.0) * budget
        )

    def unit_budget_for(self, seconds: float, unit_length: float) -> int:
        """Largest unit budget predicted to finish within ``seconds``.

        Returns 0 when even the floor cost does not fit — the caller
        must reject rather than degrade.
        """
        available = seconds - self.floor_seconds
        if available <= 0:
            return 0
        per_unit = self.seconds_per_sampled_tuple * max(unit_length, 1.0)
        return int(available / max(per_unit, 1e-12))

    def coefficients(self) -> dict:
        """The current (possibly EWMA-calibrated) cost coefficients.

        Exposed by the serving layer's ``/debug/calibration`` endpoint so
        operators can see what the model has converged to.
        """
        return {
            "seconds_per_cell": self.seconds_per_cell,
            "seconds_per_sampled_tuple": self.seconds_per_sampled_tuple,
            "floor_seconds": self.floor_seconds,
            "alpha": self.alpha,
        }

    # ------------------------------------------------------- calibration
    def observe_exact(self, depth: int, seconds: float) -> None:
        """Fold one measured exact query into the cost coefficient."""
        cells = float(max(depth, 1)) ** 2
        measured = max(seconds - self.floor_seconds, 0.0) / cells
        if measured > 0.0:
            self.seconds_per_cell += self.alpha * (
                measured - self.seconds_per_cell
            )

    def observe_sampled(
        self, units: int, unit_length: float, seconds: float
    ) -> None:
        """Fold one measured sampling run into the cost coefficient."""
        scanned = max(units, 1) * max(unit_length, 1.0)
        measured = max(seconds - self.floor_seconds, 0.0) / scanned
        if measured > 0.0:
            self.seconds_per_sampled_tuple += self.alpha * (
                measured - self.seconds_per_sampled_tuple
            )


def estimate_latency(
    table: UncertainTable,
    k: int,
    threshold: float,
    model: Optional[LatencyModel] = None,
    statistics: Optional[TableStatistics] = None,
) -> LatencyEstimate:
    """Depth -> latency prediction used by the serving layer.

    Combines :func:`estimate_scan_depth` with a :class:`LatencyModel`:
    the exact path costs ``~ depth^2`` DP-cell touches, a sample unit
    costs ``~ k / mu`` scanned tuples (the lazy generation length of
    Section 5).  ``repro.serve`` compares ``exact_seconds`` against a
    request's remaining deadline to decide whether to degrade to the
    sampler, and sizes the sampler's budget from
    ``sampled_seconds_per_unit``.
    """
    model = model or LatencyModel()
    statistics = statistics or collect_statistics(table)
    estimate = estimate_scan_depth(table, k, threshold, statistics=statistics)
    mean = max(statistics.mean_probability, 1e-9)
    unit_length = min(float(max(statistics.n_tuples, 1)), k / mean)
    return LatencyEstimate(
        depth=estimate.depth,
        exact_seconds=model.predict_exact_seconds(estimate.depth),
        sampled_seconds_per_unit=(
            model.seconds_per_sampled_tuple * max(unit_length, 1.0)
        ),
        expected_unit_length=unit_length,
    )


def choose_method(
    table: UncertainTable,
    k: int,
    threshold: float,
    sample_budget: int = 1107,
    statistics: Optional[TableStatistics] = None,
) -> str:
    """Heuristic exact-vs-sampling choice (the paper's "each has its edge").

    Exact cost grows superlinearly in the scan depth (depth * average
    dominant-set work); sampling cost is ``budget * expected sample
    length`` with sample length ~ depth.  The crossover therefore sits
    where depth exceeds roughly the sample budget; below it the exact
    algorithm's single deep scan is cheaper than a thousand shallow ones.

    :returns: ``"exact"`` or ``"sampling"``.
    """
    estimate = estimate_scan_depth(table, k, threshold, statistics=statistics)
    # exact work ~ depth^2 DP-unit touches; sampling ~ budget * depth
    exact_cost = float(estimate.depth) ** 2
    sampling_cost = float(sample_budget) * max(estimate.depth, 1)
    return "exact" if exact_cost <= sampling_cost else "sampling"


def depth_curve(
    table: UncertainTable,
    ks: List[int],
    threshold: float,
) -> List[ScanDepthEstimate]:
    """Estimates across several k values (planning diagnostics)."""
    statistics = collect_statistics(table)
    return [
        estimate_scan_depth(table, k, threshold, statistics=statistics)
        for k in ks
    ]
