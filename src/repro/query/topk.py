"""Top-k queries over certain data — the per-world primitive.

``Q^k(W)`` (Section 2) applies an ordinary top-k query to one possible
world ``W``: rank the world's tuples by ``f`` and keep the best ``k``.
:class:`TopKQuery` bundles the predicate, ranking function and ``k`` of a
query; the PT-k, U-TopK and U-KRanks engines all consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.exceptions import QueryError
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.query.predicates import AlwaysTrue, Predicate
from repro.query.ranking import RankingFunction, by_score


@dataclass
class TopKQuery:
    """A top-k query ``Q^k(P, f)``.

    :param k: result size; must be positive.
    :param predicate: tuple selection ``P``; defaults to all tuples.
    :param ranking: ranking function ``f``; defaults to descending score.
    """

    k: int
    predicate: Predicate = field(default_factory=AlwaysTrue)
    ranking: RankingFunction = field(default_factory=by_score)

    def __post_init__(self) -> None:
        if not isinstance(self.k, int) or isinstance(self.k, bool) or self.k <= 0:
            raise QueryError(f"k must be a positive integer, got {self.k!r}")

    def selected(self, table: UncertainTable) -> UncertainTable:
        """``P(T)``: the table projected onto tuples satisfying ``P``.

        Generation rules are projected alongside (Section 4).  The
        trivial predicate short-circuits: the table itself is returned
        (callers must not mutate query inputs, so sharing is safe).
        """
        if isinstance(self.predicate, AlwaysTrue):
            return table
        return self.filter_table(table)

    def filter_table(self, table: UncertainTable) -> UncertainTable:
        """Alias of :meth:`selected`, kept for readability at call sites."""
        return table.filter(self.predicate, name=f"{table.name}_P")

    def ranked_list(self, table: UncertainTable) -> List[UncertainTuple]:
        """All tuples of ``P(table)`` in the ranking order, best first."""
        return self.ranking.rank_table(self.selected(table))

    def answer_on_world(
        self, tuples: Sequence[UncertainTuple]
    ) -> List[UncertainTuple]:
        """``Q^k(W)``: the top-k tuples among a certain set of tuples.

        The predicate is applied, tuples are ranked by ``f`` and the best
        ``k`` are returned (fewer when the world is small).
        """
        passing = [t for t in tuples if self.predicate(t)]
        return self.ranking.order(passing)[: self.k]


def top_k_of_world(
    tuples: Sequence[UncertainTuple],
    k: int,
    ranking: Optional[RankingFunction] = None,
) -> List[UncertainTuple]:
    """Standalone ``Q^k(W)`` helper with the trivial predicate."""
    query = TopKQuery(k=k, ranking=ranking or by_score())
    return query.answer_on_world(tuples)


def top_k_ids_of_world(
    tuples: Sequence[UncertainTuple],
    k: int,
    ranking: Optional[RankingFunction] = None,
) -> List[Any]:
    """Ids of the top-k tuples of one world, ranking order preserved."""
    return [t.tid for t in top_k_of_world(tuples, k, ranking)]
