"""Composable predicates over uncertain tuples.

The predicate ``P`` of a PT-k query selects which tuples participate in
the ranking at all: the query is answered over ``P(T)`` (Section 4).
Predicates here are small callable objects supporting ``&``, ``|`` and
``~`` composition, so benchmark and example code can build selections
declaratively::

    pred = ScoreAbove(10) & AttributeEquals("location", "B")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.model.tuples import UncertainTuple


class Predicate:
    """Base class for tuple predicates.

    Subclasses implement :meth:`__call__`.  Instances compose with the
    bitwise operators: ``p & q`` (and), ``p | q`` (or), ``~p`` (not).
    """

    def __call__(self, tup: UncertainTuple) -> bool:  # pragma: no cover
        raise NotImplementedError

    def cache_key(self) -> tuple:
        """Hashable identity for prepared-ranking cache lookups.

        Two predicates sharing a cache key must select exactly the same
        tuples.  Structural predicates override this; the fallback is
        object identity, which is never falsely shared.
        """
        return ("instance", id(self))

    def __and__(self, other: "Predicate") -> "Predicate":
        return _And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return _Or(self, other)

    def __invert__(self) -> "Predicate":
        return _Not(self)


@dataclass
class _And(Predicate):
    left: Predicate
    right: Predicate

    def __call__(self, tup: UncertainTuple) -> bool:
        return self.left(tup) and self.right(tup)

    def cache_key(self) -> tuple:
        return ("and", self.left.cache_key(), self.right.cache_key())


@dataclass
class _Or(Predicate):
    left: Predicate
    right: Predicate

    def __call__(self, tup: UncertainTuple) -> bool:
        return self.left(tup) or self.right(tup)

    def cache_key(self) -> tuple:
        return ("or", self.left.cache_key(), self.right.cache_key())


@dataclass
class _Not(Predicate):
    inner: Predicate

    def __call__(self, tup: UncertainTuple) -> bool:
        return not self.inner(tup)

    def cache_key(self) -> tuple:
        return ("not", self.inner.cache_key())


class AlwaysTrue(Predicate):
    """The trivial predicate; selects every tuple.

    This is the default of :class:`repro.query.topk.TopKQuery` and matches
    the synthetic experiments of Section 6.2, where "all tuples satisfy
    the predicates in the top-k queries".
    """

    def __call__(self, tup: UncertainTuple) -> bool:
        return True

    def cache_key(self) -> tuple:
        return ("always",)


@dataclass
class ScoreAbove(Predicate):
    """Selects tuples whose ranking score is strictly above ``threshold``."""

    threshold: float

    def __call__(self, tup: UncertainTuple) -> bool:
        return tup.score > self.threshold

    def cache_key(self) -> tuple:
        return ("score-above", self.threshold)


@dataclass
class ScoreBelow(Predicate):
    """Selects tuples whose ranking score is strictly below ``threshold``."""

    threshold: float

    def __call__(self, tup: UncertainTuple) -> bool:
        return tup.score < self.threshold

    def cache_key(self) -> tuple:
        return ("score-below", self.threshold)


@dataclass
class AttributeEquals(Predicate):
    """Selects tuples whose attribute ``name`` equals ``value``.

    Tuples lacking the attribute are rejected.
    """

    name: str
    value: Any

    def __call__(self, tup: UncertainTuple) -> bool:
        sentinel = object()
        return tup.attributes.get(self.name, sentinel) == self.value

    def cache_key(self) -> tuple:
        value = self.value if isinstance(self.value, (str, int, float, bool, type(None))) else ("instance", id(self.value))
        return ("attr-equals", self.name, value)


@dataclass
class AttributePredicate(Predicate):
    """Selects tuples for which ``test(attributes[name])`` holds.

    Tuples lacking the attribute are rejected (no exception is raised),
    which makes heterogeneous tables safe to filter.
    """

    name: str
    test: Callable[[Any], bool]

    def __call__(self, tup: UncertainTuple) -> bool:
        if self.name not in tup.attributes:
            return False
        return bool(self.test(tup.attributes[self.name]))
