"""Ranking functions and the total order ``<=_f`` over tuples.

The paper assumes the ranking function induces a *total* order on tuples.
Real attributes can tie, so :class:`RankingFunction` breaks ties
deterministically by stringified tuple id; this makes every algorithm in
the library reproducible and makes the naive possible-world enumerator
agree exactly with the fast algorithms.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple


class RankingFunction:
    """A ranking function ``f`` inducing a total order, best-first.

    :param key: extracts the numeric score of a tuple.  Higher is better
        when ``descending`` (the default, matching "longest duration" /
        "most drifted days" in the paper); lower is better otherwise.
    :param descending: sort direction.
    :param name: label used in reports.
    :param cache_key: optional hashable identity used by the prepared-
        ranking cache (:mod:`repro.query.prepare`).  Two ranking
        functions sharing a cache key must order any tuple sequence
        identically; the factories below supply structural keys, while
        hand-built instances default to object identity (safe, never
        falsely shared).
    """

    def __init__(
        self,
        key: Callable[[UncertainTuple], float],
        descending: bool = True,
        name: str = "score",
        cache_key: Optional[Tuple] = None,
    ) -> None:
        self._key = key
        self.descending = descending
        self.name = name
        self._cache_key = cache_key

    def cache_key(self) -> Tuple:
        """Hashable identity for prepared-ranking cache lookups."""
        if self._cache_key is not None:
            return self._cache_key
        return ("instance", id(self))

    def score(self, tup: UncertainTuple) -> float:
        """The raw ranking score of ``tup``."""
        return self._key(tup)

    def sort_key(self, tup: UncertainTuple) -> Tuple[float, str]:
        """A sortable key: primary by score, tie-broken by tuple id."""
        value = self._key(tup)
        primary = -value if self.descending else value
        return (primary, str(tup.tid))

    #: Below this size the plain python sort wins (no numpy dispatch).
    _VECTORIZED_SORT_MIN = 2048

    def order(self, tuples: Sequence[UncertainTuple]) -> List[UncertainTuple]:
        """Sort ``tuples`` into the ranking order, best first.

        Large inputs take a vectorized path: one ``lexsort`` over a
        float64 score column and a stringified-tid tie-break column —
        the exact relation ``sort_key`` induces (numpy ``<U``
        comparison is code-point order, same as python strings, and
        lexsort is stable) — instead of a python comparison sort over
        tuple keys.
        """
        if len(tuples) >= self._VECTORIZED_SORT_MIN:
            permutation = self._vectorized_order(tuples)
            if permutation is not None:
                return [tuples[i] for i in permutation]
        return sorted(tuples, key=self.sort_key)

    def _vectorized_order(self, tuples: Sequence[UncertainTuple]):
        """Ranking permutation via the columnar kernel; None = fall back."""
        import numpy as np

        from repro.core.kernel import ranked_order

        try:
            scores = np.fromiter(
                (self._key(t) for t in tuples),
                dtype=np.float64,
                count=len(tuples),
            )
        except (TypeError, ValueError):
            return None  # non-numeric scores: python sort handles them
        if np.isnan(scores).any():
            return None  # NaN ordering differs between numpy and python
        if not self.descending:
            scores = -scores
        return ranked_order(scores, [t.tid for t in tuples])

    def rank_table(self, table: UncertainTable) -> List[UncertainTuple]:
        """All tuples of ``table`` in the ranking order, best first."""
        return self.order(list(table))

    def prefers(self, a: UncertainTuple, b: UncertainTuple) -> bool:
        """True if ``a`` is ranked strictly higher than ``b`` (``a <_f b``)."""
        return self.sort_key(a) < self.sort_key(b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        direction = "desc" if self.descending else "asc"
        return f"RankingFunction({self.name!r}, {direction})"


def by_score(descending: bool = True) -> RankingFunction:
    """Rank by the tuple's built-in ``score`` attribute (the default)."""
    return RankingFunction(
        lambda t: t.score,
        descending=descending,
        name="score",
        cache_key=("score", descending),
    )


def by_attribute(name: str, descending: bool = True) -> RankingFunction:
    """Rank by a named attribute in each tuple's attribute mapping.

    :raises KeyError: at sort time, if some tuple lacks the attribute.
    """
    return RankingFunction(
        lambda t: t.attributes[name],
        descending=descending,
        name=name,
        cache_key=("attribute", name, descending),
    )


def by_probability(descending: bool = True) -> RankingFunction:
    """Rank by membership probability (useful for diagnostics and extras)."""
    return RankingFunction(
        lambda t: t.probability,
        descending=descending,
        name="probability",
        cache_key=("probability", descending),
    )


def rank_positions(
    ranking: RankingFunction, tuples: Sequence[UncertainTuple]
) -> dict:
    """Map each tuple id to its 0-based position in the ranking order."""
    ordered = ranking.order(tuples)
    return {tup.tid: index for index, tup in enumerate(ordered)}
