"""A small predicate expression language for the CLI and scripts.

Grammar (case-insensitive keywords)::

    expr     := or_expr
    or_expr  := and_expr ("or" and_expr)*
    and_expr := not_expr ("and" not_expr)*
    not_expr := "not" not_expr | "(" expr ")" | comparison
    comparison := field op literal
    field    := "score" | "probability" | identifier  (identifier = attribute)
    op       := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
    literal  := number | quoted string | bareword

Examples::

    score > 10
    score > 10 and probability >= 0.5
    location = 'B' or (score <= 3 and not source = "SAT-H")

Parses to the composable :class:`~repro.query.predicates.Predicate`
objects the query layer already uses, so parsed predicates behave
identically to hand-built ones (including rule projection).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.exceptions import QueryError
from repro.model.tuples import UncertainTuple
from repro.query.predicates import Predicate

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(
        (?P<number>-?\d+\.?\d*([eE][-+]?\d+)?)
      | (?P<string>'[^']*'|"[^"]*")
      | (?P<op><=|>=|==|!=|=|<|>)
      | (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<word>[A-Za-z_][A-Za-z_0-9.-]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not"}


@dataclass(frozen=True)
class _Token:
    kind: str
    value: Any


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QueryError(
                f"cannot tokenize predicate at: {remainder[:30]!r}"
            )
        position = match.end()
        if match.group("number") is not None:
            tokens.append(_Token("literal", float(match.group("number"))))
        elif match.group("string") is not None:
            tokens.append(_Token("literal", match.group("string")[1:-1]))
        elif match.group("op") is not None:
            tokens.append(_Token("op", match.group("op")))
        elif match.group("lparen") is not None:
            tokens.append(_Token("lparen", "("))
        elif match.group("rparen") is not None:
            tokens.append(_Token("rparen", ")"))
        else:
            word = match.group("word")
            lowered = word.lower()
            if lowered in _KEYWORDS:
                tokens.append(_Token(lowered, lowered))
            else:
                tokens.append(_Token("word", word))
    return tokens


@dataclass
class _Comparison(Predicate):
    """A single ``field op literal`` comparison."""

    field_name: str
    op: str
    literal: Any

    def _value_of(self, tup: UncertainTuple):
        if self.field_name == "score":
            return tup.score
        if self.field_name == "probability":
            return tup.probability
        sentinel = object()
        value = tup.attributes.get(self.field_name, sentinel)
        return None if value is sentinel else value

    def __call__(self, tup: UncertainTuple) -> bool:
        value = self._value_of(tup)
        if value is None:
            return False
        literal = self.literal
        # numeric comparison against numeric-looking attribute strings
        if isinstance(literal, float) and isinstance(value, str):
            try:
                value = float(value)
            except ValueError:
                return False
        try:
            if self.op in ("=", "=="):
                return value == literal
            if self.op == "!=":
                return value != literal
            if self.op == "<":
                return value < literal
            if self.op == "<=":
                return value <= literal
            if self.op == ">":
                return value > literal
            if self.op == ">=":
                return value >= literal
        except TypeError:
            return False
        raise QueryError(f"unknown operator {self.op!r}")  # pragma: no cover


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._position = 0

    def _peek(self) -> Optional[_Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of predicate expression")
        self._position += 1
        return token

    def parse(self) -> Predicate:
        predicate = self._or_expr()
        if self._peek() is not None:
            raise QueryError(
                f"unexpected trailing token {self._peek().value!r}"
            )
        return predicate

    def _or_expr(self) -> Predicate:
        left = self._and_expr()
        while self._peek() is not None and self._peek().kind == "or":
            self._advance()
            left = left | self._and_expr()
        return left

    def _and_expr(self) -> Predicate:
        left = self._not_expr()
        while self._peek() is not None and self._peek().kind == "and":
            self._advance()
            left = left & self._not_expr()
        return left

    def _not_expr(self) -> Predicate:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of predicate expression")
        if token.kind == "not":
            self._advance()
            return ~self._not_expr()
        if token.kind == "lparen":
            self._advance()
            inner = self._or_expr()
            closing = self._advance()
            if closing.kind != "rparen":
                raise QueryError("expected ')' in predicate expression")
            return inner
        return self._comparison()

    def _comparison(self) -> Predicate:
        field_token = self._advance()
        if field_token.kind != "word":
            raise QueryError(
                f"expected a field name, got {field_token.value!r}"
            )
        op_token = self._advance()
        if op_token.kind != "op":
            raise QueryError(
                f"expected a comparison operator after "
                f"{field_token.value!r}, got {op_token.value!r}"
            )
        literal_token = self._advance()
        if literal_token.kind == "word":
            literal: Any = literal_token.value  # bareword string
        elif literal_token.kind == "literal":
            literal = literal_token.value
        else:
            raise QueryError(
                f"expected a literal after {op_token.value!r}, got "
                f"{literal_token.value!r}"
            )
        return _Comparison(
            field_name=field_token.value, op=op_token.value, literal=literal
        )


def parse_predicate(text: str) -> Predicate:
    """Parse a predicate expression into a :class:`Predicate`.

    :raises QueryError: on any syntax error (message points at the
        offending token).
    """
    tokens = _tokenize(text)
    if not tokens:
        raise QueryError("empty predicate expression")
    return _Parser(tokens).parse()
