"""Answer-set monitoring over a sliding window: deltas and alerts.

Surveillance applications rarely want the full answer on every arrival —
they want to know *what changed*: which records just became credible
top-k members and which dropped out.  :class:`PTKMonitor` computes that
delta after each arrival.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, List, Optional, Set

from repro.model.tuples import UncertainTuple
from repro.obs import OBS, catalogued
from repro.stream.window import SlidingWindowPTK


@dataclass(frozen=True)
class AnswerDelta:
    """Change of the PT-k answer set caused by one arrival.

    :param arrival: id of the tuple that arrived.
    :param entered: tuple ids that joined the answer set.
    :param left: tuple ids that dropped out (expired or displaced).
    :param answer_size: size of the answer set after the arrival.
    """

    arrival: Any
    entered: frozenset = field(default_factory=frozenset)
    left: frozenset = field(default_factory=frozenset)
    answer_size: int = 0

    @property
    def changed(self) -> bool:
        """True when the answer set is different from before."""
        return bool(self.entered or self.left)


class PTKMonitor:
    """Emits an :class:`AnswerDelta` for every tuple fed to the window.

    :param window: the sliding window to monitor (owned by the caller;
        feed tuples through :meth:`observe`, not ``window.append``).

    ::

        monitor = PTKMonitor(SlidingWindowPTK(k=5, threshold=0.5,
                                              window_size=500))
        for reading in stream:
            delta = monitor.observe(reading, rule_tag=...)
            if delta.changed:
                alert(delta)
    """

    def __init__(self, window: SlidingWindowPTK) -> None:
        self.window = window
        self._current: Set[Any] = set(window.answer().answer_set) if len(window) else set()
        self._history: List[AnswerDelta] = []

    def observe(
        self, tup: UncertainTuple, rule_tag: Optional[Any] = None
    ) -> AnswerDelta:
        """Feed one arrival and return the resulting answer delta."""
        obs_on = OBS.enabled
        advance_timer = (
            catalogued("repro_stream_advance_seconds").time()
            if obs_on
            else nullcontext()
        )
        # ``with`` guarantees the timer closes even when the append is
        # rejected (duplicate id, over-full rule tag); a leaked timer
        # context would silently drop every later observation.
        with advance_timer:
            self.window.append(tup, rule_tag=rule_tag)
            new_answer = self.window.answer().answer_set
        delta = AnswerDelta(
            arrival=tup.tid,
            entered=frozenset(new_answer - self._current),
            left=frozenset(self._current - new_answer),
            answer_size=len(new_answer),
        )
        if obs_on:
            catalogued("repro_stream_arrivals_total").inc()
            churn = catalogued("repro_stream_answer_churn_total")
            churn.inc(len(delta.entered), direction="entered")
            churn.inc(len(delta.left), direction="left")
        self._current = set(new_answer)
        # History records *changes*, not arrivals: a burst that never
        # perturbs the answer set must not accumulate empty deltas (the
        # whole point of monitoring is that quiet periods are free).
        if delta.changed:
            self._history.append(delta)
        return delta

    @property
    def current_answer(self) -> Set[Any]:
        """The answer set after the last observed arrival."""
        return set(self._current)

    @property
    def history(self) -> List[AnswerDelta]:
        """Every *answer-changing* delta so far, in arrival order.

        Arrivals that leave the answer set untouched are still returned
        by :meth:`observe` (with ``changed == False``) but are not
        recorded, so history length tracks answer churn, not stream
        length.
        """
        return list(self._history)

    def churn(self) -> int:
        """Total membership changes across the observed stream."""
        return sum(len(d.entered) + len(d.left) for d in self._history)
