"""Streaming PT-k: sliding windows over uncertain tuple streams.

The paper's motivating applications — sensor surveillance, object
tracking — are *streams*: records arrive continuously and analysts care
about the top-k over a recent window.  This subpackage extends the
static PT-k machinery to that setting (in the spirit of the authors'
follow-up work on continuous probabilistic queries):

* :class:`~repro.stream.window.SlidingWindowPTK` — a count-based
  sliding window of uncertain tuples with rule support; the PT-k answer
  over the current window is computed on demand with the exact RC+LR
  engine and cached until the window changes.
* :class:`~repro.stream.monitor.PTKMonitor` — wraps a window and emits
  an :class:`~repro.stream.monitor.AnswerDelta` (entered / left the
  answer set) after every arrival, for alerting-style applications.
"""

from repro.stream.monitor import AnswerDelta, PTKMonitor
from repro.stream.window import SlidingWindowPTK

__all__ = ["AnswerDelta", "PTKMonitor", "SlidingWindowPTK"]
