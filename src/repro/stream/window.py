"""Count-based sliding windows of uncertain tuples.

A :class:`SlidingWindowPTK` holds the most recent ``window_size`` tuples
of a stream.  Each arriving tuple may carry a *rule tag*: tuples sharing
a tag inside the window are mutually exclusive, exactly like a
generation rule (e.g. co-located detections of one object).  When a
tuple expires from the window it simply leaves its rule; the surviving
members keep their membership probabilities (their exclusiveness
constraint still holds pairwise).

Answers are computed lazily: the window keeps a version counter, and
:meth:`answer` re-runs the exact RC+LR engine only when the window has
changed since the cached answer.  For window sizes in the tens of
thousands this costs milliseconds thanks to the pruning rules (scan
depth tracks k, not the window size).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.core.exact import ExactVariant, exact_ptk_query
from repro.core.results import PTKAnswer
from repro.exceptions import QueryError, ValidationError
from repro.model.table import UncertainTable
from repro.model.tuples import PROBABILITY_ATOL, UncertainTuple
from repro.query.ranking import RankingFunction, by_score
from repro.query.topk import TopKQuery


class SlidingWindowPTK:
    """A PT-k query continuously evaluated over a sliding window.

    :param k: top-k size.
    :param threshold: probability threshold p.
    :param window_size: number of most recent tuples retained.
    :param ranking: ranking function (default: descending score).
    :param variant: exact-algorithm variant used for evaluation.

    Usage::

        window = SlidingWindowPTK(k=5, threshold=0.5, window_size=1000)
        for reading in stream:
            window.append(reading, rule_tag=reading_group(reading))
            answer = window.answer()     # cached between arrivals
    """

    def __init__(
        self,
        k: int,
        threshold: float,
        window_size: int,
        ranking: Optional[RankingFunction] = None,
        variant: ExactVariant = ExactVariant.RC_LR,
    ) -> None:
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        if not (0.0 < threshold <= 1.0):
            raise QueryError(
                f"probability threshold must be in (0, 1], got {threshold!r}"
            )
        if window_size <= 0:
            raise QueryError(f"window_size must be positive, got {window_size}")
        self.k = k
        self.threshold = threshold
        self.window_size = window_size
        self.ranking = ranking or by_score()
        self.variant = variant
        self._window: Deque[Tuple[UncertainTuple, Optional[Any]]] = deque()
        self._rule_mass: Dict[Any, float] = {}
        self._rule_live: Dict[Any, int] = {}
        self._seen_ids: Dict[Any, int] = {}
        self._version = 0
        self._cached_version = -1
        self._cached_answer: Optional[PTKAnswer] = None
        self._arrivals = 0

    # ------------------------------------------------------------------
    # Stream side
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._window)

    @property
    def arrivals(self) -> int:
        """Total tuples ever appended (including expired ones)."""
        return self._arrivals

    def append(
        self, tup: UncertainTuple, rule_tag: Optional[Any] = None
    ) -> None:
        """Add a tuple to the window, evicting the oldest when full.

        :param rule_tag: tuples sharing a tag are mutually exclusive
            while they coexist in the window.
        :raises ValidationError: when a duplicate live tuple id arrives,
            or the tag's in-window probability mass would exceed 1.
        """
        if self._seen_ids.get(tup.tid, 0) > 0:
            raise ValidationError(
                f"tuple id {tup.tid!r} is already live in the window"
            )
        if rule_tag is not None:
            mass = self._rule_mass.get(rule_tag, 0.0) + tup.probability
            if mass > 1.0 + PROBABILITY_ATOL:
                raise ValidationError(
                    f"rule tag {rule_tag!r} would reach probability "
                    f"{mass:.6f} > 1 within the window"
                )
            self._rule_mass[rule_tag] = mass
            self._rule_live[rule_tag] = self._rule_live.get(rule_tag, 0) + 1
        self._window.append((tup, rule_tag))
        self._seen_ids[tup.tid] = self._seen_ids.get(tup.tid, 0) + 1
        self._arrivals += 1
        if len(self._window) > self.window_size:
            self._evict()
        self._version += 1

    def _evict(self) -> None:
        expired, tag = self._window.popleft()
        self._seen_ids[expired.tid] -= 1
        if self._seen_ids[expired.tid] == 0:
            del self._seen_ids[expired.tid]
        if tag is not None:
            # Forget the tag only when no live member still carries it:
            # float cancellation can drive the remaining mass to ~0 while
            # tiny-probability members are still in the window, and
            # deleting then would restart the tag's mass accounting from
            # scratch (and KeyError on the next same-tag eviction).
            self._rule_live[tag] -= 1
            if self._rule_live[tag] == 0:
                del self._rule_live[tag]
                del self._rule_mass[tag]
            else:
                remaining = self._rule_mass[tag] - expired.probability
                self._rule_mass[tag] = max(remaining, 0.0)

    def extend(self, tuples, rule_tags=None) -> None:
        """Append many tuples (``rule_tags`` parallel to ``tuples``)."""
        if rule_tags is None:
            for tup in tuples:
                self.append(tup)
        else:
            for tup, tag in zip(tuples, rule_tags):
                self.append(tup, rule_tag=tag)

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------
    def snapshot_table(self) -> UncertainTable:
        """The current window contents as a static uncertain table."""
        table = UncertainTable(name=f"window@{self._version}")
        groups: Dict[Any, list] = {}
        for tup, tag in self._window:
            table.add_tuple(tup)
            if tag is not None:
                groups.setdefault(tag, []).append(tup.tid)
        for tag, members in groups.items():
            if len(members) > 1:
                table.add_exclusive(f"tag:{tag}", *members)
        return table

    def answer(self) -> PTKAnswer:
        """The PT-k answer over the current window (cached per version)."""
        if self._cached_version != self._version or self._cached_answer is None:
            table = self.snapshot_table()
            self._cached_answer = exact_ptk_query(
                table,
                TopKQuery(k=self.k, ranking=self.ranking),
                self.threshold,
                variant=self.variant,
            )
            self._cached_version = self._version
        return self._cached_answer

    @property
    def version(self) -> int:
        """Monotone counter bumped on every window change."""
        return self._version
