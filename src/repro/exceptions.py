"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-classes separate model
validation problems (bad probabilities, malformed rules) from query-time
problems (bad parameters, unknown tuples).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError):
    """A data-model object violates an invariant.

    Raised when a tuple has a membership probability outside ``(0, 1]``,
    when a generation rule's total probability exceeds 1, when a tuple is
    referenced by more than one rule, and similar structural problems.
    """


class DuplicateTupleError(ValidationError):
    """Two tuples in one table share the same tuple id."""


class UnknownTupleError(ReproError):
    """An operation referenced a tuple id that is not in the table."""


class UnknownTableError(UnknownTupleError):
    """A query referenced a table name that is not registered.

    Subclasses :class:`UnknownTupleError` for one release:
    :meth:`repro.query.engine.UncertainDB.table` historically raised
    ``UnknownTupleError`` for missing *tables*, so existing ``except``
    clauses keep working while callers migrate.
    """


class RuleConflictError(ValidationError):
    """A tuple is involved in more than one multi-tuple generation rule.

    The paper (Section 2) assumes each tuple is involved in at most one
    generation rule; this library enforces that assumption.
    """


class QueryError(ReproError):
    """A query was malformed (e.g. ``k <= 0`` or a threshold outside (0,1])."""


class SamplingError(ReproError):
    """The sampling subsystem was configured inconsistently."""


class ObservabilityError(ReproError):
    """The observability layer was used inconsistently.

    Raised for metric type or label-set conflicts in the registry,
    negative counter increments, and malformed histogram buckets.
    """


class DurabilityError(ReproError):
    """Base class for errors raised by the persistence subsystem
    (:mod:`repro.durable`): write-ahead logging, snapshots, recovery."""


class WalCorruptionError(DurabilityError):
    """A write-ahead-log segment is structurally corrupt.

    Raised only for damage that cannot be explained by a torn tail — a
    bad magic header, or a CRC-valid record whose payload does not
    parse.  A partial final record (the normal signature of a crash
    mid-append) is *not* an error: recovery truncates it silently.
    """


class SnapshotCorruptionError(DurabilityError):
    """A snapshot file failed its checksum or could not be decoded."""


class RecoveryError(DurabilityError):
    """Recovery found an impossible state — e.g. a gap in the journaled
    table-version sequence, meaning mutations were lost between the
    latest snapshot and the surviving WAL records."""


class ReplicationError(ReproError):
    """Base class for errors raised by the replication subsystem
    (:mod:`repro.replication`): malformed cursors, protocol violations,
    promotion of an empty or foreign data directory."""


class CursorLostError(ReplicationError):
    """A replica's WAL cursor points at history the primary no longer has.

    Raised when the cursor's segment was compacted away (the replica fell
    behind further than retention pinning protected it) or names a
    sequence past every segment on disk (the primary was restored from
    older state).  The replica must discard its position and re-bootstrap
    from a full table snapshot.
    """


class EnumerationLimitError(ReproError):
    """Possible-world enumeration would exceed the configured safety limit.

    Enumeration is exponential in the number of generation rules; this
    error protects callers from accidentally enumerating astronomically
    many worlds.  Raise the limit explicitly if the blow-up is intended.
    """
