"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-classes separate model
validation problems (bad probabilities, malformed rules) from query-time
problems (bad parameters, unknown tuples).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError):
    """A data-model object violates an invariant.

    Raised when a tuple has a membership probability outside ``(0, 1]``,
    when a generation rule's total probability exceeds 1, when a tuple is
    referenced by more than one rule, and similar structural problems.
    """


class MutationError(ValidationError):
    """A table mutation was rejected before touching any state.

    The umbrella for write-path input validation at the
    :class:`~repro.query.engine.UncertainDB` /
    :class:`~repro.durable.db.DurableDB` boundary: a rejected mutation
    leaves the table, its version, the WAL, and any dynamic index
    exactly as they were.
    """


class InvalidProbabilityError(MutationError):
    """A membership probability is outside ``(0, 1]`` or not a finite number."""


class InvalidScoreError(MutationError):
    """A tuple score is NaN, infinite, or not a number at all."""


class DuplicateTupleError(MutationError):
    """Two tuples in one table share the same tuple id."""


class UnknownTupleError(ReproError):
    """An operation referenced a tuple id that is not in the table."""


class UnknownTableError(UnknownTupleError):
    """A query referenced a table name that is not registered.

    Subclasses :class:`UnknownTupleError` for one release:
    :meth:`repro.query.engine.UncertainDB.table` historically raised
    ``UnknownTupleError`` for missing *tables*, so existing ``except``
    clauses keep working while callers migrate.
    """


class RuleConflictError(ValidationError):
    """A tuple is involved in more than one multi-tuple generation rule.

    The paper (Section 2) assumes each tuple is involved in at most one
    generation rule; this library enforces that assumption.
    """


class QueryError(ReproError):
    """A query was malformed (e.g. ``k <= 0`` or a threshold outside (0,1])."""


class SamplingError(ReproError):
    """The sampling subsystem was configured inconsistently."""


class ObservabilityError(ReproError):
    """The observability layer was used inconsistently.

    Raised for metric type or label-set conflicts in the registry,
    negative counter increments, and malformed histogram buckets.
    """


class DurabilityError(ReproError):
    """Base class for errors raised by the persistence subsystem
    (:mod:`repro.durable`): write-ahead logging, snapshots, recovery."""


class WalCorruptionError(DurabilityError):
    """A write-ahead-log segment is structurally corrupt.

    Raised only for damage that cannot be explained by a torn tail — a
    bad magic header, or a CRC-valid record whose payload does not
    parse.  A partial final record (the normal signature of a crash
    mid-append) is *not* an error: recovery truncates it silently.
    """


class SnapshotCorruptionError(DurabilityError):
    """A snapshot file failed its checksum or could not be decoded."""


class RecoveryError(DurabilityError):
    """Recovery found an impossible state — e.g. a gap in the journaled
    table-version sequence, meaning mutations were lost between the
    latest snapshot and the surviving WAL records."""


class ReplicationError(ReproError):
    """Base class for errors raised by the replication subsystem
    (:mod:`repro.replication`): malformed cursors, protocol violations,
    promotion of an empty or foreign data directory."""


class CursorLostError(ReplicationError):
    """A replica's WAL cursor points at history the primary no longer has.

    Raised when the cursor's segment was compacted away (the replica fell
    behind further than retention pinning protected it) or names a
    sequence past every segment on disk (the primary was restored from
    older state).  The replica must discard its position and re-bootstrap
    from a full table snapshot.
    """


class DynamicIndexError(ReproError):
    """Base class for errors raised by the incremental PT-k index
    (:mod:`repro.dynamic`).  Both subclasses are *recoverable*: the
    registry catches them and falls back to a cold rebuild rather than
    serving an answer from suspect state."""


class StaleDeltaError(DynamicIndexError):
    """A delta does not chain onto the index's current ``(epoch, version)``.

    Raised when ``delta.previous_version`` is not the index's version or
    the registration epochs differ — e.g. after a promotion re-registered
    the table, or when deltas were dropped under backlog pressure.
    """


class UnsupportedDeltaError(DynamicIndexError):
    """The index cannot apply a delta (or build) without risking a
    wrong answer — e.g. a ranking-key collision (two tuple ids with
    equal score *and* equal ``str(tid)``), where incremental insertion
    cannot reproduce the stable sort order of a cold prepare."""


class EnumerationLimitError(ReproError):
    """Possible-world enumeration would exceed the configured safety limit.

    Enumeration is exponential in the number of generation rules; this
    error protects callers from accidentally enumerating astronomically
    many worlds.  Raise the limit explicitly if the blow-up is intended.
    """
