"""Statistics utilities: concentration bounds, quality metrics, distributions.

* :mod:`~repro.stats.bounds` — the Chernoff–Hoeffding sample-size bound of
  Theorem 6 and the matching error bound plotted in Figure 6.
* :mod:`~repro.stats.metrics` — precision / recall / average relative
  error, the quality measures of Section 6.2.
* :mod:`~repro.stats.distributions` — truncated-normal sampling helpers
  used by the synthetic workload generator.
"""

from repro.stats.bounds import (
    chernoff_hoeffding_error_bound,
    chernoff_hoeffding_sample_size,
)
from repro.stats.metrics import (
    average_relative_error,
    f1_score,
    precision_recall,
)

__all__ = [
    "average_relative_error",
    "chernoff_hoeffding_error_bound",
    "chernoff_hoeffding_sample_size",
    "f1_score",
    "precision_recall",
]
