"""Confidence intervals for sampled top-k probabilities.

The paper's sampler reports point estimates; a practitioner acting on a
threshold query usually wants to know *how sure* the sampler is that a
tuple clears (or misses) the threshold.  The Wilson score interval is
the standard choice for a Bernoulli mean at small-to-moderate sample
sizes — unlike the Wald interval it behaves sanely at estimates near 0
or 1, which is exactly where PT-k answer boundaries live.

For estimate ``p̂ = s/n`` and normal quantile ``z``:

.. math::

    \\frac{p̂ + z^2/2n \\pm z \\sqrt{p̂(1-p̂)/n + z^2/4n^2}}{1 + z^2/n}

:func:`classify_against_threshold` turns intervals into a three-way
verdict — the whole interval above the threshold (sure in), the whole
interval below (sure out), or straddling (undecided, i.e. draw more
samples or fall back to the exact algorithm for those tuples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.exceptions import SamplingError

#: Normal quantiles for the confidence levels used in practice.
_Z_BY_CONFIDENCE = {
    0.8: 1.2815515655446004,
    0.9: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.98: 2.3263478740408408,
    0.99: 2.5758293035489004,
}


def normal_quantile(confidence: float) -> float:
    """Two-sided normal quantile ``z`` for a confidence level.

    Supports the standard levels directly and interpolates otherwise
    using the Acklam-style rational approximation.
    """
    if not (0.0 < confidence < 1.0):
        raise SamplingError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    if confidence in _Z_BY_CONFIDENCE:
        return _Z_BY_CONFIDENCE[confidence]
    return _inverse_normal_cdf(0.5 + confidence / 2.0)


def _inverse_normal_cdf(p: float) -> float:
    """Acklam's rational approximation of the standard normal quantile."""
    # coefficients from Peter Acklam's algorithm (relative error < 1.15e-9)
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
        ) / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def standard_normal_quantile(p: float) -> float:
    """The signed standard normal quantile ``Phi^{-1}(p)`` for ``p`` in (0, 1).

    Unlike :func:`normal_quantile` (which takes a two-sided *confidence*
    level and is always positive), this is the plain inverse CDF: negative
    below ``p = 0.5``, zero at ``0.5``, positive above.  The query planner
    uses it to keep the tail-stop mass target signed across the whole
    threshold range.
    """
    if not (0.0 < p < 1.0):
        raise SamplingError(f"quantile argument must be in (0, 1), got {p!r}")
    if p == 0.5:
        return 0.0
    return _inverse_normal_cdf(p)


def wilson_interval(
    successes: float, samples: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a Bernoulli mean.

    :param successes: number of positive draws (``estimate * samples``).
    :param samples: number of draws, > 0.
    :param confidence: two-sided confidence level in (0, 1).
    :returns: ``(low, high)`` within [0, 1].
    """
    if samples <= 0:
        raise SamplingError(f"samples must be positive, got {samples}")
    if successes < 0 or successes > samples:
        raise SamplingError(
            f"successes must be in [0, {samples}], got {successes}"
        )
    z = normal_quantile(confidence)
    n = float(samples)
    p_hat = successes / n
    z2 = z * z
    denominator = 1.0 + z2 / n
    centre = p_hat + z2 / (2.0 * n)
    margin = z * math.sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n))
    low = max(0.0, (centre - margin) / denominator)
    high = min(1.0, (centre + margin) / denominator)
    return low, high


@dataclass(frozen=True)
class ThresholdVerdicts:
    """Three-way classification of tuples against a PT-k threshold.

    :param sure_in: interval entirely at/above the threshold.
    :param sure_out: interval entirely below the threshold.
    :param undecided: interval straddles the threshold — candidates for
        more samples or an exact re-check.
    """

    sure_in: Tuple[Any, ...]
    sure_out: Tuple[Any, ...]
    undecided: Tuple[Any, ...]


def classify_against_threshold(
    estimates: Dict[Any, float],
    samples: int,
    threshold: float,
    confidence: float = 0.95,
    population: Tuple[Any, ...] = (),
) -> ThresholdVerdicts:
    """Classify sampled tuples as surely-in / surely-out / undecided.

    :param estimates: tuple id -> estimated ``Pr^k`` (tuples absent are
        treated as estimate 0 when listed in ``population``).
    :param samples: sample units behind the estimates.
    :param threshold: the PT-k threshold p.
    :param confidence: per-tuple confidence level of the intervals.
    :param population: optional full candidate list, so never-sampled
        tuples (estimate 0) are still classified.
    """
    if not (0.0 < threshold <= 1.0):
        raise SamplingError(
            f"threshold must be in (0, 1], got {threshold!r}"
        )
    sure_in: List[Any] = []
    sure_out: List[Any] = []
    undecided: List[Any] = []
    candidates = dict(estimates)
    for tid in population:
        candidates.setdefault(tid, 0.0)
    for tid, estimate in candidates.items():
        low, high = wilson_interval(
            estimate * samples, samples, confidence=confidence
        )
        if low >= threshold:
            sure_in.append(tid)
        elif high < threshold:
            sure_out.append(tid)
        else:
            undecided.append(tid)
    key = str
    return ThresholdVerdicts(
        sure_in=tuple(sorted(sure_in, key=key)),
        sure_out=tuple(sorted(sure_out, key=key)),
        undecided=tuple(sorted(undecided, key=key)),
    )
