"""Answer-quality metrics for the sampling method (Section 6.2).

The paper measures the sampler three ways:

* **average error rate** — mean relative error of the estimated top-k
  probability over tuples whose true probability passes the threshold:

  .. math::

      \\text{Error rate} = \\frac{\\sum_{Pr^k(t) > p}
          |Pr^k(t) - \\hat{Pr}^k(t)| / Pr^k(t)}{|\\{t : Pr^k(t) > p\\}|}

* **precision** — fraction of returned tuples that truly pass, and
* **recall** — fraction of truly passing tuples that were returned.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Set, Tuple


def average_relative_error(
    exact: Dict[Any, float],
    estimated: Dict[Any, float],
    threshold: float,
) -> float:
    """The paper's average error rate over above-threshold tuples.

    :param exact: true top-k probabilities (must cover every tuple whose
        true probability exceeds ``threshold``).
    :param estimated: estimated probabilities; missing entries count as 0.
    :param threshold: the probability threshold ``p``.
    :returns: the mean relative error; 0 when no tuple passes.
    """
    passing = [(tid, pr) for tid, pr in exact.items() if pr > threshold]
    if not passing:
        return 0.0
    total = 0.0
    for tid, pr in passing:
        total += abs(pr - estimated.get(tid, 0.0)) / pr
    return total / len(passing)


def precision_recall(
    truth: Iterable[Any], predicted: Iterable[Any]
) -> Tuple[float, float]:
    """Precision and recall of a predicted answer set against the truth.

    Conventions for empty sets: precision of an empty prediction is 1
    (nothing wrong was returned); recall of an empty truth is 1 (nothing
    was missed).  These keep sweeps well-defined at extreme thresholds.
    """
    truth_set: Set[Any] = set(truth)
    predicted_set: Set[Any] = set(predicted)
    hit = len(truth_set & predicted_set)
    precision = hit / len(predicted_set) if predicted_set else 1.0
    recall = hit / len(truth_set) if truth_set else 1.0
    return precision, recall


def f1_score(truth: Iterable[Any], predicted: Iterable[Any]) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    precision, recall = precision_recall(truth, predicted)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def max_absolute_error(
    exact: Dict[Any, float], estimated: Dict[Any, float]
) -> float:
    """Worst-case additive estimation error over all tuples in ``exact``."""
    worst = 0.0
    for tid, pr in exact.items():
        worst = max(worst, abs(pr - estimated.get(tid, 0.0)))
    return worst
