"""Concentration bounds for the sampling method (Theorem 6).

Theorem 6 (from the Chernoff–Hoeffding bound of Angluin & Valiant): for
relative error ``epsilon`` and failure probability ``delta``, a sample of

.. math::

    |S| \\ge \\frac{3 \\ln(2 / \\delta)}{\\epsilon^2}

possible worlds guarantees, for every tuple ``t``,

.. math::

    \\Pr\\big[\\,|E_S[X_t] - E[X_t]| > \\epsilon E[X_t]\\,\\big] \\le \\delta.

Figure 6 plots the inverse of this bound — the ``epsilon`` guaranteed by
a given sample size — as the reference line against the measured error.
"""

from __future__ import annotations

import math

from repro.exceptions import SamplingError


def chernoff_hoeffding_sample_size(epsilon: float, delta: float) -> int:
    """Sample size guaranteeing relative error ``epsilon`` w.p. ``1-delta``.

    :param epsilon: relative error target, > 0.
    :param delta: failure probability, in (0, 1).
    :returns: the (integer, rounded-up) Theorem-6 bound.
    """
    if epsilon <= 0:
        raise SamplingError(f"epsilon must be positive, got {epsilon!r}")
    if not (0.0 < delta < 1.0):
        raise SamplingError(f"delta must be in (0, 1), got {delta!r}")
    return math.ceil(3.0 * math.log(2.0 / delta) / (epsilon * epsilon))


def chernoff_hoeffding_error_bound(sample_size: int, delta: float) -> float:
    """The relative error guaranteed by a given sample size.

    Inverts :func:`chernoff_hoeffding_sample_size`:
    ``epsilon = sqrt(3 ln(2/delta) / |S|)``.  This is the theoretical
    reference curve of Figure 6(a)/(b).
    """
    if sample_size <= 0:
        raise SamplingError(f"sample_size must be positive, got {sample_size!r}")
    if not (0.0 < delta < 1.0):
        raise SamplingError(f"delta must be in (0, 1), got {delta!r}")
    return math.sqrt(3.0 * math.log(2.0 / delta) / sample_size)


def hoeffding_absolute_error_bound(sample_size: int, delta: float) -> float:
    """Additive-error Hoeffding bound for a Bernoulli mean.

    With probability at least ``1 - delta`` the empirical mean of
    ``sample_size`` i.i.d. indicator draws is within
    ``sqrt(ln(2/delta) / (2 |S|))`` of the true mean.  Useful as a
    tighter diagnostic for tuples with small ``Pr^k`` where relative
    error is uninformative.
    """
    if sample_size <= 0:
        raise SamplingError(f"sample_size must be positive, got {sample_size!r}")
    if not (0.0 < delta < 1.0):
        raise SamplingError(f"delta must be in (0, 1), got {delta!r}")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * sample_size))
