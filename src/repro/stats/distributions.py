"""Distribution helpers for workload generation.

Section 6.2 draws membership probabilities, rule probabilities and rule
sizes from normal distributions; drawn values must land in legal ranges
(probabilities in (0, 1], rule sizes >= 2), so the generator uses
*clipped* normal sampling: redraw is unnecessary for the paper's shapes,
simple clipping preserves the mean well for the parameter ranges used.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SamplingError

#: Smallest probability the generators will emit; avoids degenerate
#: zero-probability tuples that the model forbids.
MIN_PROBABILITY = 1e-3


def clipped_normal(
    rng: np.random.Generator,
    mean: float,
    std: float,
    size: int,
    low: float,
    high: float,
) -> np.ndarray:
    """Normal draws clipped into ``[low, high]``.

    :raises SamplingError: on a non-positive ``size`` or inverted bounds.
    """
    if size <= 0:
        raise SamplingError(f"size must be positive, got {size}")
    if low > high:
        raise SamplingError(f"low {low} exceeds high {high}")
    values = rng.normal(loc=mean, scale=std, size=size)
    return np.clip(values, low, high)


def probability_normal(
    rng: np.random.Generator,
    mean: float,
    std: float,
    size: int,
    high: float = 1.0,
) -> np.ndarray:
    """Probabilities ~ clipped ``N(mean, std)`` in ``[MIN_PROBABILITY, high]``."""
    return clipped_normal(rng, mean, std, size, MIN_PROBABILITY, high)


def rule_size_normal(
    rng: np.random.Generator,
    mean: float,
    std: float,
    size: int,
    minimum: int = 2,
    maximum: Optional[int] = None,
) -> np.ndarray:
    """Integer rule sizes ~ rounded clipped ``N(mean, std)``, at least 2.

    Multi-tuple rules need two or more members by definition; the paper's
    default is ``N(5, 2)``.
    """
    high = float(maximum) if maximum is not None else float("inf")
    values = clipped_normal(rng, mean, std, size, float(minimum), high)
    return np.rint(values).astype(int)
