"""repro — probabilistic threshold top-k (PT-k) queries on uncertain data.

A from-scratch reproduction of

    Ming Hua, Jian Pei, Wenjie Zhang, Xuemin Lin.
    "Efficiently Answering Probabilistic Threshold Top-k Queries on
    Uncertain Data." ICDE 2008.

Quickstart::

    from repro import UncertainTable, TopKQuery, exact_ptk_query

    table = UncertainTable()
    table.add("R1", score=25, probability=0.3)
    table.add("R2", score=21, probability=0.4)
    table.add("R3", score=13, probability=0.5)
    table.add_exclusive("rule_B", "R2", "R3")

    answer = exact_ptk_query(table, TopKQuery(k=2), threshold=0.35)
    print(answer.answers)           # tuples with Pr^2 >= 0.35
    print(answer.probabilities)     # their exact top-k probabilities

Package map:

* :mod:`repro.model` — tuples, generation rules, tables, possible worlds.
* :mod:`repro.query` — predicates, ranking functions, ranked access, and
  the :class:`~repro.query.engine.UncertainDB` facade.
* :mod:`repro.core` — the exact algorithm (RC / RC+AR / RC+LR) and the
  sampling method.
* :mod:`repro.semantics` — U-TopK, U-KRanks, Global-Topk and the naive
  enumeration baseline.
* :mod:`repro.datagen` — paper workloads (panda example, Section 6.2
  synthetic generator, simulated iceberg sightings).
* :mod:`repro.stats` — Chernoff–Hoeffding bounds and quality metrics.
* :mod:`repro.io` — CSV/JSON persistence of uncertain tables.
* :mod:`repro.bench` — the harness that regenerates the paper's figures.
"""

from repro.core.exact import ExactVariant, exact_ptk_query, exact_topk_probabilities
from repro.core.explain import Explanation, explain_tuple
from repro.core.profile import topk_probability_profile
from repro.core.results import AlgorithmStats, PTKAnswer
from repro.core.sampling import (
    SamplingConfig,
    SamplingResult,
    sampled_ptk_query,
    sampled_topk_probabilities,
)
from repro import obs
from repro.exceptions import (
    EnumerationLimitError,
    ObservabilityError,
    QueryError,
    ReproError,
    SamplingError,
    UnknownTableError,
    UnknownTupleError,
    ValidationError,
)
from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable, table_from_rows
from repro.model.tuples import UncertainTuple
from repro.query.ranking import RankingFunction, by_attribute, by_score
from repro.query.topk import TopKQuery
from repro.semantics.naive import naive_ptk_answer, naive_topk_probabilities
from repro.semantics.ukranks import ukranks_query
from repro.semantics.utopk import utopk_query
from repro.stream import PTKMonitor, SlidingWindowPTK

__version__ = "1.0.0"

__all__ = [
    "AlgorithmStats",
    "EnumerationLimitError",
    "ExactVariant",
    "Explanation",
    "GenerationRule",
    "ObservabilityError",
    "PTKAnswer",
    "PTKMonitor",
    "QueryError",
    "RankingFunction",
    "ReproError",
    "SamplingConfig",
    "SamplingResult",
    "SamplingError",
    "SlidingWindowPTK",
    "TopKQuery",
    "UncertainTable",
    "UncertainTuple",
    "UnknownTableError",
    "UnknownTupleError",
    "ValidationError",
    "by_attribute",
    "by_score",
    "exact_ptk_query",
    "exact_topk_probabilities",
    "explain_tuple",
    "naive_ptk_answer",
    "naive_topk_probabilities",
    "obs",
    "sampled_ptk_query",
    "sampled_topk_probabilities",
    "table_from_rows",
    "topk_probability_profile",
    "ukranks_query",
    "utopk_query",
]
