"""The dynamic-index registry: delta queues, fallback policy, answers.

One :class:`DynamicIndexRegistry` lives inside an
:class:`~repro.query.engine.UncertainDB` once
:meth:`~repro.query.engine.UncertainDB.enable_dynamic` is called.  It
owns a small family of :class:`~repro.dynamic.index.DynamicIndex`\\ es
per registered table — **one per requested** ``k``, because an index is
byte-exact at exactly one ``k`` (see the index module docstring) — and
mediates between the write path and the read path:

* **writes** enqueue :class:`~repro.dynamic.delta.TableDelta` records
  (cheap, no DP work on the mutating thread);
* **reads** drain the pending queue into every built index — constant
  column surgery per delta, the invalidated suffix merely lowers the
  index's clean watermark — and answer from the maintained ``Pr^k``
  column for the requested ``k``, re-pricing lazily only up to the
  Theorem-5 stop depth the answer needs.

Degradation is the design's safety net, not an afterthought: any
condition under which an incremental answer could be wrong — a version
gap in the delta chain, a sort-key collision the index refuses, a
backlog past :attr:`max_backlog` (where replaying deltas would cost
more than scanning), a ``k`` above the registry cap, or an unexpected
error — falls back to :meth:`DynamicIndex.build`, which *is* the cold
scan in the index's representation.  Every fallback is counted by
reason (``repro_dyn_fallbacks_total``), so "the escape hatch fired" is
an observable event, never a silent behavior change.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.results import PTKAnswer
from repro.exceptions import (
    DynamicIndexError,
    QueryError,
    UnsupportedDeltaError,
)
from repro.model.table import UncertainTable
from repro.obs import OBS, catalogued

from repro.dynamic.delta import TableDelta
from repro.dynamic.index import DEFAULT_CAP, DynamicIndex

#: Pending deltas beyond which a read rebuilds instead of replaying.
DEFAULT_MAX_BACKLOG = 256


class _TableState:
    """Per-table registry slot: the per-``k`` index family, the shared
    pending delta queue, and the registration epoch."""

    __slots__ = ("epoch", "indexes", "pending", "lock")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.indexes: Dict[int, DynamicIndex] = {}
        self.pending: Deque[TableDelta] = deque()
        self.lock = threading.Lock()


class DynamicIndexRegistry:
    """Dynamic PT-k indexes for the tables of one database.

    :param cap: largest ``k`` served incrementally; one index is built
        per distinct requested ``k`` up to this bound.
    :param max_backlog: pending deltas beyond which a read rebuilds the
        indexes from the table instead of replaying the queue.
    """

    def __init__(
        self,
        cap: int = DEFAULT_CAP,
        max_backlog: int = DEFAULT_MAX_BACKLOG,
    ) -> None:
        if cap <= 0:
            raise QueryError(f"dynamic cap must be positive, got {cap}")
        self.cap = int(cap)
        self.max_backlog = int(max_backlog)
        self._states: Dict[str, _TableState] = {}
        self._lock = threading.Lock()
        # Cumulative counters (also exported as repro_dyn_* metrics;
        # kept here as plain ints so /healthz and tests can read them
        # without the obs registry).
        self.deltas_applied = 0
        self.fallbacks: Dict[str, int] = {}
        self.reads_index = 0
        self.reads_rebuild = 0

    # ------------------------------------------------------------------
    # Registration and the write path
    # ------------------------------------------------------------------
    def register(self, name: str, epoch: int = 0) -> int:
        """Track ``name``; indexes are built lazily on first read per
        ``k``.  Re-registering under a higher epoch discards the old
        indexes and queue (their deltas describe a dead lineage).

        :returns: the epoch the registry now associates with the name.
        """
        with self._lock:
            state = self._states.get(name)
            if state is None:
                self._states[name] = _TableState(epoch)
                return epoch
            if epoch > state.epoch:
                self._states[name] = _TableState(epoch)
                return epoch
            return state.epoch

    def drop(self, name: str) -> None:
        """Forget a table's indexes and pending deltas."""
        with self._lock:
            self._states.pop(name, None)

    def tracked(self) -> List[str]:
        """Names currently tracked by the registry."""
        with self._lock:
            return list(self._states)

    def enqueue(self, delta: TableDelta) -> bool:
        """Queue one committed mutation for its table's indexes.

        Constant-time on the write path: the DP work happens at the
        next read.  Deltas for untracked tables or stale epochs are
        dropped (the indexes will rebuild from the table anyway).

        :returns: True when the delta was queued.
        """
        with self._lock:
            state = self._states.get(delta.table)
        if state is None or delta.epoch != state.epoch:
            return False
        with state.lock:
            state.pending.append(delta)
        return True

    # ------------------------------------------------------------------
    # The read path
    # ------------------------------------------------------------------
    def index_for(
        self, name: str, table: UncertainTable, k: int
    ) -> Optional[DynamicIndex]:
        """The table's index for ``k``, advanced through every pending
        delta.

        Drains the queue under the per-table lock, applying each delta
        to every built sibling as a suffix re-evaluation; rebuilds cold
        on any degradation condition (see the module docstring).
        Returns ``None`` for untracked names or ``k`` above the cap.
        """
        if k <= 0 or k > self.cap:
            return None
        with self._lock:
            state = self._states.get(name)
        if state is None:
            return None
        with state.lock:
            index, _ = self._advance(state, name, table, k)
            return index

    def _advance(
        self, state: _TableState, name: str, table: UncertainTable, k: int
    ) -> Tuple[DynamicIndex, bool]:
        """Drain the pending queue into the built index family, then
        hand back (index for ``k``, whether a cold build happened).
        Callers hold ``state.lock``."""
        indexes = state.indexes
        if not indexes:
            # Nothing built yet: queued deltas are subsumed by building
            # from the live table.
            state.pending.clear()
        elif len(state.pending) > self.max_backlog:
            self._fallback(state, reason="backlog")
        while state.pending and indexes:
            delta = state.pending.popleft()
            started = time.perf_counter()
            suffix = -1
            try:
                for index in indexes.values():
                    if delta.version <= index.version:
                        continue  # already covered (e.g. by a rebuild)
                    suffix = index.apply(delta)
            except UnsupportedDeltaError:
                self._fallback(state, reason="unsupported")
                break
            except DynamicIndexError:
                self._fallback(state, reason="stale")
                break
            except Exception:
                self._fallback(state, reason="error")
                break
            if suffix < 0:
                continue
            self.deltas_applied += 1
            if OBS.enabled:
                elapsed = time.perf_counter() - started
                catalogued("repro_dyn_deltas_applied_total").inc(
                    1.0, op=delta.op
                )
                catalogued("repro_dyn_suffix_length").observe(suffix)
                catalogued("repro_dyn_refresh_seconds").observe(elapsed)
        index = indexes.get(k)
        if index is not None and index.version != table.version:
            # Mutations bypassed the delta path (direct table writes):
            # the chain is broken, only the table knows the truth.
            self._fallback(state, reason="stale")
            index = None
        if index is None:
            index = DynamicIndex.build(name, table, cap=k, epoch=state.epoch)
            indexes[k] = index
            return index, True
        return index, False

    def _fallback(self, state: _TableState, reason: str) -> None:
        """Discard the index family and queue; the caller rebuilds the
        requested ``k`` cold (siblings rebuild lazily on their next
        read).  Counted per reason."""
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
        if OBS.enabled:
            catalogued("repro_dyn_fallbacks_total").inc(1.0, reason=reason)
        state.indexes.clear()
        state.pending.clear()

    def answer(
        self,
        name: str,
        table: UncertainTable,
        k: int,
        threshold: float,
    ) -> Optional[PTKAnswer]:
        """A PT-k answer from the maintained index, or ``None`` when the
        table is untracked or ``k`` exceeds the cap (callers run their
        usual cold path; the miss is counted).

        The answer carries the scanned prefix's ``Pr^k`` values —
        bitwise what a cold columnar scan of the current table would
        produce for those ranks — with ``answers`` holding the ids at
        or above ``threshold`` in ranking order and ``stats.scan_depth``
        the Theorem-5 stop depth the read actually priced (see
        :meth:`DynamicIndex.scan_answer`).
        """
        if k > self.cap:
            self.fallbacks["cap"] = self.fallbacks.get("cap", 0) + 1
            if OBS.enabled:
                catalogued("repro_dyn_fallbacks_total").inc(1.0, reason="cap")
            return None
        with self._lock:
            state = self._states.get(name)
        if state is None:
            return None
        with state.lock:
            index, rebuilt = self._advance(state, name, table, k)
            try:
                answers, probabilities, depth = index.scan_answer(
                    k, threshold
                )
            except Exception:
                # Lazy re-pricing happens at read time, outside
                # _advance's per-delta guards: degrade exactly the same
                # way — rebuild cold and re-read (a second failure is a
                # genuine bug and propagates).
                self._fallback(state, reason="error")
                index, rebuilt = self._advance(state, name, table, k)
                answers, probabilities, depth = index.scan_answer(
                    k, threshold
                )
            answer = PTKAnswer(k=k, threshold=threshold, method="dynamic")
            answer.probabilities.update(probabilities)
            answer.answers.extend(answers)
            answer.stats.scan_depth = depth
            answer.stats.tuples_evaluated = depth
        if rebuilt:
            self.reads_rebuild += 1
        else:
            self.reads_index += 1
        if OBS.enabled:
            catalogued("repro_dyn_reads_total").inc(
                1.0, source="rebuild" if rebuilt else "index"
            )
        return answer

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Registry-level counters plus per-table index stats."""
        with self._lock:
            states = dict(self._states)
        tables = {}
        for name, state in states.items():
            with state.lock:
                tables[name] = {
                    "epoch": state.epoch,
                    "pending": len(state.pending),
                    "indexes": {
                        k: index.stats()
                        for k, index in sorted(state.indexes.items())
                    },
                }
        return {
            "cap": self.cap,
            "max_backlog": self.max_backlog,
            "deltas_applied": self.deltas_applied,
            "fallbacks": dict(self.fallbacks),
            "reads": {"index": self.reads_index, "rebuild": self.reads_rebuild},
            "tables": tables,
        }
