"""The incremental PT-k index: suffix re-evaluation under point mutations.

A :class:`DynamicIndex` maintains, for one table under the default query
shape (trivial predicate, rank by score descending), everything the
columnar full scan of :func:`repro.core.kernel.columnar_topk_scan` would
compute — plus enough intermediate state to *restart* that scan at an
arbitrary rank instead of rank 1:

* the ranked order itself (tids, sort keys, score/probability/rule-slot
  columns), maintained by binary search under point mutations;
* ``W``, an ``(n, cap)`` float64 matrix whose row ``i`` is the DP state
  vector the cold scan would hold when *pricing* position ``i`` — the
  pre-extension chain row for an independent tuple, the
  Corollary-2 "product excluding own rule" vector for a rule member;
* ``units_excl``, the number of live compression units strictly before
  each position (minus the member's own rule-tuple), which decides the
  exact-constant-1 shortcut;
* checkpoints of the independent-only DP vector every :data:`BLOCK`
  ranks, so a restart never replays more than ``BLOCK`` Theorem-2
  extensions to reseed.

**The invariant that makes deltas sound:** every row of ``W`` is a pure
function of the ``(probability, rule-slot)`` column entries *strictly
before* it.  A mutation therefore invalidates exactly the suffix
starting at the first rank where the old and new columns differ; the
prefix — rows, unit counts, and checkpoints alike — is reused verbatim.
:meth:`DynamicIndex.apply` computes that first-diff rank and lowers the
*clean watermark* to it; the actual re-evaluation is **lazy** and
**prune-bounded**.  A PT-k answer read (:meth:`scan_answer`) reveals
the ``Pr^k`` column in ranking order and stops at the Theorem-5 bound —
once the compensated running mass exceeds ``k - threshold`` no deeper
tuple can reach the threshold — so it re-runs the cold kernel's loop
only over ``[watermark, stop depth)``.  A mutation *below* the answer
depth therefore costs O(column surgery) at write time and *zero* DP
work at read time: rows above it are untouched by construction, and
rows below it are never priced until someone asks for the full column
(:meth:`topk_probabilities`, which completes the scan to ``n``).

**Byte-exactness contract** (the same bar the columnar kernel was held
to in PR 7): for every ``k <= cap``, :meth:`topk_probabilities` returns
a ``Pr^k`` column bitwise equal to
``columnar_topk_scan(probability, rule_index, k)`` on the current
table — not merely close.  The pieces that make this work:

* the suffix scan replays the cold kernel's exact operation sequence
  (same :func:`~repro.core.kernel.dp_extend` /
  :func:`~repro.core.kernel.dp_extend_chain` recurrences, same
  :class:`~repro.core.kernel._RuleFactorTree` sized to the table's
  total slot count, same compensated sums over full member lists);
* restarting mid-run chains from the *stored* predecessor row
  (``W[start-1]`` extended by one Theorem-2 step) — bitwise identical
  to the uninterrupted chain, which a fresh
  ``v_independent ⊗ tree-root`` convolution would not be;
* one index serves exactly **one** ``k`` (``cap == k``), so every
  ``np.convolve`` in the replay sees operands of the very lengths the
  cold scan at that ``k`` would pass.  This is not pedantry: entries
  below ``k`` of a longer-cap convolution are *mathematically* equal to
  the cap-``k`` ones but not always bitwise equal — NumPy's correlate
  kernel picks different code paths (and thus rounding/summation
  orders) by operand length, and the smoke harness caught a cap-12
  index drifting 1 ulp from the cold scan at ``k=2``.  The registry
  therefore keeps a small per-``k`` family of indexes per table rather
  than one wide matrix.

The index refuses (:class:`~repro.exceptions.UnsupportedDeltaError`)
the one mutation whose result depends on state it cannot see: a score
update landing on a sort key some *other* tuple already holds, where
the true order depends on table insertion order.  The registry treats
that refusal — like any version gap — as a signal to rebuild cold.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.kernel import (
    _RuleFactorTree,
    _combined,
    _RUN_BLOCK,
    RunningSum,
    compensated_sum,
    dp_extend,
    dp_extend_chain,
    fewer_than_k_batch,
)
from repro.exceptions import (
    QueryError,
    StaleDeltaError,
    UnsupportedDeltaError,
)
from repro.model.table import UncertainTable

from repro.dynamic.delta import TableDelta

#: Checkpoint stride for the independent-only DP vector: a restart at
#: rank ``s`` replays at most ``BLOCK`` Theorem-2 extensions to reseed.
BLOCK = 512

#: Default registry-level cap: the largest ``k`` served incrementally
#: (an index is built per requested ``k`` up to this bound).  Memory per
#: (table, k) index is ``n * k * 8`` bytes.
DEFAULT_CAP = 64

#: Reveal granularity of :meth:`DynamicIndex.scan_answer`: positions are
#: priced in chunks of this many ranks until the Theorem-5 mass bound
#: stops the scan.
ANSWER_CHUNK = 64


def _sort_key(score: float, tid: Any) -> Tuple[float, str]:
    """The ranking sort key: score descending, ``str(tid)`` ascending."""
    return (-score, str(tid))


class DynamicIndex:
    """Incrementally maintained PT-k state for one table (see module doc).

    Build with :meth:`build`; advance with :meth:`apply`; read with
    :meth:`topk_probabilities` / :meth:`answer_tids`.  Instances are not
    thread-safe — the registry serialises access.

    :param cap: the one ``k`` this index serves byte-exactly (DP rows,
        checkpoints and convolutions are all length ``cap``; see the
        module docstring for why serving ``k < cap`` is unsound).
    """

    def __init__(self, name: str, cap: int = DEFAULT_CAP) -> None:
        if cap <= 0:
            raise QueryError(f"dynamic index cap must be positive, got {cap}")
        self.name = name
        self.cap = int(cap)
        self.version = -1
        self.epoch = 0
        #: cumulative counters the registry exports as metrics
        self.deltas_applied = 0
        self.suffix_reevaluated = 0
        # ranked-order state (all in ranking order, best first)
        self._tids: List[Any] = []
        self._keys: List[Tuple[float, str]] = []
        self._key_of: Dict[Any, Tuple[float, str]] = {}
        self._score = np.empty(0, dtype=np.float64)
        self._prob = np.empty(0, dtype=np.float64)
        self._slots = np.empty(0, dtype=np.int64)
        self._rule_ids: List[Any] = []
        # rule topology: tid -> rule_id for multi-tuple rule members,
        # rule_id -> member tids (unordered; order comes from ranks)
        self._rule_of: Dict[Any, Any] = {}
        self._members: Dict[Any, List[Any]] = {}
        # DP state: rows [0, _clean) of W/units are valid for the
        # current columns; rows beyond await a lazy rescan.
        self._W = np.empty((0, self.cap), dtype=np.float64)
        self._units = np.empty(0, dtype=np.int64)
        self._clean = 0
        self._ckpts: List[np.ndarray] = [self._initial_vector()]
        self._out: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        name: str,
        table: UncertainTable,
        cap: int = DEFAULT_CAP,
        epoch: int = 0,
    ) -> "DynamicIndex":
        """Cold-build an index from a table's current contents.

        This *is* the cold scan in the index's representation — a
        rebuild after any fallback goes through here.
        """
        index = cls(name, cap=cap)
        index.epoch = epoch
        ranked = table.ranked_tuples()
        index._tids = [t.tid for t in ranked]
        index._keys = [_sort_key(t.score, t.tid) for t in ranked]
        index._key_of = dict(zip(index._tids, index._keys))
        n = len(ranked)
        index._score = np.fromiter(
            (t.score for t in ranked), dtype=np.float64, count=n
        )
        index._prob = np.fromiter(
            (t.probability for t in ranked), dtype=np.float64, count=n
        )
        for rule in table.multi_rules():
            index._members[rule.rule_id] = list(rule.tuple_ids)
            for tid in rule.tuple_ids:
                index._rule_of[tid] = rule.rule_id
        index._slots, index._rule_ids = index._compute_slots(index._tids)
        # Rows are priced lazily: a build allocates and leaves the
        # watermark at 0, so the first read prices only to its own
        # Theorem-5 stop depth — a rebuild after fallback costs what a
        # pruned cold scan costs, not a full-column scan.
        index._W = np.empty((n, index.cap), dtype=np.float64)
        index._units = np.empty(n, dtype=np.int64)
        index.version = table.version
        return index

    def _initial_vector(self) -> np.ndarray:
        vector = np.zeros(self.cap, dtype=np.float64)
        vector[0] = 1.0
        return vector

    def _compute_slots(
        self, tids: List[Any]
    ) -> Tuple[np.ndarray, List[Any]]:
        """Rule slots by first encounter in ranking order — the exact
        assignment :meth:`repro.core.kernel.TableColumns.from_ranked`
        makes, so slot numbering (and thus factor-tree pairing) matches
        a cold prepare bit for bit."""
        slots = np.full(len(tids), -1, dtype=np.int64)
        rule_ids: List[Any] = []
        slot_of: Dict[Any, int] = {}
        rule_of = self._rule_of
        for position, tid in enumerate(tids):
            rule_id = rule_of.get(tid)
            if rule_id is None:
                continue
            slot = slot_of.get(rule_id)
            if slot is None:
                slot = len(rule_ids)
                slot_of[rule_id] = slot
                rule_ids.append(rule_id)
            slots[position] = slot
        return slots, rule_ids

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tids)

    @property
    def tids(self) -> List[Any]:
        """Tuple ids in ranking order (do not mutate)."""
        return self._tids

    def stats(self) -> dict:
        """Counters for ``/healthz`` and the registry's metrics."""
        return {
            "n": len(self._tids),
            "cap": self.cap,
            "version": self.version,
            "epoch": self.epoch,
            "clean": self._clean,
            "deltas_applied": self.deltas_applied,
            "suffix_reevaluated": self.suffix_reevaluated,
        }

    def _position_of(self, tid: Any) -> int:
        key = self._key_of[tid]
        position = bisect_left(self._keys, key)
        while self._tids[position] != tid:
            position += 1
        return position

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------
    def apply(self, delta: TableDelta) -> int:
        """Apply one committed mutation; returns the invalidated suffix
        length (0 when only metadata changed).  Column surgery happens
        here; DP re-pricing is deferred to the next read and bounded by
        its stop depth (see :meth:`scan_answer`).

        :raises StaleDeltaError: when the delta does not chain onto this
            index's ``(epoch, version)``.
        :raises UnsupportedDeltaError: when the mutation's effect on the
            ranked order cannot be reproduced without the table (sort-key
            collision on a score move); the index is left unchanged.
        """
        if delta.epoch != self.epoch or delta.previous_version != self.version:
            raise StaleDeltaError(
                f"index for {self.name!r} is at (epoch {self.epoch}, "
                f"version {self.version}); delta expects (epoch "
                f"{delta.epoch}, version {delta.previous_version})"
            )
        op = delta.op
        if op == "add":
            suffix = self._apply_add(delta)
        elif op == "remove":
            suffix = self._apply_remove(delta)
        elif op == "update":
            suffix = self._apply_probability(delta)
        elif op == "score":
            suffix = self._apply_score(delta)
        elif op == "rule":
            suffix = self._apply_rule(delta)
        else:
            raise UnsupportedDeltaError(
                f"unknown delta op {op!r} for table {self.name!r}"
            )
        self.version = delta.version
        self.deltas_applied += 1
        return suffix

    def _apply_add(self, delta: TableDelta) -> int:
        tid, score, probability = delta.tid, delta.score, delta.probability
        key = _sort_key(score, tid)
        # bisect_right: a freshly added tuple is the newest in insertion
        # order, so the stable ranking sort places it after any tuple
        # sharing its key.
        position = bisect_right(self._keys, key)
        self._tids.insert(position, tid)
        self._keys.insert(position, key)
        self._key_of[tid] = key
        new_score = np.insert(self._score, position, score)
        new_prob = np.insert(self._prob, position, probability)
        # An added tuple is always independent (rules attach separately),
        # so no slot renumbering: first-encounter order of the existing
        # members is untouched by an interleaved -1.
        new_slots = np.insert(self._slots, position, -1)
        return self._commit(new_score, new_prob, new_slots)

    def _apply_remove(self, delta: TableDelta) -> int:
        tid = delta.tid
        position = self._position_of(tid)
        del self._tids[position]
        del self._keys[position]
        del self._key_of[tid]
        new_score = np.delete(self._score, position)
        new_prob = np.delete(self._prob, position)
        rule_id = self._rule_of.pop(tid, None)
        if rule_id is None:
            new_slots = np.delete(self._slots, position)
            rule_ids = self._rule_ids
        else:
            # Mirror UncertainTable.remove_tuple's shrink semantics: a
            # rule reduced below two members is dropped and its survivor
            # becomes independent.  Either way the slot numbering can
            # shift (the removed member may have been its rule's first
            # encounter), so recompute slots from scratch.
            members = self._members[rule_id]
            members.remove(tid)
            if len(members) < 2:
                del self._members[rule_id]
                for survivor in members:
                    self._rule_of.pop(survivor, None)
            new_slots, rule_ids = self._compute_slots(self._tids)
        suffix = self._commit(new_score, new_prob, new_slots)
        self._rule_ids = rule_ids
        return suffix

    def _apply_probability(self, delta: TableDelta) -> int:
        position = self._position_of(delta.tid)
        new_prob = self._prob.copy()
        new_prob[position] = delta.probability
        return self._commit(self._score, new_prob, self._slots)

    def _apply_score(self, delta: TableDelta) -> int:
        tid, score = delta.tid, delta.score
        old_position = self._position_of(tid)
        new_key = _sort_key(score, tid)
        keys = self._keys[:old_position] + self._keys[old_position + 1 :]
        position = bisect_right(keys, new_key)
        if position > 0 and keys[position - 1] == new_key:
            # Another tuple holds the identical sort key.  The true
            # order among equals is table insertion order, which a score
            # update preserves and this index does not track — refuse
            # rather than guess (the registry rebuilds cold).
            raise UnsupportedDeltaError(
                f"score update of {tid!r} collides with an equal sort key "
                f"in table {self.name!r}; rebuilding from the table"
            )
        tids = self._tids[:old_position] + self._tids[old_position + 1 :]
        tids.insert(position, tid)
        keys.insert(position, new_key)
        new_score = np.insert(np.delete(self._score, old_position), position, score)
        new_prob = np.insert(
            np.delete(self._prob, old_position),
            position,
            self._prob[old_position],
        )
        self._tids = tids
        self._keys = keys
        self._key_of[tid] = new_key
        if tid in self._rule_of:
            # Moving a member can change its rule's first-encounter rank.
            new_slots, rule_ids = self._compute_slots(tids)
        else:
            new_slots = np.insert(
                np.delete(self._slots, old_position), position, -1
            )
            rule_ids = self._rule_ids
        suffix = self._commit(new_score, new_prob, new_slots)
        self._rule_ids = rule_ids
        return suffix

    def _apply_rule(self, delta: TableDelta) -> int:
        members = tuple(delta.members)
        if len(members) < 2:
            # Singleton rules don't enter the compressed DP (the table
            # registers them, the rule index ignores them).
            return self._commit(self._score, self._prob, self._slots)
        self._members[delta.rule_id] = list(members)
        for tid in members:
            self._rule_of[tid] = delta.rule_id
        new_slots, rule_ids = self._compute_slots(self._tids)
        suffix = self._commit(self._score, self._prob, new_slots)
        self._rule_ids = rule_ids
        return suffix

    # ------------------------------------------------------------------
    # Suffix re-evaluation
    # ------------------------------------------------------------------
    def _commit(
        self,
        new_score: np.ndarray,
        new_prob: np.ndarray,
        new_slots: np.ndarray,
    ) -> int:
        """Swap in the new columns and lower the clean watermark.

        Every ``W`` row is a pure function of the ``(probability,
        rule-slot)`` entries strictly before it, so the first rank where
        the old and new columns differ bounds the damage exactly.  No DP
        work happens here: the invalidated suffix is re-priced lazily —
        and only to the depth an answer actually needs — by
        :meth:`_ensure` on the next read.
        """
        old_prob, old_slots = self._prob, self._slots
        old_n = int(old_prob.shape[0])
        new_n = int(new_prob.shape[0])
        m = min(old_n, new_n)
        differs = np.flatnonzero(
            (old_prob[:m] != new_prob[:m]) | (old_slots[:m] != new_slots[:m])
        )
        start = int(differs[0]) if differs.size else m

        self._score = new_score
        self._prob = new_prob
        self._slots = new_slots
        self._clean = min(self._clean, start, new_n)
        if new_n != old_n:
            grown_W = np.empty((new_n, self.cap), dtype=np.float64)
            grown_W[: self._clean] = self._W[: self._clean]
            grown_units = np.empty(new_n, dtype=np.int64)
            grown_units[: self._clean] = self._units[: self._clean]
            self._W = grown_W
            self._units = grown_units
        self._out = None
        # Checkpoints past the watermark describe dead column state.
        del self._ckpts[self._clean // BLOCK + 1 :]
        return new_n - start

    def _ensure(self, stop: int) -> None:
        """Make rows ``[0, stop)`` of ``W``/``units`` valid."""
        stop = min(int(stop), int(self._prob.shape[0]))
        if self._clean < stop:
            self._rescan(self._clean, stop)

    def _rescan(self, start: int, stop: Optional[int] = None) -> None:
        """Re-run the cold scan loop over ranks ``[start, stop)``.

        Reseeds ``v_independent`` from the nearest checkpoint at or
        before ``start`` plus a bounded Theorem-2 replay, rebuilds the
        rule-factor tree from the (valid) prefix, then replicates
        :func:`~repro.core.kernel.columnar_topk_scan`'s per-position
        operation sequence exactly — writing state rows into ``W``
        instead of pricing tuples (pricing happens lazily per ``k`` in
        :meth:`topk_probabilities` / :meth:`scan_answer`).

        Stopping early and resuming later is bitwise-neutral: every
        kernel primitive involved (``dp_extend``, ``dp_extend_chain``)
        is a strict per-step recurrence, and a mid-run resume seeds from
        the stored predecessor row exactly as a mid-run mutation restart
        does.  Callers pass ``start == self._clean``; rows before it are
        valid by the watermark invariant.
        """
        n = int(self._prob.shape[0])
        if stop is None:
            stop = n
        cap = self.cap
        prob = self._prob
        slots_list = self._slots.tolist()

        # Chain seed for a mid-run restart: if the restart rank and its
        # predecessor are both independent they share a cold-scan run,
        # and the continuation row is the stored predecessor row pushed
        # one Theorem-2 step — bitwise the uninterrupted chain, which a
        # fresh v⊗root convolution is not.
        chain_seed: Optional[np.ndarray] = None
        if 0 < start < n and self._slots[start - 1] < 0 and self._slots[start] < 0:
            chain_seed = self._W[start - 1].copy()
            dp_extend(chain_seed, prob[start - 1 : start])

        # Reseed the independent-only DP vector from the last recorded
        # checkpoint, recording any boundaries the replay crosses (a
        # previous partial rescan may have stopped short of them).
        del self._ckpts[start // BLOCK + 1 :]
        base_block = len(self._ckpts) - 1
        v = self._ckpts[base_block].copy()
        position = base_block * BLOCK
        while position < start:
            boundary = min(start, (position // BLOCK + 1) * BLOCK)
            replay = np.flatnonzero(self._slots[position:boundary] < 0)
            if replay.size:
                dp_extend(v, prob[position:boundary][replay])
            position = boundary
            if position % BLOCK == 0 and position // BLOCK == len(self._ckpts):
                self._ckpts.append(v.copy())
        next_ckpt = len(self._ckpts) * BLOCK

        # Rebuild the rule-factor tree and per-rule member lists from
        # the prefix.  The tree is sized to the whole table's slot count
        # — pairing inside the tree affects product bit patterns, and
        # the cold scan sizes by total count.
        total_slots = int(self._slots.max()) + 1 if n else 0
        tree = _RuleFactorTree(total_slots if total_slots > 0 else 1, cap)
        prefix_slots = self._slots[:start]
        member_positions = np.flatnonzero(prefix_slots >= 0)
        rule_member_probs: Dict[int, List[float]] = {}
        for position in member_positions.tolist():
            rule_member_probs.setdefault(
                int(prefix_slots[position]), []
            ).append(float(prob[position]))
        rule_sum: Dict[int, float] = {}
        for slot, member_probs in rule_member_probs.items():
            seen_sum = compensated_sum(member_probs)
            rule_sum[slot] = seen_sum
            tree.update(slot, seen_sum if seen_sum < 1.0 else 1.0)
        unit_count = int(start - member_positions.size) + len(rule_member_probs)

        W = self._W
        units = self._units
        i = start
        while i < stop:
            while next_ckpt <= i:
                # Boundary inside a member stretch: v is untouched by
                # members, so the current vector is the boundary state.
                self._ckpts.append(v.copy())
                next_ckpt += BLOCK
            slot = slots_list[i]
            if slot < 0:
                j = i + 1
                while j < stop and slots_list[j] < 0:
                    j += 1
                if chain_seed is not None:
                    run_vector = chain_seed
                    chain_seed = None
                else:
                    run_vector = _combined(v, tree.root(), cap)
                block_start = i
                while block_start < j:
                    block_end = min(block_start + _RUN_BLOCK, j)
                    chain = dp_extend_chain(
                        run_vector, prob[block_start:block_end]
                    )
                    W[block_start:block_end] = chain[: block_end - block_start]
                    run_vector = chain[block_end - block_start]
                    block_start = block_end
                units[i:j] = np.arange(unit_count, unit_count + (j - i))
                fold_start = i
                while fold_start < j:
                    fold_end = min(j, next_ckpt)
                    dp_extend(v, prob[fold_start:fold_end])
                    fold_start = fold_end
                    if fold_start == next_ckpt:
                        self._ckpts.append(v.copy())
                        next_ckpt += BLOCK
                unit_count += j - i
                i = j
                continue
            chain_seed = None
            own_probability = float(prob[i])
            seen_sum = rule_sum.get(slot, 0.0)
            units[i] = unit_count - (1 if seen_sum > 0.0 else 0)
            W[i] = _combined(v, tree.product_excluding(slot), cap)
            member_probs = rule_member_probs.setdefault(slot, [])
            member_probs.append(own_probability)
            new_sum = compensated_sum(member_probs)
            rule_sum[slot] = new_sum
            tree.update(slot, new_sum if new_sum < 1.0 else 1.0)
            if seen_sum <= 0.0:
                unit_count += 1
            i += 1
        if stop >= n:
            while next_ckpt <= n:
                # Trailing boundaries past the last independent run: v
                # already holds the final state (see the member-stretch
                # argument above).
                self._ckpts.append(v.copy())
                next_ckpt += BLOCK
        self._clean = stop
        self.suffix_reevaluated += stop - start

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def topk_probabilities(self, k: int) -> np.ndarray:
        """The full ``Pr^k`` column in ranking order, bitwise equal to a
        cold :func:`~repro.core.kernel.columnar_topk_scan` at ``k``.

        Cached until the next delta.  Treat the returned array as
        immutable.

        :raises QueryError: for non-positive ``k``.
        :raises UnsupportedDeltaError: for any ``k`` other than this
            index's own cap — each index is exact at exactly one ``k``
            (callers route other values to a sibling index or a cold
            scan).
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        if k != self.cap:
            raise UnsupportedDeltaError(
                f"index for table {self.name!r} serves k={self.cap} "
                f"only, got k={k}"
            )
        if self._out is not None:
            return self._out
        self._ensure(len(self._tids))
        out = self._prob * fewer_than_k_batch(self._W, k)
        # The cold kernel serves positions whose dominant set holds
        # fewer than k units the literal constant — Pr(|T(t)| < k) is
        # *exactly* 1 there, not a row sum an ulp below it.
        shallow = self._units < k
        out[shallow] = self._prob[shallow]
        self._out = out
        return out

    def scan_answer(
        self, k: int, threshold: float
    ) -> Tuple[List[Any], Dict[Any, float], int]:
        """The PT-k answer with Theorem-5-bounded depth.

        Reveals the ``Pr^k`` column in ranking order — re-pricing lazy
        rows in :data:`ANSWER_CHUNK` steps — and stops as soon as the
        compensated running mass exceeds ``k - threshold``: by
        Theorem 5 (``sum_t Pr^k(t) = E[min(k, |W|)] <= k``) no deeper
        tuple can reach the threshold.  This is the same stop rule
        (and the same :class:`~repro.core.kernel.RunningSum`
        accumulator) the exact engine's pruned scan applies, so a
        mutation *below* the stop depth costs no DP work at all here.

        :returns: ``(answer tids in ranking order, tid -> Pr^k for the
            scanned prefix, stop depth)``.  The scanned values are
            bitwise the cold full-column values; the answer set equals
            the full column's threshold set.  Empty for the full-scan
            sentinel ``threshold == 0.0``, matching the exact engine.
        :raises UnsupportedDeltaError: for ``k != cap`` (see
            :meth:`topk_probabilities`).
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        if k != self.cap:
            raise UnsupportedDeltaError(
                f"index for table {self.name!r} serves k={self.cap} "
                f"only, got k={k}"
            )
        answers: List[Any] = []
        probabilities: Dict[Any, float] = {}
        if threshold == 0.0:
            return answers, probabilities, 0
        n = len(self._tids)
        limit = k - threshold
        mass = RunningSum()
        depth = 0
        while depth < n:
            chunk_stop = min(n, depth + ANSWER_CHUNK)
            if self._out is not None:
                out = self._out[depth:chunk_stop]
            else:
                self._ensure(chunk_stop)
                out = self._prob[depth:chunk_stop] * fewer_than_k_batch(
                    self._W[depth:chunk_stop], k
                )
                shallow = self._units[depth:chunk_stop] < k
                out[shallow] = self._prob[depth:chunk_stop][shallow]
            for offset, value in enumerate(out.tolist()):
                tid = self._tids[depth + offset]
                probabilities[tid] = value
                if value >= threshold:
                    answers.append(tid)
                mass.add(value)
                if mass.value > limit:
                    return answers, probabilities, depth + offset + 1
            depth = chunk_stop
        return answers, probabilities, depth

    def answer_tids(self, k: int, threshold: float) -> List[Any]:
        """Tuple ids with ``Pr^k >= threshold``, in ranking order — the
        PT-k answer set (empty for the full-scan sentinel 0.0, matching
        the exact engine's convention)."""
        if threshold == 0.0:
            return []
        out = self.topk_probabilities(k)
        return [self._tids[i] for i in np.flatnonzero(out >= threshold).tolist()]

    def probabilities_map(self, k: int) -> Dict[Any, float]:
        """``tid -> Pr^k`` for every tuple, in ranking order."""
        out = self.topk_probabilities(k)
        return dict(zip(self._tids, out.tolist()))
