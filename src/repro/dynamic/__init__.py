"""``repro.dynamic`` — incremental PT-k maintenance under point mutations.

Turns WAL mutations into answer *deltas* instead of cache
invalidations: a :class:`~repro.dynamic.index.DynamicIndex` keeps the
ranked order and per-rank DP state of the columnar full scan and
re-evaluates only the suffix a mutation can affect, a
:class:`~repro.dynamic.registry.DynamicIndexRegistry` routes committed
:class:`~repro.dynamic.delta.TableDelta` records from the write path to
the indexes and serves byte-exact ``Pr^k`` answers from them, and
:func:`~repro.dynamic.refresh.refresh_prepared` advances warm prepared
rankings in place so the prepare cache stops cold-starting on every
write.  See ``docs/dynamic.md`` for the design and its fallback
conditions.
"""

from repro.dynamic.delta import DELTA_OPS, TableDelta, delta_from_record
from repro.dynamic.index import DEFAULT_CAP, DynamicIndex
from repro.dynamic.refresh import DEFAULT_SHAPE_KEY, refresh_prepared
from repro.dynamic.registry import DEFAULT_MAX_BACKLOG, DynamicIndexRegistry

__all__ = [
    "DELTA_OPS",
    "DEFAULT_CAP",
    "DEFAULT_MAX_BACKLOG",
    "DEFAULT_SHAPE_KEY",
    "DynamicIndex",
    "DynamicIndexRegistry",
    "TableDelta",
    "delta_from_record",
    "refresh_prepared",
]
