"""Table deltas: the unit of change the incremental PT-k index consumes.

A :class:`TableDelta` is a *descriptive* record of one committed table
mutation — which operation ran, which tuple or rule it touched, and the
``(epoch, version)`` pair that places it in the table's mutation
history.  Deltas are emitted by :class:`~repro.query.engine.UncertainDB`
mutation methods after the table layer has validated and applied the
change (so a delta always describes a mutation that *succeeded*), ride
alongside the WAL record in :class:`~repro.durable.db.DurableDB`, and
are reconstructed on replicas from the shipped WAL stream
(:func:`delta_from_record`) — the primary's index and every replica's
index consume the same logical delta sequence.

Versioning contract: ``previous_version`` is the table version the
mutation was applied against and ``version`` the version it produced.
The index applies a delta only when its own version equals
``previous_version``; any gap means deltas were lost and the consumer
must rebuild from the table instead
(:class:`~repro.exceptions.StaleDeltaError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Mutation operations a delta can describe.  The vocabulary matches the
#: WAL record ops of :mod:`repro.durable.wal` (``update`` is a
#: probability update), plus ``score`` for the score-update mutation.
DELTA_OPS = ("add", "remove", "update", "score", "rule")


@dataclass(frozen=True)
class TableDelta:
    """One committed single-tuple (or single-rule) table mutation.

    :param table: registered table name the mutation applies to.
    :param op: one of :data:`DELTA_OPS`.
    :param previous_version: table version the mutation was applied
        against.
    :param version: table version after the mutation.
    :param epoch: registration epoch of the table at emission time;
        deltas stamped under an older epoch than the index's are stale
        by definition (the table was re-registered in between).
    :param tid: the tuple id (``add`` / ``remove`` / ``update`` /
        ``score``).
    :param score: the tuple's score (``add``) or new score (``score``).
    :param probability: the tuple's membership probability (``add``) or
        new probability (``update``).
    :param attributes: the tuple's attribute payload (``add`` only).
    :param rule_id: the generation rule id (``rule`` only).
    :param members: the rule's member tuple ids (``rule`` only).
    """

    table: str
    op: str
    previous_version: int
    version: int
    epoch: int = 0
    tid: Any = None
    score: Optional[float] = None
    probability: Optional[float] = None
    attributes: Any = None
    rule_id: Any = None
    members: Tuple[Any, ...] = field(default=())

    def describe(self) -> dict:
        """Compact dict form for logs and ``/debug`` payloads."""
        body: dict = {
            "table": self.table,
            "op": self.op,
            "previous_version": self.previous_version,
            "version": self.version,
            "epoch": self.epoch,
        }
        if self.tid is not None:
            body["tid"] = self.tid
        if self.rule_id is not None:
            body["rule_id"] = self.rule_id
        return body


def delta_from_record(
    record: Dict[str, Any], *, epoch: int = 0
) -> Optional[TableDelta]:
    """Reconstruct the :class:`TableDelta` described by one WAL record.

    The replica-side twin of the primary's in-process delta emission:
    after :func:`repro.durable.recover.apply_record` applies a shipped
    record, the applier feeds the equivalent delta to its dynamic
    registry, so a replica's index advances through the same state
    sequence as the primary's without ever rebuilding from scratch.

    :param record: a decoded WAL record dict (``op`` / ``table`` /
        ``version`` plus op-specific fields; tids in the WAL's encoded
        form).
    :param epoch: the registry epoch to stamp onto the delta.
    :returns: the delta, or ``None`` for record types that do not
        mutate tuple/rule state (``register`` / ``drop`` / ``serve``).
    """
    from repro.durable.wal import decode_tid

    op = record.get("op")
    if op not in DELTA_OPS:
        return None
    version = int(record["version"])
    base: Dict[str, Any] = dict(
        table=record["table"],
        op=op,
        previous_version=version - 1,
        version=version,
        epoch=epoch,
    )
    if op == "add":
        return TableDelta(
            tid=decode_tid(record["tid"]),
            score=float(record["score"]),
            probability=float(record["probability"]),
            attributes=record.get("attributes") or None,
            **base,
        )
    if op == "remove":
        return TableDelta(tid=decode_tid(record["tid"]), **base)
    if op == "update":
        return TableDelta(
            tid=decode_tid(record["tid"]),
            probability=float(record["probability"]),
            **base,
        )
    if op == "score":
        return TableDelta(
            tid=decode_tid(record["tid"]),
            score=float(record["score"]),
            **base,
        )
    return TableDelta(
        rule_id=record["rule_id"],
        members=tuple(decode_tid(m) for m in record["members"]),
        **base,
    )
