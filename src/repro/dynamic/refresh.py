"""In-place refresh of warm :class:`~repro.query.prepare.PreparedRanking`\\ s.

The prepare cache keys entries by table *version*, so before this
module every mutation condemned every warm preparation: the next read
paid selection + sort + rule indexing again even though a point
mutation moves at most one rank.  :func:`refresh_prepared` advances a
default-shape preparation (trivial predicate, rank by score descending)
across one :class:`~repro.dynamic.delta.TableDelta` by ranked-tuple
surgery — a binary-searched insert/delete/replace instead of an
``O(n log n)`` re-sort — producing exactly the object
:func:`~repro.query.prepare.prepare_ranking` would build against the
mutated table.

The rule index and rule probabilities are recomputed from the table
(``O(rule members)``, they are cheap and entangled with shrink
semantics); the dense columns are left to the preparation's lazy
``cached_property``.  A refresh that cannot guarantee the exact cold
order (a sort-key collision on a score move, where the true order among
equals is table insertion order) returns ``None`` and the entry dies by
ordinary version purge — never a wrong order.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple

from repro.model.table import UncertainTable
from repro.query.prepare import PreparedRanking

from repro.dynamic.delta import TableDelta

#: The cache key of the one query shape refresh understands: trivial
#: predicate, rank by score descending (the serving layer's default).
DEFAULT_SHAPE_KEY = (("always",), ("score", True))


def _sort_key(tup: Any) -> Tuple[float, str]:
    return (-tup.score, str(tup.tid))


def _index_of(ranked: List[Any], tid: Any) -> Optional[int]:
    for position, existing in enumerate(ranked):
        if existing.tid == tid:
            return position
    return None


def refresh_prepared(
    prepared: PreparedRanking,
    table: UncertainTable,
    delta: TableDelta,
) -> Optional[PreparedRanking]:
    """Advance one default-shape preparation across one delta.

    :param prepared: a preparation of ``table`` at
        ``delta.previous_version`` with the trivial predicate (so
        ``prepared.table is table``).
    :param table: the table the delta has already been applied to.
    :param delta: the committed mutation.
    :returns: the refreshed preparation at ``delta.version``, or
        ``None`` when the refresh cannot reproduce the exact cold
        ranking (the caller drops the entry instead).
    """
    if prepared.source_version != delta.previous_version:
        return None
    ranked = list(prepared.ranked)
    op = delta.op
    if op == "add":
        tup = table.get(delta.tid)
        key = _sort_key(tup)
        # bisect_right: the fresh tuple is newest in insertion order, so
        # the stable ranking sort places it after any equal key.
        keys = [_sort_key(t) for t in ranked]
        ranked.insert(bisect_right(keys, key), tup)
    elif op == "remove":
        position = _index_of(ranked, delta.tid)
        if position is None:
            return None
        del ranked[position]
    elif op == "update":
        tup = table.get(delta.tid)
        position = _index_of(ranked, delta.tid)
        if position is None:
            return None
        ranked[position] = tup
    elif op == "score":
        tup = table.get(delta.tid)
        old_position = _index_of(ranked, delta.tid)
        if old_position is None:
            return None
        del ranked[old_position]
        key = _sort_key(tup)
        keys = [_sort_key(t) for t in ranked]
        position = bisect_right(keys, key)
        if position > 0 and keys[position - 1] == key:
            # Equal sort key held by another tuple: the cold order among
            # equals is insertion order, which surgery cannot see.
            return None
        ranked.insert(position, tup)
    elif op == "rule":
        pass  # ranks unchanged; only the rule index below moves
    else:
        return None
    from repro.core.rule_compression import rule_index_of_table

    rule_of = rule_index_of_table(table)
    rule_probability: Dict[Any, float] = {}
    for rule in rule_of.values():
        if rule.rule_id not in rule_probability:
            rule_probability[rule.rule_id] = table.rule_probability(rule)
    return PreparedRanking(
        table=prepared.table,
        ranked=tuple(ranked),
        rule_of=rule_of,
        rule_probability=rule_probability,
        source_version=delta.version,
        predicate=prepared.predicate,
        ranking=prepared.ranking,
    )
