"""repro.replication — WAL-shipping replication for horizontal read scale.

The first multi-process topology in the codebase: one primary
:class:`~repro.durable.db.DurableDB` owns writes and streams its
write-ahead log to N read replicas over the existing ``repro.serve``
transport (loopback in tests, TCP in deployments).

* :mod:`repro.replication.primary` — :class:`ReplicationServer`: serves
  WAL ranges from a replica cursor, pins segment retention so
  compaction never deletes what a live replica needs, and serves full
  bootstrap documents.
* :mod:`repro.replication.replica` — :class:`ReplicaApplier`: feeds
  shipped records through the recovery path (idempotent, epoch-gated,
  exact ``table.version``) so replica PT-k answers are byte-identical
  at equal versions; :class:`ReplicationFollower`: the polling driver;
  :func:`promote_data_dir`: failover promotion with epoch fencing.

::

    # primary
    db = DurableDB("state/", max_segment_bytes=4 << 20)
    app = ServeApp(db, config, replication=ReplicationServer(db))

    # replica
    applier = ReplicaApplier("state-r1/")
    follower = ReplicationFollower(
        applier, ServeClient.connect(host, port)
    ).start()
    app = ServeApp(applier.db, config, replication=applier)

    # failover
    follower.stop(); promote_data_dir("state-r1/")

See ``docs/replication.md`` for topology, cursor and staleness
semantics, and the promotion runbook.
"""

from repro.replication.primary import ReplicaState, ReplicationServer
from repro.replication.replica import (
    PromotionReport,
    ReplicaApplier,
    ReplicationFollower,
    promote_data_dir,
)

__all__ = [
    "PromotionReport",
    "ReplicaApplier",
    "ReplicaState",
    "ReplicationFollower",
    "ReplicationServer",
    "promote_data_dir",
]
