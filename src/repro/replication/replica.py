"""Replica-side replication: applying the shipped WAL, bounded staleness,
and promotion.

A :class:`ReplicaApplier` owns a plain
:class:`~repro.query.engine.UncertainDB` and feeds every shipped record
through :func:`repro.durable.recover.apply_record` — the same
version-gated, epoch-aware, idempotent path crash recovery uses.  That
reuse is the correctness story: a record is applied exactly when
recovery would apply it, each table's ``version`` tracks the primary's
exactly, and therefore the replica's :class:`PrepareCache` (keyed on
``(table, version)``) can never serve a stale preparation — a replica at
the same table version returns byte-identical PT-k answers to the
primary.

With a ``data_dir`` the applier is itself durable: every received record
is appended to a *local* WAL before it is applied, and the cursor is
persisted (atomically) to ``replica.json`` after each batch, so a
restarted replica resumes from its own disk instead of re-bootstrapping.
A bootstrap additionally writes snapshot images so the received table
documents survive without their register records.  Because the local
journal is just a WAL and replay is idempotent, the crash window between
"record journalled" and "cursor persisted" only causes harmless
re-fetches.

:class:`ReplicationFollower` is the polling driver: it fetches batches
from the primary over a :class:`~repro.serve.client.ServeClient`
(loopback or TCP), re-bootstraps on ``410 cursor-lost``, counts
reconnects, and runs in a daemon thread next to the replica's
:class:`~repro.serve.server.ServeApp`.

:func:`promote_data_dir` is failover: it recovers the replica's local
state as a :class:`~repro.durable.db.DurableDB`, **fences** the old
epoch (:meth:`~repro.durable.db.DurableDB.fence` bumps every table's
registration epoch and journals fresh full register records), and
snapshots.  After fencing, ``(epoch, version)`` precedence guarantees
nothing from the dead primary's lineage can ever supersede the promoted
tables.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.durable.db import DurableDB
from repro.durable.recover import apply_record, recover_state
from repro.dynamic.delta import delta_from_record
from repro.durable.snapshot import write_snapshot
from repro.durable.stream import WalCursor
from repro.durable.wal import WriteAheadLog
from repro.exceptions import RecoveryError, ReplicationError
from repro.io.jsonio import table_from_dict
from repro.obs import OBS, catalogued, span as obs_span
from repro.query.engine import UncertainDB

#: Default size-based rotation for the replica's local WAL (bytes).
REPLICA_SEGMENT_BYTES = 4 * 1024 * 1024

#: Name of the replica's persisted cursor marker inside its data_dir.
MARKER_NAME = "replica.json"


class ReplicaApplier:
    """Applies shipped WAL records and reports client-visible staleness.

    :param data_dir: optional local persistence root (local WAL + cursor
        marker + bootstrap snapshots).  Without it the replica is purely
        in-memory and re-bootstraps on every restart.
    :param replica_id: stable identity announced to the primary; one is
        generated (and persisted, with a ``data_dir``) when omitted.
    :param fsync: fsync policy of the local WAL (default ``off`` — the
        primary owns durability; a replica that loses its tail merely
        re-fetches).
    """

    role = "replica"

    def __init__(
        self,
        data_dir: Optional[Union[str, Path]] = None,
        replica_id: Optional[str] = None,
        fsync: str = "off",
        max_segment_bytes: Optional[int] = REPLICA_SEGMENT_BYTES,
    ) -> None:
        self.db = UncertainDB()
        self._tables: Dict[str, Any] = {}
        self._epochs: Dict[str, int] = {}
        # The replica's registration epochs live here, not on the
        # engine; shadowing the epoch hook keeps delta ``(epoch,
        # version)`` stamps consistent between primary and replica
        # when the replica enables its own dynamic indexes.
        self.db._dynamic_epoch = lambda name: self._epochs.get(name, 0)
        self.cursor = WalCursor()
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.local_wal: Optional[WriteAheadLog] = None
        self.applied_records = 0
        self.skipped_records = 0
        self.serve_records = 0
        self.batches = 0
        self.bootstraps = 0
        self.caught_up = False
        self.lag_bytes: Optional[int] = None
        self.lag_records: Optional[int] = None
        self._last_contact: Optional[float] = None
        self._last_caught_up: Optional[float] = None
        self._lock = threading.RLock()
        stored_id: Optional[str] = None
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
            tables, report = recover_state(self.data_dir)
            for name, table in tables.items():
                self._tables[name] = table
                self.db.register(table, name=name)
            self._epochs = dict(report.epochs)
            marker = self._read_marker()
            if marker is not None:
                self.cursor = WalCursor.decode(marker.get("cursor", "0:0"))
                stored_id = marker.get("replica_id")
            self.local_wal = WriteAheadLog(
                self.data_dir / "wal",
                fsync=fsync,
                max_segment_bytes=max_segment_bytes,
            )
        self.replica_id = (
            replica_id or stored_id or f"replica-{uuid.uuid4().hex[:10]}"
        )
        if self.data_dir is not None:
            self._write_marker()

    # ------------------------------------------------------------------
    # Applying the stream
    # ------------------------------------------------------------------
    def apply_batch(self, payload: Dict[str, Any]) -> int:
        """Journal and apply one fetched batch; returns records applied.

        Records flow through :func:`repro.durable.recover.apply_record`
        — idempotent, version-gated, epoch-aware — after being appended
        to the local WAL (journal first, apply second: a crash in
        between is recovered by the idempotent replay).

        :raises RecoveryError: on a version gap (records were missed);
            the follower reacts by re-bootstrapping.
        """
        records = payload.get("records", [])
        started = time.perf_counter()
        applied = skipped = 0
        with self._lock, obs_span("repl.apply", records=len(records)):
            for record in records:
                if self.local_wal is not None:
                    self.local_wal.append(record)
                op = record.get("op")
                if op == "serve":
                    # Serve keys are prepare-cache warm-start hints; a
                    # replica warms its cache from its own traffic.
                    self.serve_records += 1
                    continue
                name = record.get("table")
                changed = apply_record(self._tables, record, self._epochs)
                if changed:
                    applied += 1
                    if op == "register":
                        # apply_record replaced the table object; swap
                        # the registry to match (drop invalidates the
                        # old object's prepare-cache entries).
                        if name in self.db.tables():
                            self.db.drop(name)
                        self.db.register(self._tables[name], name=name)
                    elif op == "drop":
                        if name in self.db.tables():
                            self.db.drop(name)
                    else:
                        # In-place mutations need no registry surgery
                        # (the table object is shared and its version
                        # bump keeps the prepare cache sound) — but the
                        # same delta the primary emitted advances warm
                        # preparations and the dynamic indexes here,
                        # so a replica read after apply is served from
                        # refreshed state, not a cold re-prepare.
                        delta = delta_from_record(
                            record, epoch=self._epochs.get(name, 0)
                        )
                        if delta is not None:
                            table = self._tables[name]
                            self.db.prepare_cache.refresh(table, delta)
                            if self.db.dynamic is not None:
                                self.db.dynamic.enqueue(delta)
                else:
                    skipped += 1
            if "cursor" in payload:
                self.cursor = WalCursor.decode(payload["cursor"])
            now = time.monotonic()
            self._last_contact = now
            self.caught_up = bool(payload.get("caught_up", False))
            if self.caught_up:
                self._last_caught_up = now
            self.lag_bytes = payload.get("pending_bytes")
            self.lag_records = payload.get("pending_records")
            self.applied_records += applied
            self.skipped_records += skipped
            self.batches += 1
            self._write_marker()
        if OBS.enabled:
            if applied:
                catalogued("repro_repl_records_applied_total").inc(
                    applied, outcome="applied"
                )
            if skipped:
                catalogued("repro_repl_records_applied_total").inc(
                    skipped, outcome="skipped"
                )
            catalogued("repro_repl_apply_seconds").observe(
                time.perf_counter() - started
            )
            self._export_gauges()
        return applied

    def bootstrap(self, payload: Dict[str, Any]) -> int:
        """Replace all local state with a primary bootstrap document.

        Installs each table at its exact ``(epoch, version)``, persists
        snapshot images (so the state survives a restart without its
        register records), and adopts the primary's cursor.

        :returns: the number of tables installed.
        """
        with self._lock, obs_span("repl.bootstrap_apply"):
            for name in list(self.db.tables()):
                self.db.drop(name)
            self._tables.clear()
            self._epochs = {
                str(name): int(epoch)
                for name, epoch in payload.get("epochs", {}).items()
            }
            for name, entry in payload.get("tables", {}).items():
                table = table_from_dict(entry["doc"])
                table._version = int(entry["version"])
                self._epochs.setdefault(name, int(entry.get("epoch", 0)))
                self._tables[name] = table
                self.db.register(table, name=name)
                if self.data_dir is not None:
                    write_snapshot(
                        table,
                        self.data_dir / "snapshots",
                        name=name,
                        epoch=int(entry.get("epoch", 0)),
                    )
            self.cursor = WalCursor.decode(payload["cursor"])
            self.bootstraps += 1
            self.caught_up = True
            now = time.monotonic()
            self._last_contact = now
            self._last_caught_up = now
            self._write_marker()
        if OBS.enabled:
            self._export_gauges()
        return len(self._tables)

    def epochs(self) -> Dict[str, int]:
        """Registration epochs of the replicated tables (serve layer)."""
        with self._lock:
            return dict(self._epochs)

    # ------------------------------------------------------------------
    # Staleness
    # ------------------------------------------------------------------
    def staleness_seconds(self) -> Optional[float]:
        """Seconds since the replica last confirmed it was caught up.

        ``None`` means "never synced" (unbounded staleness).  Even a
        caught-up replica's staleness grows between polls — it is the
        honest bound on how old a read served *now* can be.
        """
        with self._lock:
            if self._last_caught_up is None:
                return None
            return max(0.0, time.monotonic() - self._last_caught_up)

    def staleness(self) -> Dict[str, Any]:
        """The client-visible staleness block (response field + headers)."""
        with self._lock:
            seconds = self.staleness_seconds()
            return {
                "cursor": self.cursor.encode(),
                "caught_up": self.caught_up,
                "lag_bytes": self.lag_bytes,
                "lag_records": self.lag_records,
                "staleness_seconds": (
                    round(seconds, 6) if seconds is not None else None
                ),
            }

    def status(self) -> Dict[str, Any]:
        """Operator view for ``/healthz`` and ``/replicate/status``."""
        with self._lock:
            report = self.staleness()
            report.update(
                {
                    "role": self.role,
                    "replica_id": self.replica_id,
                    "applied_records": self.applied_records,
                    "skipped_records": self.skipped_records,
                    "serve_records": self.serve_records,
                    "batches": self.batches,
                    "bootstraps": self.bootstraps,
                    "persistent": self.data_dir is not None,
                    "tables": {
                        name: {
                            "version": self._tables[name].version,
                            "epoch": self._epochs.get(name, 0),
                        }
                        for name in sorted(self._tables)
                    },
                }
            )
        return report

    def _export_gauges(self) -> None:
        seconds = self.staleness_seconds()
        if self.lag_bytes is not None:
            catalogued("repro_repl_lag_bytes").set(self.lag_bytes)
        if self.lag_records is not None:
            catalogued("repro_repl_lag_records").set(self.lag_records)
        if seconds is not None:
            catalogued("repro_repl_staleness_seconds").set(seconds)

    # ------------------------------------------------------------------
    # Local persistence
    # ------------------------------------------------------------------
    def _marker_path(self) -> Path:
        return self.data_dir / MARKER_NAME

    def _read_marker(self) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self._marker_path().read_text("utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def _write_marker(self) -> None:
        if self.data_dir is None:
            return
        marker = {
            "cursor": self.cursor.encode(),
            "replica_id": self.replica_id,
        }
        tmp = self._marker_path().with_suffix(".json.tmp")
        tmp.write_text(json.dumps(marker, sort_keys=True), "utf-8")
        os.replace(tmp, self._marker_path())

    def close(self) -> None:
        """Persist the cursor and close the local WAL."""
        with self._lock:
            self._write_marker()
            if self.local_wal is not None:
                self.local_wal.close()


class ReplicationFollower:
    """Polls a primary and drives a :class:`ReplicaApplier`.

    :param applier: the replica state machine.
    :param client: a :class:`~repro.serve.client.ServeClient` pointed at
        the primary (loopback or TCP).
    :param poll_interval: sleep between polls once caught up; while
        behind, the follower polls back-to-back.
    :param advertise: this replica's own serving address, reported to
        the primary so clients can discover read endpoints.
    """

    def __init__(
        self,
        applier: ReplicaApplier,
        client: Any,
        poll_interval: float = 0.1,
        max_records: Optional[int] = None,
        max_bytes: Optional[int] = None,
        advertise: Optional[str] = None,
    ) -> None:
        self.applier = applier
        self.client = client
        self.poll_interval = float(poll_interval)
        self.max_records = max_records
        self.max_bytes = max_bytes
        self.advertise = advertise
        self.polls = 0
        self.reconnects = 0
        self.last_error: Optional[str] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def poll_once(self) -> int:
        """One fetch/apply cycle; returns records applied.

        Bootstraps on first contact with no local state, on ``410``
        (cursor lost to compaction), and on a version gap (records
        missed) — every path converges back to streaming.
        """
        from repro.serve.client import ServeClientError

        if self.applier.cursor.is_zero and not self.applier.db.tables():
            self._bootstrap()
            return 0
        try:
            payload = self.client.fetch_wal(
                cursor=self.applier.cursor.encode(),
                replica=self.applier.replica_id,
                max_records=self.max_records,
                max_bytes=self.max_bytes,
                advertise=self.advertise,
            )
        except ServeClientError as error:
            if error.status == 410:
                self._bootstrap()
                return 0
            raise
        self.polls += 1
        try:
            return self.applier.apply_batch(payload)
        except RecoveryError as error:
            # A version gap means records were missed; local state is
            # suspect — resync from a full snapshot.
            self.last_error = str(error)
            self._bootstrap()
            return 0

    def _bootstrap(self) -> None:
        payload = self.client.bootstrap(replica=self.applier.replica_id)
        self.applier.bootstrap(payload)

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Poll until :meth:`stop` — transient errors count as reconnects."""
        from repro.serve.client import ServeClientError

        while not self._stop.is_set():
            try:
                self.poll_once()
            except (OSError, ServeClientError, ReplicationError) as error:
                self.reconnects += 1
                self.last_error = str(error)
                if OBS.enabled:
                    catalogued("repro_repl_reconnects_total").inc()
                self._stop.wait(self.poll_interval)
                continue
            if self.applier.caught_up:
                self._stop.wait(self.poll_interval)

    def start(self) -> "ReplicationFollower":
        """Run :meth:`run` in a daemon thread (restartable after stop)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run,
            name=f"repro-repl-{self.applier.replica_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def wait_caught_up(self, timeout: float = 30.0) -> bool:
        """Block until the applier reports caught-up (True) or timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.applier.caught_up:
                return True
            time.sleep(0.01)
        return bool(self.applier.caught_up)


@dataclass
class PromotionReport:
    """What :func:`promote_data_dir` did."""

    data_dir: Path
    tables: Dict[str, int] = field(default_factory=dict)  # name -> version
    old_epochs: Dict[str, int] = field(default_factory=dict)
    new_epochs: Dict[str, int] = field(default_factory=dict)
    snapshots: List[Path] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "data_dir": str(self.data_dir),
            "tables": dict(self.tables),
            "old_epochs": dict(self.old_epochs),
            "new_epochs": dict(self.new_epochs),
            "snapshots": [str(path) for path in self.snapshots],
        }


def promote_data_dir(
    data_dir: Union[str, Path],
    snapshot: bool = True,
    fsync: str = "always",
) -> PromotionReport:
    """Promote a (stopped) replica's data directory to primary lineage.

    Recovers the local state, fences the old epoch (every table's
    registration epoch is bumped and re-journalled with its full
    document), optionally checkpoints, and removes the replica marker.
    The directory can then be served with ``repro replicate primary``
    — and the dead primary's state, at equal or higher versions but a
    lower epoch, can never supersede it.

    The replica's follower must be stopped first: promotion opens the
    directory exclusively as a :class:`~repro.durable.db.DurableDB`.

    :raises ReplicationError: when the directory holds no tables.
    """
    data_dir = Path(data_dir)
    db = DurableDB(data_dir, fsync=fsync, warm_start=False)
    try:
        if not db.tables():
            raise ReplicationError(
                f"nothing to promote: no tables recovered from {data_dir}"
            )
        report = PromotionReport(
            data_dir=data_dir,
            old_epochs=db.epochs(),
            tables={name: db.table(name).version for name in db.tables()},
        )
        report.new_epochs = db.fence()
        if snapshot:
            report.snapshots = db.snapshot()
    finally:
        db.close()
    marker = data_dir / MARKER_NAME
    if marker.exists():
        marker.unlink()
    return report
