"""Primary-side replication: serving WAL ranges with retention pinning.

A :class:`ReplicationServer` wraps the primary's
:class:`~repro.durable.db.DurableDB` and answers three requests (carried
over the ``repro.serve`` transport by :class:`~repro.serve.server.ServeApp`
as ``GET /replicate/wal``, ``GET /replicate/bootstrap`` and
``GET /replicate/status``):

* **fetch** — a bounded batch of WAL records after a replica's cursor
  (:func:`repro.durable.stream.read_from`), plus the primary's end
  cursor and lag figures so the replica can report client-visible
  staleness;
* **bootstrap** — full table documents with exact versions and epochs,
  stamped with the WAL cursor captured *before* serialisation, so the
  version-gated idempotent replay absorbs any records that race in
  between;
* **status** — per-replica cursors, lag, and retention pins for
  operators and the failover runbook.

Retention pinning is the crash-consistency contract with compaction:
before reading, each fetch pins the replica's cursor sequence on the
WAL (:meth:`~repro.durable.wal.WriteAheadLog.pin_segments`), so a
concurrently running ``snapshot()`` can never delete a segment the
replica still needs.  Pins expire with their replica: one that has not
fetched for ``retention_ttl`` seconds is pruned and its segments become
collectable again (it will re-bootstrap if it ever comes back).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.durable.stream import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_RECORDS,
    WalCursor,
    count_records_from,
    pending_bytes_from,
    read_from,
)
from repro.exceptions import CursorLostError, ReplicationError
from repro.io.jsonio import table_to_dict
from repro.obs import OBS, catalogued, span as obs_span

#: Replicas silent for this long lose their retention pin (seconds).
DEFAULT_RETENTION_TTL = 600.0

#: Cap on per-replica lag-in-records counting (a frame walk per probe).
DEFAULT_COUNT_LIMIT = 4096


@dataclass
class ReplicaState:
    """What the primary remembers about one replica."""

    cursor: WalCursor = field(default_factory=WalCursor)
    last_seen: float = 0.0  # monotonic
    fetches: int = 0
    records_shipped: int = 0
    bytes_shipped: int = 0
    bootstraps: int = 0
    caught_up: bool = False
    advertise: Optional[str] = None  # replica's serving address, if any


class ReplicationServer:
    """The primary's half of WAL-shipping replication.

    :param db: the primary :class:`~repro.durable.db.DurableDB` — its
        WAL is the replication stream.
    :param retention_ttl: seconds of replica silence before its
        retention pin is dropped.
    :param max_records: default per-fetch record cap.
    :param max_bytes: default per-fetch byte cap.
    :param count_limit: cap on lag-in-records counting per probe.
    """

    role = "primary"

    def __init__(
        self,
        db: Any,
        retention_ttl: float = DEFAULT_RETENTION_TTL,
        max_records: int = DEFAULT_MAX_RECORDS,
        max_bytes: int = DEFAULT_MAX_BYTES,
        count_limit: int = DEFAULT_COUNT_LIMIT,
    ) -> None:
        wal = getattr(db, "wal", None)
        if wal is None or not hasattr(db, "epochs"):
            raise ReplicationError(
                "a replication primary requires a DurableDB (journalled, "
                f"with a WAL); got {type(db).__name__}"
            )
        self.db = db
        self.retention_ttl = float(retention_ttl)
        self.max_records = int(max_records)
        self.max_bytes = int(max_bytes)
        self.count_limit = int(count_limit)
        self._replicas: Dict[str, ReplicaState] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Cursor helpers
    # ------------------------------------------------------------------
    def end_cursor(self) -> WalCursor:
        """The cursor one past the last durable record (lock-consistent)."""
        sequence, offset = self.db.wal.position()
        return WalCursor(sequence, offset)

    @staticmethod
    def _pin_token(replica_id: str) -> str:
        return f"replica:{replica_id}"

    def _table_meta(self) -> Dict[str, Dict[str, int]]:
        epochs = self.db.epochs()
        return {
            name: {
                "version": self.db.table(name).version,
                "epoch": epochs.get(name, 0),
            }
            for name in self.db.tables()
        }

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def handle_fetch(
        self,
        replica_id: str,
        cursor: str,
        max_records: Optional[int] = None,
        max_bytes: Optional[int] = None,
        advertise: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Serve one batch of records after ``cursor`` to ``replica_id``.

        :raises CursorLostError: the cursor fell outside retention; the
            replica must call :meth:`handle_bootstrap`.
        :raises ReplicationError: malformed cursor or limits.
        """
        position = WalCursor.decode(cursor)
        with obs_span("repl.fetch", replica=replica_id) as span:
            self._prune_locked_out()
            # Pin at the *requested* cursor before touching the disk, so
            # a concurrent snapshot cannot compact the range mid-read.
            self.db.wal.pin_segments(self._pin_token(replica_id), position.sequence)
            try:
                batch = read_from(
                    self.db.wal.directory,
                    position,
                    max_records=max_records or self.max_records,
                    max_bytes=max_bytes or self.max_bytes,
                )
            except CursorLostError:
                if OBS.enabled:
                    catalogued("repro_repl_fetches_total").inc(
                        outcome="cursor-lost"
                    )
                raise
            # Advance the pin to where the replica will resume.
            self.db.wal.pin_segments(
                self._pin_token(replica_id), batch.cursor.sequence
            )
            now = time.monotonic()
            with self._lock:
                state = self._replicas.setdefault(replica_id, ReplicaState())
                state.cursor = batch.cursor
                state.last_seen = now
                state.fetches += 1
                state.records_shipped += len(batch.records)
                state.bytes_shipped += batch.shipped_bytes
                state.caught_up = batch.caught_up
                if advertise:
                    state.advertise = advertise
            pending_records = (
                0
                if batch.caught_up
                else count_records_from(
                    self.db.wal.directory, batch.cursor, limit=self.count_limit
                )
            )
            span.set(records=len(batch.records), caught_up=batch.caught_up)
            if OBS.enabled:
                catalogued("repro_repl_fetches_total").inc(
                    outcome="ok" if batch.records else "empty"
                )
                if batch.records:
                    catalogued("repro_repl_records_shipped_total").inc(
                        len(batch.records)
                    )
                    catalogued("repro_repl_bytes_shipped_total").inc(
                        batch.shipped_bytes
                    )
                with self._lock:
                    catalogued("repro_repl_connected_replicas").set(
                        len(self._replicas)
                    )
        return {
            "cursor": batch.cursor.encode(),
            "records": batch.records,
            "end_cursor": self.end_cursor().encode(),
            "caught_up": batch.caught_up,
            "pending_bytes": batch.pending_bytes,
            "pending_records": pending_records,
            "server_unix_time": time.time(),
            "tables": self._table_meta(),
        }

    def handle_bootstrap(self, replica_id: str) -> Dict[str, Any]:
        """Serve full table documents plus the cursor to resume from.

        The cursor is captured *before* the tables are serialised: any
        mutation that lands in between is present both in the documents
        (higher version) and in the WAL after the cursor, and the
        version-gated replay skips the duplicate.  The reverse order
        would lose records.
        """
        with obs_span("repl.bootstrap", replica=replica_id):
            self.db.wal.sync()
            end = self.end_cursor()
            self.db.wal.pin_segments(self._pin_token(replica_id), end.sequence)
            epochs = self.db.epochs()
            tables = {
                name: {
                    "doc": table_to_dict(self.db.table(name)),
                    "version": self.db.table(name).version,
                    "epoch": epochs.get(name, 0),
                }
                for name in self.db.tables()
            }
            now = time.monotonic()
            with self._lock:
                state = self._replicas.setdefault(replica_id, ReplicaState())
                state.cursor = end
                state.last_seen = now
                state.bootstraps += 1
            if OBS.enabled:
                catalogued("repro_repl_fetches_total").inc(outcome="bootstrap")
        return {
            "cursor": end.encode(),
            "tables": tables,
            "epochs": epochs,
            "server_unix_time": time.time(),
        }

    # ------------------------------------------------------------------
    # Introspection and retention
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """Operator view: per-replica lag, WAL retention, table metadata."""
        self._prune_locked_out()
        end = self.end_cursor()
        directory = self.db.wal.directory
        now = time.monotonic()
        with self._lock:
            replicas = dict(self._replicas)
        replica_report = {}
        for replica_id, state in replicas.items():
            replica_report[replica_id] = {
                "cursor": state.cursor.encode(),
                "caught_up": state.caught_up,
                "lag_bytes": pending_bytes_from(directory, state.cursor),
                "lag_records": count_records_from(
                    directory, state.cursor, limit=self.count_limit
                ),
                "seconds_since_seen": round(now - state.last_seen, 3),
                "fetches": state.fetches,
                "records_shipped": state.records_shipped,
                "bytes_shipped": state.bytes_shipped,
                "bootstraps": state.bootstraps,
                "advertise": state.advertise,
            }
        segments = self.db.wal.segment_paths(directory)
        pinned = self.db.wal.pinned_sequence()
        retained_for_pins = (
            sum(
                1
                for path in segments
                if pinned is not None
                and pinned <= self.db.wal.sequence_of(path) < end.sequence
            )
        )
        if OBS.enabled:
            catalogued("repro_repl_connected_replicas").set(len(replicas))
            catalogued("repro_repl_pinned_segments").set(retained_for_pins)
        return {
            "role": self.role,
            "end_cursor": end.encode(),
            "replicas": replica_report,
            "wal": {
                "segments": len(segments),
                "oldest_sequence": (
                    self.db.wal.sequence_of(segments[0]) if segments else None
                ),
                "active_sequence": end.sequence,
                "pinned_sequence": pinned,
                "pinned_segments": retained_for_pins,
            },
            "tables": self._table_meta(),
        }

    def _prune_locked_out(self) -> None:
        """Drop replicas (and their pins) silent past the retention TTL."""
        now = time.monotonic()
        with self._lock:
            stale = [
                replica_id
                for replica_id, state in self._replicas.items()
                if now - state.last_seen > self.retention_ttl
            ]
            for replica_id in stale:
                del self._replicas[replica_id]
        for replica_id in stale:
            self.db.wal.unpin_segments(self._pin_token(replica_id))

    def forget(self, replica_id: str) -> bool:
        """Explicitly deregister a replica, releasing its retention pin."""
        with self._lock:
            removed = self._replicas.pop(replica_id, None) is not None
        self.db.wal.unpin_segments(self._pin_token(replica_id))
        return removed
