"""Command-line interface: query and generate uncertain tables.

Usage (also available as ``python -m repro``)::

    # generate datasets
    python -m repro generate panda --out panda.json
    python -m repro generate synthetic --tuples 5000 --rules 500 --out s.json
    python -m repro generate iceberg --out ice.json

    # inspect a table
    python -m repro info panda.json
    python -m repro worlds panda.json          # small tables only

    # run queries
    python -m repro query panda.json -k 2 -p 0.35
    python -m repro query panda.json -k 2 --semantics utopk
    python -m repro query panda.json -k 2 --semantics ukranks
    python -m repro query s.json -k 50 -p 0.3 --sample 2000

    # observability: metrics snapshots and per-phase timing
    python -m repro query panda.json -k 2 -p 0.35 --emit-metrics m.json
    python -m repro stats panda.json -k 2 -p 0.35
    python -m repro stats panda.json -k 2 -p 0.35 --format prom

    # serve a directory of tables over HTTP (see docs/serving.md)
    python -m repro serve tables/ --port 8080 --window-ms 2

    # durable serving and storage operations (see docs/persistence.md)
    python -m repro serve tables/ --data-dir state/
    python -m repro durable snapshot state/
    python -m repro durable recover state/
    python -m repro durable verify state/

    # WAL-shipping replication (see docs/replication.md)
    python -m repro replicate primary state/ --tables tables/ --port 8080
    python -m repro replicate follow state-r1/ --primary 127.0.0.1:8080 --port 8081
    python -m repro replicate promote state-r1/
    python -m repro replicate status --primary 127.0.0.1:8080

Tables are JSON documents (see :mod:`repro.io.jsonio`) or CSV pairs
(pass the stem; see :mod:`repro.io.csvio`) — the format is inferred
from the extension.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.exact import ExactVariant, exact_ptk_query
from repro.core.explain import explain_tuple, format_explanation
from repro.core.sampling import SamplingConfig, sampled_ptk_query
from repro.datagen.iceberg import IcebergConfig, generate_iceberg_table
from repro.datagen.sensors import panda_table
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.exceptions import ReproError
from repro.io.csvio import read_table_csv, write_table_csv
from repro.io.jsonio import read_table_json, write_table_json
from repro.model.table import UncertainTable
from repro.model.worlds import count_possible_worlds, enumerate_possible_worlds
from repro import obs
from repro.obs import export as obs_export
from repro.query.parser import parse_predicate
from repro.query.topk import TopKQuery
from repro.semantics.extras import global_topk
from repro.semantics.ukranks import ukranks_query
from repro.semantics.utopk import utopk_query


def load_table(path: str) -> UncertainTable:
    """Read a table from JSON (``.json``) or a CSV pair (stem or either file)."""
    p = Path(path)
    if p.suffix == ".json":
        return read_table_json(p)
    stem = str(p)
    for suffix in (".tuples.csv", ".rules.csv"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
            break
    return read_table_csv(stem)


def save_table(table: UncertainTable, path: str) -> None:
    """Write a table as JSON (``.json``) or a CSV pair (any other path)."""
    p = Path(path)
    if p.suffix == ".json":
        write_table_json(table, p)
    else:
        write_table_csv(table, p.with_suffix("") if p.suffix else p)


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "panda":
        table = panda_table()
    elif args.dataset == "synthetic":
        table = generate_synthetic_table(
            SyntheticConfig(
                n_tuples=args.tuples,
                n_rules=args.rules,
                rule_size_mean=args.rule_size,
                independent_prob_mean=args.prob_mean,
                seed=args.seed,
            )
        )
    else:  # iceberg
        table = generate_iceberg_table(
            IcebergConfig(n_tuples=args.tuples, n_rules=args.rules, seed=args.seed)
        )
    save_table(table, args.out)
    print(
        f"wrote {len(table)} tuples, {len(table.multi_rules())} rules "
        f"to {args.out}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    table = load_table(args.table)
    rules = table.multi_rules()
    print(f"table:           {table.name}")
    print(f"tuples:          {len(table)}")
    print(f"multi-tuple rules: {len(rules)}")
    if rules:
        sizes = [r.length for r in rules]
        print(f"rule sizes:      min {min(sizes)}, max {max(sizes)}")
    print(f"expected world size: {table.expected_size():.2f}")
    count = count_possible_worlds(table)
    shown = f"{count:,}" if count < 10**15 else f"~10^{len(str(count)) - 1}"
    print(f"possible worlds: {shown}")
    return 0


def _cmd_worlds(args: argparse.Namespace) -> int:
    table = load_table(args.table)
    worlds = sorted(
        enumerate_possible_worlds(table, limit=args.limit),
        key=lambda w: -w.probability,
    )
    for world in worlds:
        members = ", ".join(sorted(str(t) for t in world.tuple_ids))
        print(f"Pr={world.probability:.6f}  {{{members}}}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    emit_metrics = getattr(args, "emit_metrics", None)
    if emit_metrics:
        obs.enable(fresh=True)
    table = load_table(args.table)
    if args.where:
        query = TopKQuery(k=args.k, predicate=parse_predicate(args.where))
    else:
        query = TopKQuery(k=args.k)
    semantics = args.semantics
    if semantics == "ptk" and args.sample:
        semantics = "ptk-sampled"
    with obs.query_scope(
        semantics, table=table.name, k=args.k, threshold=args.threshold
    ):
        code = _run_query(args, table, query)
    if emit_metrics and code == 0:
        path = obs_export.write_json(emit_metrics)
        print(f"# metrics written to {path}", file=sys.stderr)
    return code


def _run_query(args: argparse.Namespace, table, query) -> int:
    if args.semantics == "ptk":
        if args.threshold is None:
            print("error: PT-k queries require --threshold/-p", file=sys.stderr)
            return 2
        if args.sample:
            answer = sampled_ptk_query(
                table,
                query,
                args.threshold,
                config=SamplingConfig(
                    sample_size=args.sample,
                    progressive=False,
                    seed=args.seed,
                    batch_size=args.sample_batch_size,
                    n_workers=args.workers,
                ),
            )
        else:
            answer = exact_ptk_query(
                table, query, args.threshold, variant=ExactVariant(args.variant)
            )
        print(f"# PT-{args.k} answers with Pr >= {args.threshold} ({answer.method})")
        for pair in answer.ranked_answers():
            print(f"{pair.tid}\t{pair.probability:.6f}")
        print(
            f"# scanned {answer.stats.scan_depth} tuples; "
            f"stopped by {answer.stats.stopped_by}",
            file=sys.stderr,
        )
    elif args.semantics == "utopk":
        answer = utopk_query(table, query)
        print(f"# most probable top-{args.k} vector, Pr={answer.probability:.6g}")
        for tid in answer.vector:
            print(tid)
    elif args.semantics == "ukranks":
        answer = ukranks_query(table, query)
        print(f"# most probable tuple per rank (1..{args.k})")
        for rank, (tid, probability) in enumerate(answer.winners, 1):
            print(f"{rank}\t{tid}\t{probability:.6f}")
    else:  # global-topk
        print(f"# {args.k} tuples of highest top-{args.k} probability")
        for tid, probability in global_topk(table, query):
            print(f"{tid}\t{probability:.6f}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run one query under full observability and report the metrics."""
    obs.enable(fresh=True)
    table = load_table(args.table)
    query = TopKQuery(k=args.k)
    with obs.query_scope(
        "ptk-sampled" if args.sample else "ptk",
        table=table.name,
        k=args.k,
        threshold=args.threshold,
    ):
        if args.sample:
            sampled_ptk_query(
                table,
                query,
                args.threshold,
                config=SamplingConfig(
                    sample_size=args.sample,
                    progressive=False,
                    seed=args.seed,
                    batch_size=args.sample_batch_size,
                    n_workers=args.workers,
                ),
            )
        else:
            exact_ptk_query(
                table, query, args.threshold, variant=ExactVariant(args.variant)
            )
    if args.format == "json":
        print(obs_export.to_json())
    elif args.format == "prom":
        print(obs_export.to_prometheus(), end="")
    else:
        print(obs_export.render_text(), end="")
    if args.emit_metrics:
        path = obs_export.write_json(args.emit_metrics)
        print(f"# metrics written to {path}", file=sys.stderr)
    return 0


def load_table_directory(directory: Path):
    """Load every table under ``directory`` for serving.

    Accepts ``*.json`` documents and ``*.tuples.csv``/``*.rules.csv``
    pairs (each pair counted once).  Tables are registered under their
    own names; when two files carry the same table name the file stem
    disambiguates the later one.

    :returns: a ready :class:`~repro.query.engine.UncertainDB`.
    :raises ReproError: when the directory holds no loadable tables.
    """
    from repro.query.engine import UncertainDB

    db = UncertainDB()
    paths = sorted(
        list(directory.glob("*.json"))
        + list(directory.glob("*.tuples.csv"))
    )
    for path in paths:
        table = load_table(str(path))
        name = table.name
        if name in db.tables():
            name = path.name.split(".")[0]
        db.register(table, name=name)
    if not db.tables():
        raise ReproError(
            f"no tables found in {directory} "
            f"(expected *.json or *.tuples.csv/*.rules.csv)"
        )
    return db


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import ServeApp, ServeConfig, run

    if args.data_dir is None and args.tables is None:
        print(
            "error: pass a table directory and/or --data-dir", file=sys.stderr
        )
        return 2
    if args.data_dir is not None:
        from repro.durable import DurableDB, load_tables_into

        db = DurableDB(
            args.data_dir,
            fsync=args.fsync,
            max_segment_bytes=args.max_segment_bytes,
        )
        report = db.last_recovery
        if report.tables:
            print(
                f"recovered {len(report.tables)} table(s) from "
                f"{args.data_dir} ({report.snapshots_loaded} snapshot(s), "
                f"{report.replayed} WAL record(s) replayed)",
                flush=True,
            )
        if args.tables is not None:
            directory = Path(args.tables)
            if not directory.is_dir():
                print(f"error: {directory} is not a directory", file=sys.stderr)
                return 2
            loaded = load_tables_into(db, directory)
            if loaded:
                print(f"registered and journalled: {', '.join(loaded)}")
        if not db.tables():
            print(
                f"error: no tables recovered from {args.data_dir} and none "
                f"loaded; pass a table directory to seed it",
                file=sys.stderr,
            )
            return 2
    else:
        directory = Path(args.tables)
        if not directory.is_dir():
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2
        db = load_table_directory(directory)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        default_deadline_ms=args.deadline_ms,
        scheduler=args.scheduler,
        seed=args.seed,
        flight_dir=args.flight_dir,
        slow_ms=args.slow_ms,
        metrics_flush_s=args.metrics_flush_s,
        dynamic=args.dynamic,
        dynamic_cap=args.dynamic_cap,
    )
    names = ", ".join(sorted(db.tables()))
    print(f"loaded tables: {names}", flush=True)
    try:
        run(ServeApp(db, config))
    finally:
        if args.data_dir is not None:
            db.close()
    return 0


def _cmd_durable(args: argparse.Namespace) -> int:
    from repro.durable import DurableDB, recover_state, verify_data_dir

    data_dir = Path(args.data_dir)
    if args.action == "verify":
        report = verify_data_dir(data_dir)
        print(
            f"snapshots: {report.snapshots} "
            f"({len(report.snapshot_errors)} corrupt)"
        )
        print(
            f"wal: {report.wal_segments} segment(s), "
            f"{report.wal_records} record(s), "
            f"{report.torn_bytes} torn byte(s)"
        )
        for note in report.notes:
            print(f"note: {note}")
        for error in report.snapshot_errors + report.wal_errors:
            print(f"error: {error}", file=sys.stderr)
        return 0 if report.ok else 1
    if args.action == "recover":
        tables, report = recover_state(data_dir)
        print(
            f"recovered {len(tables)} table(s) in "
            f"{report.duration_seconds:.3f}s: "
            f"{report.snapshots_loaded} snapshot(s), "
            f"{report.replayed} record(s) replayed, "
            f"{report.skipped} skipped, {report.torn_bytes} torn byte(s)"
        )
        for name in sorted(tables):
            table = tables[name]
            print(
                f"  {name}: {len(table)} tuples, "
                f"{len(table.multi_rules())} rules, "
                f"version {table.version}"
            )
        for problem in report.problems:
            print(f"note: {problem}", file=sys.stderr)
        return 0
    # snapshot: open (runs recovery), checkpoint everything, compact.
    db = DurableDB(data_dir, fsync="always", warm_start=False)
    try:
        if not db.tables():
            print(f"error: no tables in {data_dir}", file=sys.stderr)
            return 1
        paths = db.snapshot(compact=not args.no_compact)
        for path in paths:
            print(f"wrote {path} ({path.stat().st_size} bytes)")
        print(f"snapshotted {len(paths)} table(s); WAL rotated")
    finally:
        db.close()
    return 0


def _serve_config_for_replication(args: argparse.Namespace):
    from repro.serve.server import ServeConfig

    return ServeConfig(
        host=args.host,
        port=args.port,
        window_ms=args.window_ms,
        dynamic=getattr(args, "dynamic", False),
        dynamic_cap=getattr(args, "dynamic_cap", 64),
    )


def _cmd_replicate_primary(args: argparse.Namespace) -> int:
    """Serve a durable directory as a replication primary."""
    from repro.durable import DurableDB, load_tables_into
    from repro.replication import ReplicationServer
    from repro.serve.server import ServeApp, run

    db = DurableDB(
        args.data_dir,
        fsync=args.fsync,
        max_segment_bytes=args.max_segment_bytes,
    )
    try:
        if args.tables is not None:
            directory = Path(args.tables)
            if not directory.is_dir():
                print(f"error: {directory} is not a directory", file=sys.stderr)
                return 2
            loaded = load_tables_into(db, directory)
            if loaded:
                print(f"registered and journalled: {', '.join(loaded)}")
        if not db.tables():
            print(
                f"error: no tables in {args.data_dir}; pass --tables to "
                f"seed it",
                file=sys.stderr,
            )
            return 2
        replication = ReplicationServer(
            db, retention_ttl=args.retention_ttl
        )
        print(
            f"replication primary on {args.host}:{args.port} "
            f"(data {args.data_dir}, wal end {replication.end_cursor().encode()})",
            flush=True,
        )
        run(ServeApp(db, _serve_config_for_replication(args), replication=replication))
    finally:
        db.close()
    return 0


def _cmd_replicate_follow(args: argparse.Namespace) -> int:
    """Run a read replica following a primary."""
    from repro.replication import ReplicaApplier, ReplicationFollower
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeApp, run

    host, _, port = args.primary.rpartition(":")
    if not host or not port.isdigit():
        print(
            f"error: --primary must be HOST:PORT, got {args.primary!r}",
            file=sys.stderr,
        )
        return 2
    applier = ReplicaApplier(
        args.data_dir, replica_id=args.replica_id, fsync=args.fsync
    )
    follower = ReplicationFollower(
        applier,
        ServeClient.connect(host, int(port)),
        poll_interval=args.poll_ms / 1000.0,
        advertise=f"{args.host}:{args.port}",
    )
    follower.start()
    print(
        f"replica {applier.replica_id} on {args.host}:{args.port} "
        f"following {args.primary} (cursor {applier.cursor.encode()})",
        flush=True,
    )
    try:
        run(ServeApp(applier.db, _serve_config_for_replication(args), replication=applier))
    finally:
        follower.stop()
        applier.close()
    return 0


def _cmd_replicate_promote(args: argparse.Namespace) -> int:
    """Promote a stopped replica's data directory to primary lineage."""
    from repro.replication import promote_data_dir

    report = promote_data_dir(args.data_dir, snapshot=not args.no_snapshot)
    for name in sorted(report.new_epochs):
        print(
            f"  {name}: epoch {report.old_epochs.get(name, 0)} -> "
            f"{report.new_epochs[name]}"
        )
    print(
        f"promoted {len(report.tables)} table(s) in {args.data_dir}; "
        f"{len(report.snapshots)} snapshot(s) written"
    )
    print(
        f"serve it as the new primary: "
        f"repro replicate primary {args.data_dir}"
    )
    return 0


def _cmd_replicate_status(args: argparse.Namespace) -> int:
    """Print a node's replication status as JSON."""
    import json as _json

    from repro.serve.client import ServeClient

    host, _, port = args.primary.rpartition(":")
    if not host or not port.isdigit():
        print(
            f"error: --primary must be HOST:PORT, got {args.primary!r}",
            file=sys.stderr,
        )
        return 2
    client = ServeClient.connect(host, int(port))
    try:
        print(_json.dumps(client.replicate_status(), indent=2, sort_keys=True))
    finally:
        client.close()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    table = load_table(args.table)
    explanation = explain_tuple(table, TopKQuery(k=args.k), args.tid)
    print(format_explanation(explanation, limit=args.limit))
    return 0


def _cmd_flight(args: argparse.Namespace) -> int:
    """Inspect a flight-recorder JSONL log offline."""
    import json as _json

    from repro.obs.flight import (
        calibration_report,
        read_jsonl,
        summarize_profiles,
    )

    path = Path(args.path)
    if path.is_dir():
        path = path / "slow.jsonl"
    scan = read_jsonl(path)
    if scan.problem == "missing":
        print(f"error: {path} does not exist", file=sys.stderr)
        return 1
    if scan.problem is not None:
        print(
            f"note: stopped at byte {scan.good_bytes} of "
            f"{scan.total_bytes} ({scan.problem}); "
            f"{scan.torn_bytes} torn byte(s) ignored",
            file=sys.stderr,
        )
    if args.action == "tail":
        for record in scan.records[-args.n:]:
            print(_json.dumps(record, sort_keys=True))
    elif args.action == "summary":
        print(_json.dumps(summarize_profiles(scan.records), indent=2))
    else:  # calibration
        print(_json.dumps(calibration_report(scan.records), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic threshold top-k queries on uncertain data",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a dataset")
    generate.add_argument(
        "dataset", choices=["panda", "synthetic", "iceberg"]
    )
    generate.add_argument("--out", required=True, help="output path (.json or CSV stem)")
    generate.add_argument("--tuples", type=int, default=20_000)
    generate.add_argument("--rules", type=int, default=2_000)
    generate.add_argument("--rule-size", type=float, default=5.0)
    generate.add_argument("--prob-mean", type=float, default=0.5)
    generate.add_argument("--seed", type=int, default=7)
    generate.set_defaults(fn=_cmd_generate)

    info = commands.add_parser("info", help="summarise a table")
    info.add_argument("table")
    info.set_defaults(fn=_cmd_info)

    worlds = commands.add_parser(
        "worlds", help="enumerate possible worlds (small tables)"
    )
    worlds.add_argument("table")
    worlds.add_argument("--limit", type=int, default=10_000)
    worlds.set_defaults(fn=_cmd_worlds)

    query = commands.add_parser("query", help="answer a top-k query")
    query.add_argument("table")
    query.add_argument("-k", type=int, required=True)
    query.add_argument(
        "-p", "--threshold", type=float, default=None, help="PT-k threshold"
    )
    query.add_argument(
        "--semantics",
        choices=["ptk", "utopk", "ukranks", "global-topk"],
        default="ptk",
    )
    query.add_argument(
        "--variant",
        choices=[v.value for v in ExactVariant],
        default=ExactVariant.RC_LR.value,
        help="exact algorithm variant",
    )
    query.add_argument(
        "--sample",
        type=int,
        default=None,
        help="use the sampling algorithm with this many units",
    )
    query.add_argument(
        "--sample-batch-size",
        type=int,
        default=None,
        metavar="N",
        help="units per vectorised sampler batch (default: auto); "
        "estimates are deterministic for a fixed seed and batch size",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sampled queries (1 = single-process, "
        "0 = one per CPU); the unit budget is sharded deterministically "
        "for a fixed seed, batch size, and worker count",
    )
    query.add_argument("--seed", type=int, default=7)
    query.add_argument(
        "--where",
        default=None,
        help="predicate expression, e.g. \"score > 10 and location = 'B'\"",
    )
    query.add_argument(
        "--emit-metrics",
        default=None,
        metavar="PATH",
        help="enable observability and write a JSON metrics snapshot here",
    )
    query.set_defaults(fn=_cmd_query)

    stats = commands.add_parser(
        "stats",
        help="run one PT-k query under full observability and report metrics",
    )
    stats.add_argument("table")
    stats.add_argument("-k", type=int, required=True)
    stats.add_argument(
        "-p", "--threshold", type=float, required=True, help="PT-k threshold"
    )
    stats.add_argument(
        "--variant",
        choices=[v.value for v in ExactVariant],
        default=ExactVariant.RC_LR.value,
    )
    stats.add_argument(
        "--sample",
        type=int,
        default=None,
        help="use the sampling algorithm with this many units",
    )
    stats.add_argument(
        "--sample-batch-size",
        type=int,
        default=None,
        metavar="N",
        help="units per vectorised sampler batch (default: auto)",
    )
    stats.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sampled queries (1 = single-process, "
        "0 = one per CPU)",
    )
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument(
        "--format",
        choices=["text", "json", "prom"],
        default="text",
        help="report format: human-readable, JSON snapshot, or Prometheus",
    )
    stats.add_argument(
        "--emit-metrics",
        default=None,
        metavar="PATH",
        help="also write the JSON metrics snapshot here",
    )
    stats.set_defaults(fn=_cmd_stats)

    serve = commands.add_parser(
        "serve",
        help="serve a directory of tables over HTTP (PT-k query service)",
    )
    serve.add_argument(
        "tables",
        nargs="?",
        default=None,
        help="directory of *.json documents and/or *.tuples.csv pairs "
        "(optional when --data-dir holds recovered tables)",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="durable state directory (repro.durable): tables recover "
        "from it on startup, and registrations are journalled so they "
        "survive restarts; combine with a table directory to seed it",
    )
    serve.add_argument(
        "--fsync",
        choices=["always", "interval", "off"],
        default="interval",
        help="WAL fsync policy when --data-dir is set (default: interval)",
    )
    serve.add_argument(
        "--max-segment-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="rotate the WAL to a fresh segment once the active one "
        "reaches this size (default: rotate on snapshot only)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="micro-batch coalescing window per table (0 disables)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="dispatch a micro-batch early at this size",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        metavar="N",
        help="micro-batches executing concurrently",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="waiting requests beyond the inflight ones; more are "
        "rejected with 429 + Retry-After",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="default per-request deadline; requests may override. "
        "When the planner predicts an exact-scan miss, the request is "
        "degraded to the sampler with a budget sized from the "
        "remaining deadline",
    )
    serve.add_argument(
        "--scheduler",
        choices=["fifo", "cost"],
        default="cost",
        help="batch scheduling policy for exact work: 'cost' runs "
        "cheapest-first with pre-execution deadline re-checks and "
        "budgeted resumable scans; 'fifo' is arrival-order, "
        "deadline-blind dispatch (the legacy behaviour)",
    )
    serve.add_argument(
        "--seed", type=int, default=7, help="seed for degraded sampling runs"
    )
    serve.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="directory for flight-recorder artefacts (slow.jsonl, "
        "metrics.json, spans.jsonl); omit to keep profiles in memory "
        "only (inspect via /debug/queries)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=100.0,
        metavar="MS",
        help="queries at least this slow land in the slow-query log "
        "(0 logs every query)",
    )
    serve.add_argument(
        "--metrics-flush-s",
        type=float,
        default=30.0,
        metavar="S",
        help="period of the background metrics/span flusher into "
        "--flight-dir (0 disables)",
    )
    serve.add_argument(
        "--dynamic",
        action="store_true",
        help="maintain incremental PT-k indexes: POST /mutate becomes "
        "an answer delta instead of a cache invalidation, and reads "
        "are served from the refreshed index (see docs/dynamic.md)",
    )
    serve.add_argument(
        "--dynamic-cap",
        type=int,
        default=64,
        metavar="K",
        help="largest k the dynamic indexes serve; larger requests "
        "take the ordinary planned path",
    )
    serve.set_defaults(fn=_cmd_serve)

    durable = commands.add_parser(
        "durable",
        help="durable storage operations: snapshot, recover, verify "
        "(see docs/persistence.md)",
    )
    durable.add_argument(
        "action",
        choices=["snapshot", "recover", "verify"],
        help="snapshot: checkpoint all tables and compact the WAL; "
        "recover: rebuild tables and report; verify: check every "
        "checksum read-only",
    )
    durable.add_argument(
        "data_dir", help="durable state directory (as used by serve --data-dir)"
    )
    durable.add_argument(
        "--no-compact",
        action="store_true",
        help="snapshot only: keep sealed WAL segments and old snapshot "
        "generations instead of deleting them",
    )
    durable.set_defaults(fn=_cmd_durable)

    replicate = commands.add_parser(
        "replicate",
        help="WAL-shipping replication: primary, follow, promote, status "
        "(see docs/replication.md)",
    )
    replicate_commands = replicate.add_subparsers(
        dest="replicate_command", required=True
    )

    primary = replicate_commands.add_parser(
        "primary", help="serve a durable directory as a replication primary"
    )
    primary.add_argument(
        "data_dir", help="durable state directory (owns all writes)"
    )
    primary.add_argument(
        "--tables",
        default=None,
        metavar="DIR",
        help="table directory to seed the data dir from on first start",
    )
    primary.add_argument("--host", default="127.0.0.1")
    primary.add_argument(
        "--port", type=int, default=8080, help="0 picks an ephemeral port"
    )
    primary.add_argument(
        "--window-ms", type=float, default=2.0, metavar="MS",
        help="query coalescing window (as in repro serve)",
    )
    primary.add_argument(
        "--fsync",
        choices=["always", "interval", "off"],
        default="interval",
        help="WAL fsync policy (default: interval)",
    )
    primary.add_argument(
        "--max-segment-bytes",
        type=int,
        default=4 * 1024 * 1024,
        metavar="BYTES",
        help="WAL auto-rotation threshold; small segments bound how "
        "much history one replica pin retains (default: 4 MiB)",
    )
    primary.add_argument(
        "--retention-ttl",
        type=float,
        default=600.0,
        metavar="S",
        help="drop a silent replica's retention pin after this many "
        "seconds (default: 600)",
    )
    primary.add_argument(
        "--dynamic",
        action="store_true",
        help="maintain incremental PT-k indexes over the mutation "
        "stream (see docs/dynamic.md)",
    )
    primary.add_argument(
        "--dynamic-cap", type=int, default=64, metavar="K",
        help="largest k the dynamic indexes serve",
    )
    primary.set_defaults(fn=_cmd_replicate_primary)

    follow = replicate_commands.add_parser(
        "follow", help="run a read replica following a primary"
    )
    follow.add_argument(
        "data_dir",
        help="local replica state directory (cursor marker + local WAL; "
        "promotable on failover)",
    )
    follow.add_argument(
        "--primary", required=True, metavar="HOST:PORT",
        help="address of the primary's serve endpoint",
    )
    follow.add_argument("--host", default="127.0.0.1")
    follow.add_argument(
        "--port", type=int, default=8081, help="0 picks an ephemeral port"
    )
    follow.add_argument(
        "--window-ms", type=float, default=2.0, metavar="MS",
        help="query coalescing window (as in repro serve)",
    )
    follow.add_argument(
        "--poll-ms", type=float, default=100.0, metavar="MS",
        help="WAL poll interval once caught up (default: 100)",
    )
    follow.add_argument(
        "--replica-id",
        default=None,
        help="stable replica identity (default: persisted in the data "
        "dir, generated on first start)",
    )
    follow.add_argument(
        "--fsync",
        choices=["always", "interval", "off"],
        default="off",
        help="fsync policy of the replica's local WAL (default: off — "
        "a lost replica re-bootstraps from the primary)",
    )
    follow.add_argument(
        "--dynamic",
        action="store_true",
        help="maintain incremental PT-k indexes over the applied WAL "
        "stream (see docs/dynamic.md)",
    )
    follow.add_argument(
        "--dynamic-cap", type=int, default=64, metavar="K",
        help="largest k the dynamic indexes serve",
    )
    follow.set_defaults(fn=_cmd_replicate_follow)

    promote = replicate_commands.add_parser(
        "promote",
        help="promote a stopped replica's data directory: bump every "
        "table's epoch so the old primary's lineage is fenced out",
    )
    promote.add_argument("data_dir", help="the replica's state directory")
    promote.add_argument(
        "--no-snapshot",
        action="store_true",
        help="skip the post-promotion snapshot (faster, but recovery "
        "replays the whole WAL)",
    )
    promote.set_defaults(fn=_cmd_replicate_promote)

    status = replicate_commands.add_parser(
        "status", help="print a node's /replicate/status as JSON"
    )
    status.add_argument(
        "--primary", required=True, metavar="HOST:PORT",
        help="address of the node to inspect (primary or replica)",
    )
    status.set_defaults(fn=_cmd_replicate_status)

    explain = commands.add_parser(
        "explain", help="explain one tuple's top-k probability"
    )
    explain.add_argument("table")
    explain.add_argument("tid", help="tuple id to explain")
    explain.add_argument("-k", type=int, required=True)
    explain.add_argument(
        "--limit", type=int, default=5, help="suppressors to show"
    )
    explain.set_defaults(fn=_cmd_explain)

    flight = commands.add_parser(
        "flight",
        help="inspect flight-recorder logs: tail, summary, calibration "
        "(see docs/observability.md)",
    )
    flight.add_argument(
        "action",
        choices=["tail", "summary", "calibration"],
        help="tail: print the newest records; summary: aggregate "
        "latency/engine/slow counts; calibration: planner "
        "estimate-vs-actual residuals per engine",
    )
    flight.add_argument(
        "path",
        help="a flight JSONL file (e.g. slow.jsonl) or a --flight-dir "
        "directory containing one",
    )
    flight.add_argument(
        "-n", type=int, default=20, help="records shown by tail"
    )
    flight.set_defaults(fn=_cmd_flight)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
