"""Possible-world enumeration and probabilities (Equation 1 of the paper).

A *possible world* ``W`` of an uncertain table ``T`` picks, for every
generation rule ``R``, either exactly one involved tuple (mandatory when
``Pr(R) = 1``) or no tuple (allowed when ``Pr(R) < 1``).  Its existence
probability is

.. math::

    Pr(W) = \\prod_{R: |R \\cap W| = 1} Pr(R \\cap W)
            \\prod_{R: R \\cap W = \\emptyset} (1 - Pr(R))

Enumeration is exponential (``prod (|R|+1)`` over open rules) and is used
only as ground truth for tests and tiny examples; the library guards it
with an explicit world-count limit.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, FrozenSet, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import EnumerationLimitError
from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable
from repro.model.tuples import PROBABILITY_ATOL

#: Default cap on the number of worlds :func:`enumerate_possible_worlds`
#: will produce before raising :class:`EnumerationLimitError`.
DEFAULT_WORLD_LIMIT = 2_000_000


@dataclass(frozen=True)
class PossibleWorld:
    """One possible world: a set of tuple ids and its existence probability.

    ``probability`` is a float normally, or an exact
    :class:`fractions.Fraction` when the enumerator runs in
    exact-arithmetic mode.
    """

    tuple_ids: FrozenSet[Any]
    probability: Union[float, Fraction]

    def __contains__(self, tid: Any) -> bool:
        return tid in self.tuple_ids

    def __len__(self) -> int:
        return len(self.tuple_ids)


def _rule_is_certain(table: UncertainTable, rule: GenerationRule) -> bool:
    """True when ``Pr(R) = 1`` so exactly one member must appear."""
    return table.rule_probability(rule) >= 1.0 - PROBABILITY_ATOL


def count_possible_worlds(table: UncertainTable) -> int:
    """Number of possible worlds of ``table`` (Section 2).

    ``|W| = prod_{Pr(R)=1} |R|  *  prod_{Pr(R)<1} (|R| + 1)``
    """
    count = 1
    for rule in table.rules():
        if _rule_is_certain(table, rule):
            count *= rule.length
        else:
            count *= rule.length + 1
    return count


def _rule_choices(
    table: UncertainTable, rule: GenerationRule, exact: bool = False
) -> List[Tuple[Optional[Any], Union[float, Fraction]]]:
    """Per-rule alternatives as ``(chosen tid or None, probability factor)``.

    The ``None`` alternative (no member appears) carries probability
    ``1 - Pr(R)`` and is omitted when the rule is certain.

    With ``exact`` the factors are :class:`fractions.Fraction` values:
    each float membership probability is taken as the exact rational it
    represents and ``1 - Pr(R)`` is computed without rounding.  Which
    rules count as certain is decided by the same float predicate in
    both modes, so the *set* of worlds never depends on the mode.
    """
    if not exact:
        choices: List[Tuple[Optional[Any], Union[float, Fraction]]] = [
            (tid, table.probability(tid)) for tid in rule.tuple_ids
        ]
        if not _rule_is_certain(table, rule):
            choices.append((None, 1.0 - table.rule_probability(rule)))
        return choices
    exact_choices: List[Tuple[Optional[Any], Union[float, Fraction]]] = [
        (tid, Fraction(table.probability(tid))) for tid in rule.tuple_ids
    ]
    if not _rule_is_certain(table, rule):
        total = sum(
            (Fraction(table.probability(tid)) for tid in rule.tuple_ids),
            Fraction(0),
        )
        if total > 1:
            total = Fraction(1)  # mirrors the float path's Pr(R) clamp
        exact_choices.append((None, Fraction(1) - total))
    return exact_choices


def enumerate_possible_worlds(
    table: UncertainTable,
    limit: int = DEFAULT_WORLD_LIMIT,
    exact: bool = False,
) -> Iterator[PossibleWorld]:
    """Yield every possible world of ``table`` with its probability.

    :param limit: safety cap; enumeration of a table whose world count
        exceeds it raises :class:`EnumerationLimitError` *before* any work.
    :param exact: compute world probabilities in exact rational
        arithmetic (:class:`fractions.Fraction`) instead of floats.
        The world *set* is identical; only the probability type changes.
        Used by ground-truth oracles whose comparisons must not inherit
        float accumulation error.
    :raises EnumerationLimitError: when the table has more than ``limit``
        possible worlds.
    """
    total = count_possible_worlds(table)
    if total > limit:
        raise EnumerationLimitError(
            f"table {table.name!r} has {total} possible worlds, "
            f"which exceeds the enumeration limit of {limit}"
        )
    rules = table.rules()
    per_rule = [_rule_choices(table, rule, exact=exact) for rule in rules]
    zero = Fraction(0) if exact else 0.0
    one = Fraction(1) if exact else 1.0
    for combo in itertools.product(*per_rule):
        probability = one
        members: List[Any] = []
        for tid, factor in combo:
            probability *= factor
            if tid is not None:
                members.append(tid)
        if probability <= zero:
            continue
        yield PossibleWorld(tuple_ids=frozenset(members), probability=probability)


def world_probability(table: UncertainTable, tuple_ids: Sequence[Any]) -> float:
    """Probability of the specific world containing exactly ``tuple_ids``.

    Computed directly from Equation 1 without enumeration.  Returns 0 for
    sets that are not legal possible worlds (e.g. two tuples from one rule,
    or a certain rule with no member present).
    """
    present = set(tuple_ids)
    for tid in present:
        table.get(tid)  # raise on unknown ids
    probability = 1.0
    for rule in table.rules():
        chosen = [tid for tid in rule.tuple_ids if tid in present]
        if len(chosen) > 1:
            return 0.0
        if len(chosen) == 1:
            probability *= table.probability(chosen[0])
        else:
            if _rule_is_certain(table, rule):
                return 0.0
            probability *= 1.0 - table.rule_probability(rule)
    return probability


def total_probability(worlds: Sequence[PossibleWorld]) -> float:
    """Sum of world probabilities; equals 1 for a complete enumeration."""
    return math.fsum(w.probability for w in worlds)
