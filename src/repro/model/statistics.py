"""Table statistics: the catalog summary the planner works from.

A real system would maintain these in its catalog; here they are
computed on demand in one pass over the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.model.table import UncertainTable


@dataclass(frozen=True)
class TableStatistics:
    """One-pass summary of an uncertain table.

    :param n_tuples: tuple count.
    :param n_rules: multi-tuple rule count.
    :param mean_probability: mean membership probability over tuples.
    :param std_probability: its standard deviation.
    :param expected_world_size: ``Σ Pr(t)`` — the mean possible-world
        cardinality.
    :param mean_rule_size: mean members per multi-tuple rule (0 if none).
    :param max_rule_size: largest rule (0 if none).
    :param mean_rule_probability: mean ``Pr(R)`` over multi-tuple rules.
    :param rule_tuple_fraction: fraction of tuples involved in rules.
    :param probability_histogram: 10-bin histogram of membership
        probabilities over (0, 1].
    """

    n_tuples: int
    n_rules: int
    mean_probability: float
    std_probability: float
    expected_world_size: float
    mean_rule_size: float
    max_rule_size: int
    mean_rule_probability: float
    rule_tuple_fraction: float
    probability_histogram: Tuple[int, ...]


def collect_statistics(table: UncertainTable) -> TableStatistics:
    """Compute :class:`TableStatistics` in one pass."""
    probabilities = np.array([t.probability for t in table], dtype=np.float64)
    n = int(probabilities.shape[0])
    rules = table.multi_rules()
    rule_sizes = [rule.length for rule in rules]
    rule_probabilities = [table.rule_probability(rule) for rule in rules]
    rule_tuples = sum(rule_sizes)
    if n:
        histogram, _ = np.histogram(probabilities, bins=10, range=(0.0, 1.0))
        mean = float(probabilities.mean())
        std = float(probabilities.std())
        total = float(probabilities.sum())
    else:
        histogram = np.zeros(10, dtype=int)
        mean = std = total = 0.0
    return TableStatistics(
        n_tuples=n,
        n_rules=len(rules),
        mean_probability=mean,
        std_probability=std,
        expected_world_size=total,
        mean_rule_size=(sum(rule_sizes) / len(rules)) if rules else 0.0,
        max_rule_size=max(rule_sizes) if rules else 0,
        mean_rule_probability=(
            sum(rule_probabilities) / len(rules) if rules else 0.0
        ),
        rule_tuple_fraction=(rule_tuples / n) if n else 0.0,
        probability_histogram=tuple(int(c) for c in histogram),
    )
