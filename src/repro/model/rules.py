"""Generation rules: exclusiveness constraints between uncertain tuples.

A generation rule ``R : t_{r_1} XOR ... XOR t_{r_m}`` constrains that at
most one of the involved tuples appears in any possible world.  The rule's
probability is the sum of the involved tuples' membership probabilities and
must not exceed 1 (Section 2 of the paper).  A *singleton* rule involves a
single tuple and is the implicit rule of every independent tuple; the table
only stores *multi-tuple* rules explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence, Tuple

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class GenerationRule:
    """An exclusiveness (XOR) constraint over a set of tuple ids.

    :param rule_id: unique identifier of the rule within its table.
    :param tuple_ids: the ids of the tuples involved, in any order.  Ids
        must be distinct; the rule's semantics do not depend on the order.

    The rule object is pure structure: probabilities live on the tuples,
    and :meth:`repro.model.table.UncertainTable.rule_probability` derives
    ``Pr(R)`` as their sum.
    """

    rule_id: Any
    tuple_ids: Tuple[Any, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ids = tuple(self.tuple_ids)
        if len(ids) == 0:
            raise ValidationError(f"rule {self.rule_id!r} involves no tuples")
        if len(set(ids)) != len(ids):
            raise ValidationError(
                f"rule {self.rule_id!r} lists a tuple more than once: {ids!r}"
            )
        object.__setattr__(self, "tuple_ids", ids)

    @property
    def length(self) -> int:
        """Number of tuples involved in the rule (``|R|`` in the paper)."""
        return len(self.tuple_ids)

    @property
    def is_singleton(self) -> bool:
        """True if the rule involves exactly one tuple."""
        return len(self.tuple_ids) == 1

    @property
    def is_multi(self) -> bool:
        """True if the rule involves more than one tuple."""
        return len(self.tuple_ids) > 1

    def involves(self, tid: Any) -> bool:
        """True if ``tid`` is one of the tuples constrained by this rule."""
        return tid in self.tuple_ids

    def restricted_to(self, keep: Sequence[Any]) -> "GenerationRule | None":
        """Project the rule onto a subset of tuple ids.

        Used when applying a query predicate: tuples failing the predicate
        are removed from the table, and each rule is projected onto the
        surviving tuples (Section 4 of the paper).  Returns ``None`` when
        no involved tuple survives.
        """
        keep_set = keep if isinstance(keep, (set, frozenset)) else set(keep)
        surviving = tuple(tid for tid in self.tuple_ids if tid in keep_set)
        if not surviving:
            return None
        return GenerationRule(rule_id=self.rule_id, tuple_ids=surviving)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.tuple_ids)

    def __len__(self) -> int:
        return len(self.tuple_ids)

    def __contains__(self, tid: Any) -> bool:
        return tid in self.tuple_ids

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        members = " xor ".join(repr(t) for t in self.tuple_ids)
        return f"GenerationRule({self.rule_id!r}: {members})"
