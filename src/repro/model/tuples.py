"""Uncertain tuples: the atomic unit of the possible-worlds model.

An uncertain tuple pairs an ordinary relational tuple (here: a score used
for ranking plus an arbitrary attribute mapping) with a *membership
probability* — the probability that the tuple exists at all.  Tuples are
immutable value objects; tables and algorithms never mutate them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import InvalidProbabilityError, InvalidScoreError

#: Tolerance used throughout the library when comparing probabilities.
PROBABILITY_ATOL = 1e-9


def validate_probability(value: float, *, what: str = "probability") -> float:
    """Validate that ``value`` is a probability in ``(0, 1]``.

    The model requires strictly positive membership probabilities (a tuple
    with probability 0 never exists and carries no information).  A tiny
    numerical overshoot above 1 (within :data:`PROBABILITY_ATOL`) is
    clamped to exactly 1 so that rule probabilities computed as sums of
    floats do not spuriously fail validation.

    :param value: the candidate probability.
    :param what: noun used in the error message.
    :returns: the validated (possibly clamped) probability.
    :raises InvalidProbabilityError: if the value is not in ``(0, 1]``
        (a :class:`~repro.exceptions.MutationError`, and therefore a
        ``ValidationError`` for existing callers).
    """
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise InvalidProbabilityError(
            f"{what} must be a real number, got {value!r}"
        )
    if math.isnan(value) or math.isinf(value):
        raise InvalidProbabilityError(f"{what} must be finite, got {value!r}")
    if value <= 0.0:
        raise InvalidProbabilityError(f"{what} must be > 0, got {value!r}")
    if value > 1.0 + PROBABILITY_ATOL:
        raise InvalidProbabilityError(f"{what} must be <= 1, got {value!r}")
    return min(float(value), 1.0)


def validate_score(value: float, *, what: str = "score") -> float:
    """Validate that ``value`` is a finite real number usable for ranking.

    NaN would poison the ranking order (every comparison false) and
    ``±inf`` breaks the ``-score`` sort key and the latency model's
    depth pricing, so both are rejected at the mutation boundary rather
    than left for the DP to misbehave on downstream.

    :raises InvalidScoreError: if the value is NaN, infinite, or not a
        number.
    """
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise InvalidScoreError(f"{what} must be a real number, got {value!r}")
    if math.isnan(value) or math.isinf(value):
        raise InvalidScoreError(f"{what} must be finite, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class UncertainTuple:
    """A tuple with a membership probability.

    :param tid: unique identifier within its table.  Any hashable value is
        accepted; strings and integers are typical.
    :param score: the value the default ranking function orders by
        (descending).  In the paper's running example this is the sighting
        duration / number of drifted days.
    :param probability: membership probability ``Pr(t)`` in ``(0, 1]``.
    :param attributes: optional extra payload (location, timestamp, ...);
        never interpreted by the algorithms but carried through query
        answers so applications can render results.
    """

    tid: Any
    score: float
    probability: float
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validated = validate_probability(self.probability, what=f"Pr({self.tid})")
        if validated != self.probability:
            object.__setattr__(self, "probability", validated)
        validate_score(self.score, what=f"score of tuple {self.tid!r}")

    def with_probability(self, probability: float) -> "UncertainTuple":
        """Return a copy of this tuple with a different membership probability."""
        return UncertainTuple(
            tid=self.tid,
            score=self.score,
            probability=probability,
            attributes=self.attributes,
        )

    def with_score(self, score: float) -> "UncertainTuple":
        """Return a copy of this tuple with a different ranking score."""
        return UncertainTuple(
            tid=self.tid,
            score=score,
            probability=self.probability,
            attributes=self.attributes,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UncertainTuple(tid={self.tid!r}, score={self.score!r}, p={self.probability:.4g})"
