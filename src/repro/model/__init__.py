"""Uncertain data model: tuples, generation rules, tables, possible worlds.

This package implements the possible-worlds data model of Section 2 of the
paper (after Abiteboul et al., Imielinski & Lipski, and Sarma et al.):

* :class:`~repro.model.tuples.UncertainTuple` — a tuple with a membership
  probability in ``(0, 1]`` and arbitrary attribute payload.
* :class:`~repro.model.rules.GenerationRule` — an exclusiveness constraint
  ``t_1 XOR t_2 XOR ... XOR t_m``: at most one involved tuple exists in any
  possible world.
* :class:`~repro.model.table.UncertainTable` — a collection of tuples plus a
  set of generation rules covering every tuple exactly once (singleton rules
  are implicit).
* :mod:`~repro.model.worlds` — exact possible-world enumeration, world
  probabilities (Equation 1), and world counting.

The model layer is deliberately independent of query semantics; ranking,
predicates, and the PT-k algorithms live in :mod:`repro.query` and
:mod:`repro.core`.
"""

from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.model.worlds import (
    PossibleWorld,
    count_possible_worlds,
    enumerate_possible_worlds,
    world_probability,
)

__all__ = [
    "GenerationRule",
    "PossibleWorld",
    "UncertainTable",
    "UncertainTuple",
    "count_possible_worlds",
    "enumerate_possible_worlds",
    "world_probability",
]
