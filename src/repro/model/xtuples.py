"""X-tuples: entities with alternative values (attribute-level uncertainty).

The paper's model is tuple-level: each tuple either exists or not, with
exclusiveness rules.  A very common alternative in the uncertain-data
literature is *attribute-level* uncertainty: one logical entity has
several alternative values (e.g. conflicting speed readings), each with
a probability.  That model embeds exactly into this library's:

* each alternative becomes one uncertain tuple, and
* the alternatives of one entity form a generation rule (they are
  mutually exclusive by construction).

This module provides the embedding — :class:`XTuple` and
:func:`table_from_xtuples` — plus the entity-level queries it induces:

* ``Pr^k(entity) = Σ_alternatives Pr^k(alt)`` (alternatives are
  exclusive, so the events "alt_i in top-k" are disjoint);
* :func:`entity_ptk_query`, the PT-k query whose answers are entities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.exact import ExactVariant, exact_topk_probabilities
from repro.core.results import AlgorithmStats, PTKAnswer
from repro.exceptions import QueryError, ValidationError
from repro.model.table import UncertainTable
from repro.query.topk import TopKQuery

#: Attribute key that records which entity an alternative belongs to.
ENTITY_ATTRIBUTE = "__entity__"
#: Attribute key that records the alternative's ordinal.
ALTERNATIVE_ATTRIBUTE = "__alternative__"


@dataclass(frozen=True)
class XTuple:
    """One entity with alternative (score, probability) values.

    :param entity_id: unique entity identifier.
    :param alternatives: ``(score, probability)`` pairs; probabilities
        must sum to at most 1 (the remainder is "the entity is absent").
    :param attributes: shared payload copied onto every alternative.
    """

    entity_id: Any
    alternatives: Tuple[Tuple[float, float], ...]
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.alternatives:
            raise ValidationError(
                f"x-tuple {self.entity_id!r} has no alternatives"
            )
        total = sum(probability for _, probability in self.alternatives)
        if total > 1.0 + 1e-9:
            raise ValidationError(
                f"x-tuple {self.entity_id!r} alternatives sum to "
                f"{total:.6f} > 1"
            )
        object.__setattr__(self, "alternatives", tuple(self.alternatives))

    @property
    def existence_probability(self) -> float:
        """Probability the entity appears at all (any alternative)."""
        return min(1.0, sum(p for _, p in self.alternatives))


def table_from_xtuples(
    xtuples: Sequence[XTuple], name: str = "x_relation"
) -> UncertainTable:
    """Embed a set of x-tuples into a tuple-level uncertain table.

    Alternative ``j`` of entity ``e`` becomes the tuple ``"e#j"`` with
    the alternative's score and probability, tagged with
    :data:`ENTITY_ATTRIBUTE`; multi-alternative entities get one
    generation rule each.
    """
    table = UncertainTable(name=name)
    seen = set()
    for xtuple in xtuples:
        if xtuple.entity_id in seen:
            raise ValidationError(
                f"duplicate entity id {xtuple.entity_id!r}"
            )
        seen.add(xtuple.entity_id)
        member_ids: List[Any] = []
        for j, (score, probability) in enumerate(xtuple.alternatives):
            tid = f"{xtuple.entity_id}#{j}"
            attributes = dict(xtuple.attributes)
            attributes[ENTITY_ATTRIBUTE] = xtuple.entity_id
            attributes[ALTERNATIVE_ATTRIBUTE] = j
            table.add(tid, score=score, probability=probability, **attributes)
            member_ids.append(tid)
        if len(member_ids) > 1:
            table.add_exclusive(f"xrule:{xtuple.entity_id}", *member_ids)
    return table


def entity_of(table: UncertainTable, tid: Any) -> Any:
    """The entity an alternative tuple belongs to."""
    return table.get(tid).attributes.get(ENTITY_ATTRIBUTE, tid)


def entity_topk_probabilities(
    table: UncertainTable,
    query: TopKQuery,
    variant: ExactVariant = ExactVariant.RC_LR,
) -> Dict[Any, float]:
    """``Pr^k`` per *entity*: the probability any alternative is top-k.

    Alternatives of one entity are mutually exclusive, so their top-k
    events are disjoint and the entity probability is the plain sum.
    Tables not built from x-tuples degrade gracefully: tuples without
    an entity tag count as their own entities.
    """
    per_tuple = exact_topk_probabilities(table, query, variant=variant)
    result: Dict[Any, float] = {}
    for tid, probability in per_tuple.items():
        entity = entity_of(table, tid)
        result[entity] = result.get(entity, 0.0) + probability
    return {entity: min(1.0, p) for entity, p in result.items()}


def entity_ptk_query(
    table: UncertainTable,
    query: TopKQuery,
    threshold: float,
    variant: ExactVariant = ExactVariant.RC_LR,
) -> PTKAnswer:
    """PT-k at the entity level: entities whose ``Pr^k`` passes ``p``.

    The answer's ``answers`` are entity ids ordered by each entity's
    best-ranked alternative.
    """
    if not (0.0 < threshold <= 1.0):
        raise QueryError(
            f"probability threshold must be in (0, 1], got {threshold!r}"
        )
    probabilities = entity_topk_probabilities(table, query, variant=variant)
    ranked = query.ranking.rank_table(query.selected(table))
    first_position: Dict[Any, int] = {}
    for position, tup in enumerate(ranked):
        entity = entity_of(table, tup.tid)
        first_position.setdefault(entity, position)
    answer = PTKAnswer(k=query.k, threshold=threshold, method="entity-ptk")
    answer.probabilities = probabilities
    answer.answers = sorted(
        (
            entity
            for entity, probability in probabilities.items()
            if probability >= threshold
        ),
        key=lambda entity: first_position.get(entity, 1 << 30),
    )
    answer.stats = AlgorithmStats(
        scan_depth=len(ranked), tuples_evaluated=len(ranked)
    )
    return answer
