"""Uncertain tables: tuples plus generation rules.

An :class:`UncertainTable` is the central container of the library.  It
stores uncertain tuples keyed by id and the multi-tuple generation rules
among them, and enforces the model invariants of Section 2:

* every tuple id is unique,
* every tuple is involved in at most one multi-tuple rule,
* for every rule ``R``, ``Pr(R) = sum of member probabilities <= 1``.

Independent tuples conceptually carry a trivial singleton rule; the table
does not materialise those, but :meth:`UncertainTable.rule_of` reports a
synthetic singleton rule for them so algorithms can treat the rule set as
a partition of the tuples.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.exceptions import (
    DuplicateTupleError,
    RuleConflictError,
    UnknownTupleError,
    ValidationError,
)
from repro.model.rules import GenerationRule
from repro.model.tuples import PROBABILITY_ATOL, UncertainTuple

#: Prefix used for synthetic singleton rule ids.
_SINGLETON_PREFIX = "__singleton__"


class UncertainTable:
    """A set of uncertain tuples with exclusiveness generation rules.

    Tables are mutable while being built (``add_tuple`` / ``add_rule``) and
    are treated as immutable by all algorithms.  Iteration yields tuples in
    insertion order; ranked access is provided by
    :meth:`ranked_tuples` and by :class:`repro.query.access.RankedStream`.

    :param name: optional human-readable table name used in reprs and
        error messages.
    """

    def __init__(self, name: str = "uncertain_table") -> None:
        self.name = name
        self._tuples: Dict[Any, UncertainTuple] = {}
        # Insertion-ordered set of tuple ids (dict keys).  A dict rather
        # than a list so removal is O(1) — bulk WAL-replayed deletions
        # (repro.durable) would go quadratic on a list's O(n) remove.
        self._order: Dict[Any, None] = {}
        self._rules: Dict[Any, GenerationRule] = {}
        self._rule_of_tuple: Dict[Any, Any] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation.

        ``(table, version)`` identifies one immutable snapshot of the
        table's contents; the prepared-ranking cache
        (:mod:`repro.query.prepare`) keys on it so stale selections and
        rankings are never served after a mutation.
        """
        return self._version

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_tuple(self, tup: UncertainTuple) -> None:
        """Add a tuple to the table.

        :raises DuplicateTupleError: if a tuple with the same id exists.
        """
        if tup.tid in self._tuples:
            raise DuplicateTupleError(
                f"table {self.name!r} already contains tuple {tup.tid!r}"
            )
        self._tuples[tup.tid] = tup
        self._order[tup.tid] = None
        self._version += 1

    def add(
        self,
        tid: Any,
        score: float,
        probability: float,
        **attributes: Any,
    ) -> UncertainTuple:
        """Convenience wrapper: build and add an :class:`UncertainTuple`.

        :returns: the tuple that was added.
        """
        tup = UncertainTuple(
            tid=tid, score=score, probability=probability, attributes=attributes
        )
        self.add_tuple(tup)
        return tup

    def add_rule(self, rule: GenerationRule) -> None:
        """Register a multi-tuple generation rule.

        :raises UnknownTupleError: if the rule references an id that is not
            in the table.
        :raises RuleConflictError: if any involved tuple already belongs to
            another multi-tuple rule.
        :raises ValidationError: if the members' probabilities sum above 1,
            or the rule id is already taken.
        """
        if rule.rule_id in self._rules:
            raise ValidationError(
                f"table {self.name!r} already contains rule {rule.rule_id!r}"
            )
        for tid in rule.tuple_ids:
            if tid not in self._tuples:
                raise UnknownTupleError(
                    f"rule {rule.rule_id!r} references unknown tuple {tid!r}"
                )
            if tid in self._rule_of_tuple:
                raise RuleConflictError(
                    f"tuple {tid!r} is already involved in rule "
                    f"{self._rule_of_tuple[tid]!r}; a tuple may be involved in "
                    f"at most one generation rule"
                )
        total = sum(self._tuples[tid].probability for tid in rule.tuple_ids)
        if total > 1.0 + PROBABILITY_ATOL:
            raise ValidationError(
                f"rule {rule.rule_id!r} has total probability {total:.6f} > 1"
            )
        self._rules[rule.rule_id] = rule
        if rule.is_multi:
            for tid in rule.tuple_ids:
                self._rule_of_tuple[tid] = rule.rule_id
        self._version += 1

    def add_exclusive(self, rule_id: Any, *tuple_ids: Any) -> GenerationRule:
        """Convenience wrapper: build and add a :class:`GenerationRule`."""
        rule = GenerationRule(rule_id=rule_id, tuple_ids=tuple(tuple_ids))
        self.add_rule(rule)
        return rule

    def remove_tuple(self, tid: Any) -> UncertainTuple:
        """Remove a tuple, shrinking any rule that involves it.

        A multi-tuple rule reduced to one member is dropped (its
        survivor becomes independent), matching the projection semantics
        of :meth:`filter`.

        :returns: the removed tuple.
        :raises UnknownTupleError: if absent.
        """
        removed = self.get(tid)
        del self._tuples[tid]
        del self._order[tid]
        rule_id = self._rule_of_tuple.pop(tid, None)
        if rule_id is not None:
            rule = self._rules[rule_id]
            shrunk = rule.restricted_to(set(self._tuples))
            if shrunk is None or not shrunk.is_multi:
                del self._rules[rule_id]
                if shrunk is not None:
                    self._rule_of_tuple.pop(shrunk.tuple_ids[0], None)
            else:
                self._rules[rule_id] = shrunk
        else:
            # an explicitly registered singleton rule, if any
            for key, rule in list(self._rules.items()):
                if rule.is_singleton and rule.tuple_ids[0] == tid:
                    del self._rules[key]
        self._version += 1
        return removed

    def update_probability(self, tid: Any, probability: float) -> UncertainTuple:
        """Replace a tuple's membership probability in place.

        :returns: the new tuple object.
        :raises ValidationError: if the change would push the tuple's
            rule above total probability 1.
        """
        current = self.get(tid)
        updated = current.with_probability(probability)
        rule_id = self._rule_of_tuple.get(tid)
        if rule_id is not None:
            rule = self._rules[rule_id]
            total = sum(
                (updated if member == tid else self._tuples[member]).probability
                for member in rule.tuple_ids
            )
            if total > 1.0 + PROBABILITY_ATOL:
                raise ValidationError(
                    f"updating Pr({tid!r}) to {probability} would give rule "
                    f"{rule_id!r} total probability {total:.6f} > 1"
                )
        self._tuples[tid] = updated
        self._version += 1
        return updated

    def update_score(self, tid: Any, score: float) -> UncertainTuple:
        """Replace a tuple's ranking score in place.

        The tuple keeps its membership probability, attributes, and rule
        membership; only its position in the ranked order moves.

        :returns: the new tuple object.
        :raises InvalidScoreError: if the score is NaN, infinite, or not
            a number (validated by the tuple constructor).
        :raises UnknownTupleError: if absent.
        """
        current = self.get(tid)
        updated = current.with_score(score)
        self._tuples[tid] = updated
        self._version += 1
        return updated

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[UncertainTuple]:
        return (self._tuples[tid] for tid in self._order)

    def __contains__(self, tid: Any) -> bool:
        return tid in self._tuples

    def get(self, tid: Any) -> UncertainTuple:
        """Return the tuple with id ``tid``.

        :raises UnknownTupleError: if absent.
        """
        try:
            return self._tuples[tid]
        except KeyError:
            raise UnknownTupleError(
                f"table {self.name!r} has no tuple {tid!r}"
            ) from None

    def tuple_ids(self) -> List[Any]:
        """All tuple ids in insertion order."""
        return list(self._order)

    def tuples(self) -> List[UncertainTuple]:
        """All tuples in insertion order."""
        return [self._tuples[tid] for tid in self._order]

    def probability(self, tid: Any) -> float:
        """Membership probability ``Pr(t)`` of the tuple with id ``tid``."""
        return self.get(tid).probability

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    def multi_rules(self) -> List[GenerationRule]:
        """All explicitly registered rules with two or more members."""
        return [rule for rule in self._rules.values() if rule.is_multi]

    def rules(self) -> List[GenerationRule]:
        """All rules covering the table: explicit multi-tuple rules plus a
        synthetic singleton rule for every independent tuple.

        The result is a partition of the tuple ids, matching the paper's
        convention that "each tuple is involved in one and only one
        generation rule".
        """
        explicit = list(self._rules.values())
        covered = {tid for rule in explicit for tid in rule.tuple_ids}
        singletons = [
            GenerationRule(rule_id=f"{_SINGLETON_PREFIX}{tid}", tuple_ids=(tid,))
            for tid in self._order
            if tid not in covered
        ]
        return explicit + singletons

    def rule_of(self, tid: Any) -> GenerationRule:
        """The (unique) generation rule involving tuple ``tid``.

        Independent tuples get a synthetic singleton rule.
        """
        self.get(tid)  # raise if unknown
        rule_id = self._rule_of_tuple.get(tid)
        if rule_id is not None:
            return self._rules[rule_id]
        # An explicitly-registered singleton rule still wins over the
        # synthetic one so round-tripping through io preserves rule ids.
        for rule in self._rules.values():
            if rule.is_singleton and rule.tuple_ids[0] == tid:
                return rule
        return GenerationRule(rule_id=f"{_SINGLETON_PREFIX}{tid}", tuple_ids=(tid,))

    def multi_rule_id_of(self, tid: Any) -> Optional[Any]:
        """Id of the multi-tuple rule involving ``tid``, or ``None``."""
        return self._rule_of_tuple.get(tid)

    def is_independent(self, tid: Any) -> bool:
        """True if ``tid`` is not involved in any multi-tuple rule."""
        self.get(tid)
        return tid not in self._rule_of_tuple

    def rule_probability(self, rule: GenerationRule) -> float:
        """``Pr(R)``: sum of the members' membership probabilities.

        Compensated (``math.fsum``, the same primitive the core kernel
        wraps) so the membership-pruning comparison against rule-tuple
        probabilities never disagrees with the DP by accumulated
        roundoff.  The model layer cannot import the kernel (the core
        package imports the model), hence the direct ``fsum``.
        """
        total = math.fsum(
            self._tuples[tid].probability for tid in rule.tuple_ids
        )
        return min(total, 1.0)

    # ------------------------------------------------------------------
    # Derived tables
    # ------------------------------------------------------------------
    def filter(
        self,
        predicate: Callable[[UncertainTuple], bool],
        name: Optional[str] = None,
    ) -> "UncertainTable":
        """Project the table onto tuples satisfying ``predicate``.

        This implements ``P(T)`` of Section 4: surviving tuples keep their
        membership probabilities, and each rule is projected onto the
        surviving tuples (rules reduced to zero members are dropped;
        rules reduced to one member become singleton rules, i.e. the tuple
        becomes independent).
        """
        result = UncertainTable(name=name or f"{self.name}_filtered")
        keep: set = set()
        for tid in self._order:
            tup = self._tuples[tid]
            if predicate(tup):
                result.add_tuple(tup)
                keep.add(tid)
        for rule in self._rules.values():
            projected = rule.restricted_to(keep)
            if projected is not None and projected.is_multi:
                result.add_rule(projected)
        return result

    def subset(self, tuple_ids: Iterable[Any], name: Optional[str] = None) -> "UncertainTable":
        """Project the table onto an explicit set of tuple ids."""
        wanted = set(tuple_ids)
        for tid in wanted:
            self.get(tid)
        return self.filter(lambda t: t.tid in wanted, name=name)

    # ------------------------------------------------------------------
    # Ranked access
    # ------------------------------------------------------------------
    def ranked_tuples(
        self, key: Optional[Callable[[UncertainTuple], float]] = None
    ) -> List[UncertainTuple]:
        """Tuples sorted by the ranking function, best first.

        :param key: score extractor; defaults to the tuple's ``score``
            attribute.  Higher is better.  Ties are broken by tuple id
            (stringified) so the order is total, as the paper requires.
        """
        if key is None:
            key = lambda t: t.score  # noqa: E731 - tiny default
        return sorted(self, key=lambda t: (-key(t), str(t.tid)))

    # ------------------------------------------------------------------
    # Statistics and validation
    # ------------------------------------------------------------------
    def expected_size(self) -> float:
        """Expected number of tuples in a possible world."""
        return sum(t.probability for t in self)

    def validate(self) -> None:
        """Re-check all invariants; raises :class:`ValidationError` on failure.

        Construction already validates incrementally; this is a belt-and-
        braces hook for tables deserialised from external files.
        """
        seen: set = set()
        for rule in self._rules.values():
            total = 0.0
            for tid in rule.tuple_ids:
                if tid not in self._tuples:
                    raise UnknownTupleError(
                        f"rule {rule.rule_id!r} references unknown tuple {tid!r}"
                    )
                if rule.is_multi:
                    if tid in seen:
                        raise RuleConflictError(
                            f"tuple {tid!r} appears in more than one rule"
                        )
                    seen.add(tid)
                total += self._tuples[tid].probability
            if total > 1.0 + PROBABILITY_ATOL:
                raise ValidationError(
                    f"rule {rule.rule_id!r} has total probability {total:.6f} > 1"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UncertainTable({self.name!r}: {len(self._tuples)} tuples, "
            f"{len(self.multi_rules())} multi-tuple rules)"
        )


def table_from_rows(
    rows: Sequence[tuple],
    name: str = "uncertain_table",
) -> UncertainTable:
    """Build a table from ``(tid, score, probability)`` triples.

    A compact constructor used pervasively by tests and examples::

        table = table_from_rows([("t1", 100, 0.7), ("t2", 90, 0.2)])
    """
    table = UncertainTable(name=name)
    for tid, score, probability in rows:
        table.add(tid, score, probability)
    return table
