"""Ranked indexes and paged ranked streams.

:class:`RankedIndex` materialises the ranking order as its own page
sequence (a clustered index on the ranking score): the tuples are laid
out best-first, ``page_capacity`` per index page.  Ranked retrieval then
reads index pages sequentially — the access pattern the TA-style method
of Section 4.4 assumes — and the number of index pages read is the I/O
cost of a query.

:class:`PagedRankedStream` adapts the index to the
:class:`~repro.query.access.RankedStream` interface consumed by the
exact PT-k engine, so the engine's early termination (pruning) directly
translates into pages *not* read.
"""

from __future__ import annotations

from typing import List, Optional

from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.query.access import RankedStream
from repro.query.ranking import RankingFunction, by_score
from repro.storage.pages import DEFAULT_PAGE_CAPACITY, Page


class RankedIndex:
    """A clustered ranked index over an uncertain table.

    :param table: the indexed table.
    :param ranking: ranking function defining the order (descending
        score by default).
    :param page_capacity: tuples per index page.

    Building the index sorts once (the analogue of index construction);
    reads are counted per index page through :meth:`read_page`.
    """

    def __init__(
        self,
        table: UncertainTable,
        ranking: Optional[RankingFunction] = None,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ) -> None:
        self.ranking = ranking or by_score()
        self.page_capacity = page_capacity
        ranked = self.ranking.rank_table(table)
        self._pages: List[Page] = []
        for start in range(0, len(ranked), page_capacity):
            page = Page(len(self._pages), page_capacity)
            for record in ranked[start : start + page_capacity]:
                page.append(record)
            self._pages.append(page)
        self._size = len(ranked)
        self.pages_read = 0

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def __len__(self) -> int:
        return self._size

    def read_page(self, page_id: int) -> Page:
        """Fetch one index page, counting the read."""
        self.pages_read += 1
        return self._pages[page_id]

    def top_pages(self, n_pages: int) -> List[UncertainTuple]:
        """The best-ranked tuples of the first ``n_pages`` pages."""
        records: List[UncertainTuple] = []
        for page_id in range(min(n_pages, len(self._pages))):
            records.extend(self.read_page(page_id).records())
        return records

    def reset_counters(self) -> None:
        self.pages_read = 0


class PagedRankedStream(RankedStream):
    """A ranked stream backed by a :class:`RankedIndex`.

    Pages are pulled lazily: the first ``next_tuple`` of each page costs
    one index-page read.  ``pages_read`` on the index reflects exactly
    how far the PT-k scan got, so::

        index = RankedIndex(table)
        stream = PagedRankedStream(index)
        engine = ExactPTKEngine(stream.full_ranked_list(), ...)  # or use
        # the convenience below

    Most callers use :func:`ptk_query_over_index`, which wires the
    stream into the exact engine and reports the I/O count.
    """

    def __init__(self, index: RankedIndex) -> None:
        # Initialise the base class with an empty buffer; tuples arrive
        # page by page.
        super().__init__([], presorted=True)
        self._index = index
        self._next_page = 0

    def _ensure_buffered(self, position: int) -> None:
        while position >= len(self._ranked) and self._next_page < self._index.page_count:
            page = self._index.read_page(self._next_page)
            self._next_page += 1
            self._ranked.extend(page.records())

    def __len__(self) -> int:
        return len(self._index)

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._index)

    def next_tuple(self) -> Optional[UncertainTuple]:
        self._ensure_buffered(self._cursor)
        return super().next_tuple()

    def peek(self) -> Optional[UncertainTuple]:
        self._ensure_buffered(self._cursor)
        return super().peek()

    @property
    def pages_read(self) -> int:
        """Index pages pulled so far."""
        return self._index.pages_read

    def full_ranked_list(self) -> List[UncertainTuple]:
        """Materialise everything (reads every remaining page)."""
        self._ensure_buffered(len(self._index))
        return list(self._ranked)


def ptk_query_over_index(
    index: RankedIndex,
    k: int,
    threshold: float,
    variant=None,
    table: Optional[UncertainTable] = None,
):
    """Answer a PT-k query through the paged index, reporting I/O.

    :param table: the indexed table, needed when it has multi-tuple
        rules (rule membership and rank positions are catalog metadata —
        known without reading tuple pages; only the tuple *records* are
        paged).
    :returns: ``(answer, pages_read)`` — the usual
        :class:`~repro.core.results.PTKAnswer` plus the number of index
        pages the pruned scan actually touched.
    """
    from repro.core.exact import ExactPTKEngine, ExactVariant
    from repro.core.rule_compression import rule_index_of_table

    stream = PagedRankedStream(index)
    ranked = index.top_pages(index.page_count)  # catalog view
    index.reset_counters()
    if table is not None:
        rule_of = rule_index_of_table(table)
        rule_probability = {
            rule.rule_id: table.rule_probability(rule)
            for rule in table.multi_rules()
        }
    else:
        rule_of = {}
        rule_probability = {}
    engine = ExactPTKEngine(
        ranked,
        rule_of=rule_of,
        rule_probability=rule_probability,
        k=k,
        threshold=threshold,
        variant=variant or ExactVariant.RC_LR,
    )
    # Re-wire the engine's stream to the paged one so retrieval is paid
    # per page.
    engine._stream = stream
    answer = engine.run()
    return answer, index.pages_read
