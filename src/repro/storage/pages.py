"""Fixed-capacity pages and heap files with read accounting.

A :class:`Page` holds up to ``capacity`` tuple records; a
:class:`HeapFile` is a list of pages filled in insertion order.  Both
count *reads*: every access through the public retrieval methods bumps
the read counter once per page touched, which is the cost model the
benchmark harness reports as I/O.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Sequence

from repro.exceptions import QueryError, UnknownTupleError
from repro.model.tuples import UncertainTuple
from repro.obs import OBS, catalogued

#: Default tuples per page; small enough that paging effects are visible
#: on test-sized tables, large enough to be realistic for narrow records.
DEFAULT_PAGE_CAPACITY = 64


class Page:
    """One fixed-capacity page of tuple records.

    :param page_id: position of the page in its file.
    :param capacity: maximum number of records.
    """

    __slots__ = ("page_id", "capacity", "_records")

    def __init__(self, page_id: int, capacity: int = DEFAULT_PAGE_CAPACITY) -> None:
        if capacity <= 0:
            raise QueryError(f"page capacity must be positive, got {capacity}")
        self.page_id = page_id
        self.capacity = capacity
        self._records: List[UncertainTuple] = []

    @property
    def is_full(self) -> bool:
        return len(self._records) >= self.capacity

    def append(self, record: UncertainTuple) -> None:
        """Add a record; the caller guarantees the page is not full."""
        if self.is_full:
            raise QueryError(f"page {self.page_id} is full")
        self._records.append(record)

    def records(self) -> List[UncertainTuple]:
        """The page's records (accounting is the file's job)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Page({self.page_id}, {len(self)}/{self.capacity})"


class HeapFile:
    """An append-only file of pages with a read counter.

    :param page_capacity: records per page.

    The heap is the *base* storage; ranked access goes through
    :class:`~repro.storage.index.RankedIndex`, which stores row
    locators (page id, slot) in ranking order.
    """

    def __init__(self, page_capacity: int = DEFAULT_PAGE_CAPACITY) -> None:
        self.page_capacity = page_capacity
        self._pages: List[Page] = []
        self._locators: dict = {}  # tid -> (page_id, slot)
        self.pages_read = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, record: UncertainTuple) -> tuple:
        """Append a record, returning its ``(page_id, slot)`` locator."""
        if record.tid in self._locators:
            raise QueryError(f"heap already stores tuple {record.tid!r}")
        if not self._pages or self._pages[-1].is_full:
            self._pages.append(Page(len(self._pages), self.page_capacity))
        page = self._pages[-1]
        slot = len(page)
        page.append(record)
        locator = (page.page_id, slot)
        self._locators[record.tid] = locator
        return locator

    def bulk_load(self, records: Sequence[UncertainTuple]) -> None:
        """Insert many records in order."""
        for record in records:
            self.insert(record)

    # ------------------------------------------------------------------
    # Reads (counted)
    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        return len(self._pages)

    def __len__(self) -> int:
        return len(self._locators)

    def read_page(self, page_id: int) -> Page:
        """Fetch one page, counting the read."""
        if page_id < 0 or page_id >= len(self._pages):
            raise QueryError(f"no page {page_id} (file has {len(self._pages)})")
        self.pages_read += 1
        if OBS.enabled:
            catalogued("repro_storage_pages_read_total").inc()
        return self._pages[page_id]

    def fetch(self, tid: Any) -> UncertainTuple:
        """Fetch one record by tuple id (one page read)."""
        try:
            page_id, slot = self._locators[tid]
        except KeyError:
            raise UnknownTupleError(f"heap has no tuple {tid!r}") from None
        return self.read_page(page_id).records()[slot]

    def locator_of(self, tid: Any) -> tuple:
        """The ``(page_id, slot)`` of a record (catalog lookup, free)."""
        try:
            return self._locators[tid]
        except KeyError:
            raise UnknownTupleError(f"heap has no tuple {tid!r}") from None

    def scan(self) -> Iterator[UncertainTuple]:
        """Full scan in physical order, counting every page."""
        for page_id in range(len(self._pages)):
            for record in self.read_page(page_id).records():
                yield record

    def reset_counters(self) -> None:
        """Zero the read counter (benchmarks call this between runs)."""
        self.pages_read = 0
