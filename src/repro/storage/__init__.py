"""Storage substrate: paged heap files and ranked indexes with I/O costs.

The paper assumes tuples "can be retrieved in batch ... in the ranking
order" by a TA-style method over a ranked index, and its scan-depth
figures are interesting precisely because retrieval has a per-tuple
(really per-page) cost in a disk-resident system.  This subpackage
builds that substrate:

* :class:`~repro.storage.pages.Page` / :class:`~repro.storage.pages.HeapFile`
  — fixed-capacity pages of tuple records with read accounting;
* :class:`~repro.storage.index.RankedIndex` — the ranking order
  materialised as a page sequence (a clustered index on the ranking
  score), serving block-at-a-time ranked retrieval;
* :class:`~repro.storage.index.PagedRankedStream` — a drop-in
  :class:`~repro.query.access.RankedStream` whose cursor pulls pages on
  demand and reports *page I/Os* alongside scan depth, so the exact
  algorithm's early termination translates directly into saved I/O.

Everything is in-memory (it is a cost model, not a persistence layer —
persistence lives in :mod:`repro.io`), but the access pattern and the
counters are the ones a buffer manager would see.
"""

from repro.storage.index import PagedRankedStream, RankedIndex
from repro.storage.pages import DEFAULT_PAGE_CAPACITY, HeapFile, Page

__all__ = [
    "DEFAULT_PAGE_CAPACITY",
    "HeapFile",
    "Page",
    "PagedRankedStream",
    "RankedIndex",
]
