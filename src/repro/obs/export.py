"""Exporters: JSON snapshots and Prometheus text exposition.

Two structured views of the collected data:

* :func:`snapshot` — a JSON-able dict bundling every metric (with its
  catalogue description and samples) and the finished span trees;
  :func:`to_json` / :func:`write_json` serialise it.  The snapshot is
  self-describing: re-parsing the JSON yields the snapshot verbatim
  (the round-trip property the test suite checks).
* :func:`to_prometheus` — the plain-text exposition format understood
  by Prometheus scrapers.  Counters and gauges map directly; histograms
  export ``_bucket``/``_sum``/``_count`` series with cumulative ``le``
  buckets; timers export as summaries (``_sum``/``_count`` plus a
  ``_max`` gauge).  :func:`parse_prometheus` reads the samples back for
  tests and ad-hoc tooling.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer
from repro.obs.tracing import Tracer

#: Schema version stamped into every JSON snapshot.
SNAPSHOT_VERSION = 1


def _default_state():
    from repro.obs import OBS  # deferred: repro.obs imports this module

    return OBS


def snapshot(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Dict[str, Any]:
    """One JSON-able dict of everything collected so far.

    :param registry: defaults to the global registry.
    :param tracer: defaults to the global tracer; pass ``False``-y
        custom tracer to control which traces are included.
    :returns: ``{"version", "metrics": {name: description}, "traces":
        [span trees, oldest first]}``.
    """
    state = _default_state()
    registry = registry if registry is not None else state.registry
    tracer = tracer if tracer is not None else state.tracer
    return {
        "version": SNAPSHOT_VERSION,
        "metrics": registry.snapshot(),
        "traces": [span.to_dict() for span in tracer.traces()],
    }


def to_json(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    indent: Optional[int] = 2,
) -> str:
    """The snapshot serialised as JSON text."""
    return json.dumps(snapshot(registry, tracer), indent=indent, sort_keys=True)


def write_json(
    path: Union[str, Path],
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Path:
    """Write the JSON snapshot to ``path``; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_json(registry, tracer) + "\n")
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [*labels.items(), *extra]
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in pairs
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format."""
    state = _default_state()
    registry = registry if registry is not None else state.registry
    lines: List[str] = []
    for metric in sorted(registry, key=lambda m: m.name):
        if isinstance(metric, Counter):
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} counter")
            for sample in metric.samples():
                lines.append(
                    f"{metric.name}{_format_labels(sample['labels'])} "
                    f"{_format_value(sample['value'])}"
                )
        elif isinstance(metric, Gauge):
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} gauge")
            for sample in metric.samples():
                lines.append(
                    f"{metric.name}{_format_labels(sample['labels'])} "
                    f"{_format_value(sample['value'])}"
                )
        elif isinstance(metric, Histogram):
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} histogram")
            for sample in metric.samples():
                labels = sample["labels"]
                running = 0
                for bound, cumulative in zip(
                    metric.buckets,
                    list(sample["buckets"].values())[: len(metric.buckets)],
                ):
                    running = cumulative
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_format_labels(labels, (('le', _format_value(bound)),))} "
                        f"{running}"
                    )
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_format_labels(labels, (('le', '+Inf'),))} "
                    f"{sample['count']}"
                )
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} "
                    f"{sample['count']}"
                )
        elif isinstance(metric, Timer):
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} summary")
            for sample in metric.samples():
                labels = sample["labels"]
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} "
                    f"{sample['count']}"
                )
                lines.append(
                    f"{metric.name}_max{_format_labels(labels)} "
                    f"{_format_value(sample['max'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition text back into ``{(name, labels): value}``.

    Labels are a sorted tuple of ``(name, value)`` pairs.  Comment and
    blank lines are skipped.  Used by the round-trip tests and handy for
    quick assertions in notebooks.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            continue
        labels_text = match.group("labels") or ""
        labels = tuple(
            sorted(
                (name, value.replace(r"\"", '"').replace(r"\\", "\\"))
                for name, value in _LABEL_RE.findall(labels_text)
            )
        )
        raw = match.group("value")
        value = math.inf if raw == "+Inf" else float(raw)
        out[(match.group("name"), labels)] = value
    return out


# ----------------------------------------------------------------------
# Human-readable rendering (the `repro stats` CLI view)
# ----------------------------------------------------------------------
def render_text(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> str:
    """A compact terminal report: metric values plus the last span tree."""
    state = _default_state()
    registry = registry if registry is not None else state.registry
    tracer = tracer if tracer is not None else state.tracer
    lines: List[str] = ["== metrics =="]
    for metric in sorted(registry, key=lambda m: m.name):
        for sample in metric.samples():
            labels = _format_labels(sample["labels"])
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{metric.name}{labels} = {_format_value(sample['value'])}"
                )
            elif isinstance(metric, Histogram):
                count = sample["count"]
                mean = sample["sum"] / count if count else 0.0
                lines.append(
                    f"{metric.name}{labels} count={count} mean={mean:.3g}"
                )
            elif isinstance(metric, Timer):
                count = sample["count"]
                mean = sample["sum"] / count if count else 0.0
                lines.append(
                    f"{metric.name}{labels} count={count} "
                    f"total={sample['sum']:.6f}s mean={mean:.6f}s "
                    f"max={sample['max']:.6f}s"
                )
    trace = tracer.last_trace()
    if trace is not None:
        lines.append("")
        lines.append(f"== last trace ({trace.trace_id}) ==")
        _render_span(trace, lines, depth=0)
    return "\n".join(lines) + "\n"


def _render_span(span, lines: List[str], depth: int) -> None:
    indent = "  " * depth
    attrs = ""
    if span.attributes:
        inner = ", ".join(
            f"{key}={value!r}" for key, value in sorted(span.attributes.items())
        )
        attrs = f"  [{inner}]"
    lines.append(
        f"{indent}{span.name}  {span.duration * 1000:.3f} ms{attrs}"
    )
    for child in span.children:
        _render_span(child, lines, depth + 1)
