"""The metric catalogue: every metric the engine may emit, with provenance.

Each entry records the metric's name, type, label names, help text, and
the part of the paper whose claim it witnesses at runtime (theorem,
section, or figure).  Instrumentation sites and the exporter are free to
emit any subset; :func:`validate_snapshot` checks that whatever *was*
emitted matches the catalogue — the CI smoke job and the test suite run
it over real query output.

Keeping the catalogue in data (rather than scattered through call sites)
gives dashboards and the docs one authoritative list; see
``docs/observability.md`` for the rendered version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple


@dataclass(frozen=True)
class MetricSpec:
    """Catalogue entry for one metric.

    :param name: full metric name (``repro_`` prefix).
    :param type: ``counter`` / ``gauge`` / ``histogram`` / ``timer``.
    :param labels: label names the metric carries, possibly empty.
    :param help: one-line description (also exported as Prometheus HELP).
    :param paper_ref: theorem / section / figure the metric witnesses.
    """

    name: str
    type: str
    labels: Tuple[str, ...] = ()
    help: str = ""
    paper_ref: str = ""


def _spec(name: str, type: str, labels: Tuple[str, ...], help: str, ref: str) -> MetricSpec:
    return MetricSpec(name=name, type=type, labels=labels, help=help, paper_ref=ref)


#: Every metric the instrumented engine can emit, keyed by name.
CATALOG: Dict[str, MetricSpec] = {
    spec.name: spec
    for spec in [
        # ---------------------------------------------------- exact engine
        _spec(
            "repro_ptk_queries_total", "counter", ("method",),
            "PT-k queries answered, by algorithm (RC, RC+AR, RC+LR, sampling).",
            "Section 6.2 (variant comparison)",
        ),
        _spec(
            "repro_ptk_tuples_scanned_total", "counter", (),
            "Tuples retrieved from the ranked stream across all queries.",
            "Figures 4 and 7 (scan depth)",
        ),
        _spec(
            "repro_ptk_scan_depth", "histogram", (),
            "Per-query scan depth distribution.",
            "Figures 4 and 7",
        ),
        _spec(
            "repro_ptk_tuples_evaluated_total", "counter", (),
            "Tuples whose Pr^k was actually computed (not pruned).",
            "Section 4.4",
        ),
        _spec(
            "repro_ptk_tuples_pruned_total", "counter", ("theorem",),
            "Tuples skipped without computing Pr^k, by pruning rule "
            "(theorem=membership|same-rule).",
            "Theorems 3 and 4",
        ),
        _spec(
            "repro_ptk_scan_stops_total", "counter", ("reason",),
            "How scans ended (reason=exhausted|total-probability|tail-bound).",
            "Theorem 5 and the tail stop bound",
        ),
        _spec(
            "repro_ptk_dp_extensions_total", "counter", (),
            "O(k) subset-probability DP extensions performed.",
            "Equation 5 (the paper's cost measure)",
        ),
        _spec(
            "repro_ptk_dp_units", "histogram", (),
            "Width of the DP unit order per evaluated tuple "
            "(compressed dominant-set size actually folded).",
            "Section 4.3 (DP state size)",
        ),
        # ----------------------------------------------- rule compression
        _spec(
            "repro_compression_units_total", "counter", ("kind",),
            "Compression units created during scans "
            "(kind=independent|rule).",
            "Section 4.3.1 (rule-tuple compression)",
        ),
        _spec(
            "repro_compression_rule_merges_total", "counter", (),
            "Rule-tuple rebuilds that merged an additional scanned member.",
            "Corollary 1 (rule-tuple collapse)",
        ),
        _spec(
            "repro_compression_dominant_set_size", "histogram", (),
            "Compressed dominant-set sizes handed to the DP.",
            "Section 4.3.1",
        ),
        # ----------------------------------------------------- reordering
        _spec(
            "repro_reorder_prefix_hits_total", "counter", (),
            "DP evaluations that reused a non-empty shared prefix.",
            "Section 4.3.2 (prefix sharing)",
        ),
        _spec(
            "repro_reorder_prefix_misses_total", "counter", (),
            "DP evaluations that could reuse nothing.",
            "Section 4.3.2",
        ),
        _spec(
            "repro_reorder_dp_cells_reused_total", "counter", (),
            "DP prefix entries served from the shared cache.",
            "Equation 5 (cost saved)",
        ),
        _spec(
            "repro_reorder_dp_cells_recomputed_total", "counter", (),
            "DP entries extended past the shared prefix.",
            "Equation 5 (cost paid)",
        ),
        # -------------------------------------------------- prepare cache
        _spec(
            "repro_prepare_cache_hits_total", "counter", (),
            "Query preparations (selection + ranking + rule index) served "
            "from the table-level cache.",
            "Beyond the paper (production serving)",
        ),
        _spec(
            "repro_prepare_cache_misses_total", "counter", (),
            "Query preparations built from scratch (cache miss or no cache).",
            "Beyond the paper (production serving)",
        ),
        _spec(
            "repro_prepare_cache_invalidations_total", "counter", (),
            "Cached preparations dropped by explicit invalidation "
            "(table drops, re-registrations).",
            "Beyond the paper (production serving)",
        ),
        _spec(
            "repro_prepare_cache_refreshes_total", "counter", (),
            "Cached preparations advanced in place by a table delta "
            "instead of being invalidated and rebuilt.",
            "Beyond the paper (incremental maintenance)",
        ),
        # -------------------------------------------------- dynamic index
        _spec(
            "repro_dyn_deltas_applied_total", "counter", ("op",),
            "Mutations applied to a dynamic PT-k index as localized "
            "deltas (op=add|remove|update|score|rule).",
            "Beyond the paper (incremental maintenance)",
        ),
        _spec(
            "repro_dyn_suffix_length", "histogram", (),
            "Ranks re-evaluated per delta (the suffix of the ranked "
            "order whose DP state the mutation could change).",
            "Beyond the paper (incremental maintenance)",
        ),
        _spec(
            "repro_dyn_fallbacks_total", "counter", ("reason",),
            "Dynamic-index reads that fell back to a cold rebuild "
            "(reason=stale|unsupported|backlog|cap|error).",
            "Beyond the paper (incremental maintenance)",
        ),
        _spec(
            "repro_dyn_refresh_seconds", "timer", (),
            "Wall time applying one delta to a dynamic index "
            "(suffix re-evaluation included).",
            "Beyond the paper (incremental maintenance)",
        ),
        _spec(
            "repro_dyn_reads_total", "counter", ("source",),
            "PT-k reads answered through the dynamic registry "
            "(source=index|rebuild).",
            "Beyond the paper (incremental maintenance)",
        ),
        # ------------------------------------------------------- sampling
        _spec(
            "repro_sampler_units_total", "counter", (),
            "Sample units (possible-world top-k lists) drawn.",
            "Section 5",
        ),
        _spec(
            "repro_sampler_batches_total", "counter", (),
            "Vectorised sampler batches drawn (each covers many units).",
            "Section 5 (batched unit generation)",
        ),
        _spec(
            "repro_sampler_unit_scan_length", "histogram", (),
            "Tuples scanned per sample unit under lazy generation.",
            "Section 5 / Figure 4 (sample length)",
        ),
        _spec(
            "repro_sampler_lazy_early_stops_total", "counter", (),
            "Sample units cut short after the k-th inclusion.",
            "Section 5 (lazy unit generation)",
        ),
        _spec(
            "repro_sampler_convergence_stops_total", "counter", (),
            "Sampling runs ended by the (d, phi) stopping rule.",
            "Section 5 (progressive stopping)",
        ),
        _spec(
            "repro_sampler_budget_units", "gauge", (),
            "Unit budget of the last sampling run "
            "(Chernoff-Hoeffding bound or explicit size).",
            "Theorem 6",
        ),
        _spec(
            "repro_sampler_achieved_units", "gauge", (),
            "Units actually drawn by the last sampling run.",
            "Section 5 (achieved vs bound)",
        ),
        # ------------------------------------------------------- parallel
        _spec(
            "repro_parallel_shards_total", "counter", (),
            "Sampling shards executed by the parallel path.",
            "Beyond the paper (parallel execution)",
        ),
        _spec(
            "repro_parallel_workers", "gauge", (),
            "Worker count resolved for the last parallel call.",
            "Beyond the paper (parallel execution)",
        ),
        _spec(
            "repro_parallel_shard_units", "histogram", (),
            "Sample units drawn per shard.",
            "Beyond the paper (parallel execution)",
        ),
        _spec(
            "repro_parallel_shard_seconds", "histogram", (),
            "Wall time per sampling shard (as measured inside the worker).",
            "Beyond the paper (parallel execution)",
        ),
        _spec(
            "repro_parallel_merge_seconds", "timer", (),
            "Wall time merging shard counts and replaying the (d, phi) "
            "rule on merged snapshots.",
            "Beyond the paper (parallel execution)",
        ),
        _spec(
            "repro_parallel_fanout_queries_total", "counter", ("mode",),
            "Queries answered through the multi-query fan-out "
            "(mode=many|batch).",
            "Beyond the paper (parallel execution)",
        ),
        # -------------------------------------------------------- serving
        _spec(
            "repro_serve_requests_total", "counter", ("endpoint",),
            "HTTP requests received by the serving layer, by endpoint "
            "(query, healthz, metrics, tables).",
            "Beyond the paper (query serving)",
        ),
        _spec(
            "repro_serve_rejections_total", "counter", ("reason",),
            "Requests refused by admission control "
            "(reason=queue-full|deadline).",
            "Beyond the paper (query serving)",
        ),
        _spec(
            "repro_serve_batch_size", "histogram", (),
            "Requests coalesced into each dispatched micro-batch.",
            "Beyond the paper (query serving)",
        ),
        _spec(
            "repro_serve_degraded_total", "counter", (),
            "Queries degraded from the exact algorithm to the sampler "
            "because the planner predicted a deadline miss.",
            "Theorem 6 vs Theorems 3-5 (exact/sampling trade-off)",
        ),
        _spec(
            "repro_serve_degraded_preexec_total", "counter", (),
            "Queries degraded to the sampler by the batch scheduler's "
            "pre-execution re-check: the remaining deadline could no "
            "longer fit the (possibly resumed) exact scan.",
            "Theorem 6 vs Theorems 3-5 (exact/sampling trade-off)",
        ),
        _spec(
            "repro_serve_deadline_expired_total", "counter", ("stage",),
            "Batch items whose deadline had already passed when the "
            "batch dispatched (stage=dispatch) or when the scheduler "
            "was about to execute them (stage=pre-exec).",
            "Beyond the paper (query serving)",
        ),
        _spec(
            "repro_serve_resumed_scans_total", "counter", (),
            "Exact scans resumed from a deadline checkpoint instead of "
            "restarting from depth 0.",
            "Beyond the paper (query serving)",
        ),
        _spec(
            "repro_serve_queue_depth", "gauge", (),
            "Requests admitted but not yet completed.",
            "Beyond the paper (query serving)",
        ),
        _spec(
            "repro_serve_request_seconds", "timer", ("endpoint",),
            "Wall time per served request, by endpoint.",
            "Beyond the paper (query serving)",
        ),
        # ------------------------------------------------------ streaming
        _spec(
            "repro_stream_arrivals_total", "counter", (),
            "Tuples fed to sliding-window monitors.",
            "Beyond the paper (streaming extension)",
        ),
        _spec(
            "repro_stream_answer_churn_total", "counter", ("direction",),
            "Answer-set membership changes (direction=entered|left).",
            "Beyond the paper (streaming extension)",
        ),
        # -------------------------------------------------------- storage
        _spec(
            "repro_storage_pages_read_total", "counter", (),
            "Heap-file pages fetched (the benchmark I/O cost model).",
            "Section 6 (I/O accounting)",
        ),
        # ------------------------------------------------------ durability
        _spec(
            "repro_durable_wal_appends_total", "counter", ("kind",),
            "Write-ahead-log records appended, by record kind "
            "(register, add, rule, remove, update, drop, serve).",
            "Beyond the paper (durable storage)",
        ),
        _spec(
            "repro_durable_wal_bytes_total", "counter", (),
            "Bytes appended to the write-ahead log (framing included).",
            "Beyond the paper (durable storage)",
        ),
        _spec(
            "repro_durable_wal_fsyncs_total", "counter", (),
            "fsync calls issued by the write-ahead log "
            "(policy: always / interval / off).",
            "Beyond the paper (durable storage)",
        ),
        _spec(
            "repro_durable_snapshot_seconds", "timer", (),
            "Wall time of one full checkpoint (all tables snapshotted, "
            "WAL rotated and compacted).",
            "Beyond the paper (durable storage)",
        ),
        _spec(
            "repro_durable_snapshot_bytes", "histogram", (),
            "On-disk size of each snapshot image written.",
            "Beyond the paper (durable storage)",
        ),
        _spec(
            "repro_durable_recovery_replayed_total", "counter", (),
            "WAL mutation records replayed on top of snapshots during "
            "recovery.",
            "Beyond the paper (durable storage)",
        ),
        _spec(
            "repro_durable_wal_backlog_bytes", "gauge", (),
            "Bytes appended to the write-ahead log since the last fsync "
            "(data at risk under the interval/off policies).",
            "Beyond the paper (durable storage)",
        ),
        _spec(
            "repro_durable_serve_flush_seconds", "timer", (),
            "Wall time flushing buffered serve-key records to the WAL.",
            "Beyond the paper (durable storage)",
        ),
        # ----------------------------------------------------- replication
        _spec(
            "repro_repl_fetches_total", "counter", ("outcome",),
            "WAL fetch requests served by the replication primary "
            "(outcome=ok|empty|cursor-lost|bootstrap).",
            "Beyond the paper (replication)",
        ),
        _spec(
            "repro_repl_records_shipped_total", "counter", (),
            "WAL records shipped to replicas by the primary.",
            "Beyond the paper (replication)",
        ),
        _spec(
            "repro_repl_bytes_shipped_total", "counter", (),
            "Framed WAL bytes shipped to replicas by the primary.",
            "Beyond the paper (replication)",
        ),
        _spec(
            "repro_repl_connected_replicas", "gauge", (),
            "Replicas seen by the primary within the retention TTL.",
            "Beyond the paper (replication)",
        ),
        _spec(
            "repro_repl_pinned_segments", "gauge", (),
            "Sealed WAL segments kept alive by replica retention pins "
            "(segments compaction would otherwise have deleted).",
            "Beyond the paper (replication)",
        ),
        _spec(
            "repro_repl_records_applied_total", "counter", ("outcome",),
            "Shipped records processed by a replica applier "
            "(outcome=applied|skipped).",
            "Beyond the paper (replication)",
        ),
        _spec(
            "repro_repl_apply_seconds", "timer", (),
            "Wall time applying one fetched batch on a replica.",
            "Beyond the paper (replication)",
        ),
        _spec(
            "repro_repl_lag_records", "gauge", (),
            "Replication lag of this replica in WAL records "
            "(as counted by the primary, capped).",
            "Beyond the paper (replication)",
        ),
        _spec(
            "repro_repl_lag_bytes", "gauge", (),
            "Replication lag of this replica in WAL bytes.",
            "Beyond the paper (replication)",
        ),
        _spec(
            "repro_repl_staleness_seconds", "gauge", (),
            "Seconds since this replica last confirmed it was caught up "
            "with the primary.",
            "Beyond the paper (replication)",
        ),
        _spec(
            "repro_repl_reconnects_total", "counter", (),
            "Follower poll cycles that failed transiently (connection "
            "refused, primary restarting) and were retried.",
            "Beyond the paper (replication)",
        ),
        _spec(
            "repro_repl_stale_reads_rejected_total", "counter", (),
            "Replica reads rejected because the replica's staleness "
            "exceeded the request's max_staleness_s bound (HTTP 503).",
            "Beyond the paper (replication)",
        ),
        # ------------------------------------------------ flight recorder
        _spec(
            "repro_flight_profiles_total", "counter", ("kind",),
            "Query profiles recorded by the flight recorder, by query "
            "kind (exact, sampled, served, ...).",
            "Beyond the paper (flight recorder)",
        ),
        _spec(
            "repro_flight_slow_queries_total", "counter", (),
            "Profiles whose measured latency crossed the slow-query "
            "threshold.",
            "Beyond the paper (flight recorder)",
        ),
        _spec(
            "repro_flight_slow_log_bytes_total", "counter", (),
            "Bytes appended to the slow-query JSONL log.",
            "Beyond the paper (flight recorder)",
        ),
        _spec(
            "repro_serve_debug_requests_total", "counter", ("view",),
            "Requests to the /debug introspection endpoints "
            "(view=queries|slow|calibration).",
            "Beyond the paper (flight recorder)",
        ),
        # --------------------------------------------------------- timers
        _spec(
            "repro_query_seconds", "timer", ("semantics",),
            "Wall time per query, by semantics "
            "(ptk, ptk-sampled, utopk, ukranks, global-topk, ...).",
            "Figure 5 (runtime comparison)",
        ),
        _spec(
            "repro_stream_advance_seconds", "timer", (),
            "Wall time of one monitored window advance "
            "(append + re-answer).",
            "Beyond the paper (streaming extension)",
        ),
    ]
}


def spec_of(name: str) -> MetricSpec:
    """Catalogue entry for ``name``; raises ``KeyError`` when unknown."""
    return CATALOG[name]


def validate_snapshot(snapshot: Mapping[str, Any]) -> List[str]:
    """Check an exported snapshot against the catalogue.

    :param snapshot: either a full export (with a ``"metrics"`` key, as
        produced by :func:`repro.obs.export.snapshot`) or a bare
        registry dump (name -> description).
    :returns: a list of human-readable problems; empty when the snapshot
        conforms.  Unknown metric names, type mismatches, and label-name
        mismatches are reported; the catalogue does not require any
        particular metric to be present.
    """
    metrics = snapshot.get("metrics", snapshot)
    problems: List[str] = []
    if not isinstance(metrics, Mapping):
        return [f"metrics section is not a mapping: {type(metrics).__name__}"]
    for name, data in metrics.items():
        spec = CATALOG.get(name)
        if spec is None:
            problems.append(f"metric {name!r} is not in the catalogue")
            continue
        if not isinstance(data, Mapping):
            problems.append(f"metric {name!r} has a non-mapping description")
            continue
        if data.get("type") != spec.type:
            problems.append(
                f"metric {name!r} has type {data.get('type')!r}, "
                f"catalogue says {spec.type!r}"
            )
        labels = tuple(data.get("labelnames", ()))
        if labels != spec.labels:
            problems.append(
                f"metric {name!r} has labels {list(labels)}, "
                f"catalogue says {list(spec.labels)}"
            )
    return problems
