"""repro.obs — the query-engine observability layer.

A thread-safe metrics registry (:class:`~repro.obs.metrics.Counter`,
:class:`~repro.obs.metrics.Gauge`, :class:`~repro.obs.metrics.Histogram`,
:class:`~repro.obs.metrics.Timer`) plus lightweight query tracing
(:func:`span` context managers with query-scoped trace ids), feeding the
JSON / Prometheus exporters in :mod:`repro.obs.export`.

Observability is **off by default** and instrumented hot paths pay only
one attribute check while it stays off::

    from repro.obs import OBS

    if OBS.enabled:                      # the single cheap check
        OBS.registry.counter("repro_storage_pages_read_total").inc()

Enable globally or per scope::

    from repro import obs

    obs.enable()
    db.ptk("sightings", k=5, threshold=0.5)
    print(obs.export.to_json())

    with obs.enabled_scope():            # auto-restores the prior state
        db.ptk("sightings", k=5, threshold=0.5)

Every metric the engine emits is declared in
:mod:`repro.obs.catalog`; ``docs/observability.md`` maps each one to the
theorem or paper section it witnesses.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

from repro.obs import catalog, export  # noqa: F401  (re-exported submodules)
from repro.obs import flight  # noqa: F401  (re-exported submodule)
from repro.obs.flight import FlightRecorder, QueryProfile
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.tracing import NOOP_SPAN, NoopSpan, Span, Tracer


class ObservabilityState:
    """Process-wide observability state: flag, registry, tracer, flight.

    A single shared instance (:data:`OBS`) exists; instrumented modules
    hold a reference and check ``OBS.enabled`` before doing any work.
    Tests may build private instances to exercise components in
    isolation.

    The flight recorder has its *own* ``enabled`` flag (under the global
    one): metrics collection can run without per-query profiling, and
    every flight call site already sits behind ``OBS.enabled``, so the
    obs-off hot path still pays exactly one attribute check.
    """

    __slots__ = ("enabled", "registry", "tracer", "flight")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.flight = FlightRecorder()

    def reset(self) -> None:
        """Drop collected metrics, finished traces, and query profiles."""
        self.registry.reset()
        self.tracer.reset()
        self.flight.reset()


#: The process-wide observability state.
OBS = ObservabilityState()


def is_enabled() -> bool:
    """True when the observability layer is collecting."""
    return OBS.enabled


def enable(fresh: bool = False) -> None:
    """Turn collection on (``fresh=True`` also clears prior data)."""
    if fresh:
        OBS.reset()
    OBS.enabled = True


def disable() -> None:
    """Turn collection off; already-collected data is retained."""
    OBS.enabled = False


def reset() -> None:
    """Clear all collected metrics and traces (flag unchanged)."""
    OBS.reset()


@contextmanager
def enabled_scope(fresh: bool = False) -> Iterator[ObservabilityState]:
    """Enable observability inside a ``with`` block, then restore.

    :param fresh: clear previously collected data on entry.
    """
    previous = OBS.enabled
    enable(fresh=fresh)
    try:
        yield OBS
    finally:
        OBS.enabled = previous


def span(name: str, **attributes: Any) -> Union["NoopSpan", Any]:
    """A tracing span context manager, or a shared no-op when disabled.

    ::

        with obs.span("ptk.scan", k=5) as s:
            ...
            s.set(scan_depth=depth)      # works on the no-op too
    """
    if not OBS.enabled:
        return NOOP_SPAN
    return OBS.tracer.span(name, **attributes)


def query_scope(semantics: str, **attributes: Any):
    """Span + latency timer for one query under one semantics.

    Opens a root-or-nested span ``query.<semantics>`` and records the
    elapsed time into ``repro_query_seconds{semantics=...}``; a shared
    no-op when observability is off.
    """
    if not OBS.enabled:
        return NOOP_SPAN
    return _QueryScope(semantics, attributes)


class _QueryScope:
    __slots__ = (
        "_semantics",
        "_attributes",
        "_span_cm",
        "_timer_cm",
        "_profile",
    )

    def __init__(self, semantics: str, attributes: dict) -> None:
        self._semantics = semantics
        self._attributes = attributes
        self._span_cm = None
        self._timer_cm = None
        self._profile = None

    def __enter__(self) -> "Span":
        self._timer_cm = OBS.registry.timer(
            "repro_query_seconds",
            help=catalog.CATALOG["repro_query_seconds"].help,
            labelnames=("semantics",),
        ).time(semantics=self._semantics)
        self._timer_cm.__enter__()
        self._span_cm = OBS.tracer.span(
            f"query.{self._semantics}", **self._attributes
        )
        span = self._span_cm.__enter__()
        # Open the flight profile *inside* the span so it carries the
        # trace id; engines fill counters via OBS.flight.current().
        self._profile = OBS.flight.begin(
            self._semantics,
            table=self._attributes.get("table"),
            k=self._attributes.get("k"),
            threshold=self._attributes.get("threshold"),
        )
        return span

    def __exit__(self, *exc_info: Any) -> None:
        if self._profile is not None:
            OBS.flight.finish(self._profile)
        self._span_cm.__exit__(*exc_info)
        self._timer_cm.__exit__(*exc_info)


def counter(name: str, **labels: Any) -> None:
    """Convenience: increment a catalogued counter by 1 when enabled."""
    if OBS.enabled:
        spec = catalog.CATALOG.get(name)
        OBS.registry.counter(
            name,
            help=spec.help if spec else "",
            labelnames=spec.labels if spec else tuple(sorted(labels)),
        ).inc(1.0, **labels)


def catalogued(name: str):
    """Get-or-create the metric ``name`` with its catalogue declaration.

    Central helper used by instrumentation sites so names, types, label
    sets, and help strings always match :data:`repro.obs.catalog.CATALOG`.
    """
    spec = catalog.spec_of(name)
    registry = OBS.registry
    if spec.type == "counter":
        return registry.counter(name, help=spec.help, labelnames=spec.labels)
    if spec.type == "gauge":
        return registry.gauge(name, help=spec.help, labelnames=spec.labels)
    if spec.type == "histogram":
        return registry.histogram(name, help=spec.help, labelnames=spec.labels)
    if spec.type == "timer":
        return registry.timer(name, help=spec.help, labelnames=spec.labels)
    raise ValueError(f"catalogue entry {name!r} has unknown type {spec.type!r}")


def last_trace() -> Optional[Span]:
    """The most recently completed root span, if any."""
    return OBS.tracer.last_trace()


__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopSpan",
    "OBS",
    "ObservabilityState",
    "QueryProfile",
    "Span",
    "Timer",
    "Tracer",
    "catalog",
    "catalogued",
    "counter",
    "disable",
    "enable",
    "enabled_scope",
    "export",
    "flight",
    "is_enabled",
    "last_trace",
    "query_scope",
    "reset",
    "span",
]
