"""The query flight recorder: one structured profile per query.

The metrics registry answers "how much work has the process done";
the planned cost-based multi-query scheduler needs the *per-query*
breakdown — which engine ran, how deep the scan went, what the planner
predicted versus what the clock measured.  :class:`QueryProfile`
captures exactly that, and :class:`FlightRecorder` keeps the profiles
in three places:

* a bounded, lock-protected in-memory ring (served live by the
  ``GET /debug/queries`` endpoint),
* a smaller ring of just the slow ones (``GET /debug/slow``),
* an append-only JSONL *slow-query log* on disk, gated by a latency
  threshold.

The JSONL framing mirrors the WAL's torn-tail tolerance
(:mod:`repro.durable.wal`): each record is one complete
``json.dumps(...) + "\\n"`` line written with a single ``write`` call
and flushed before returning, so a SIGKILL mid-write can only produce a
*torn tail* — a final partial line that :func:`read_jsonl` skips and
reports, never silent corruption of earlier records.

Gating discipline: the recorder hangs off the global observability
state as ``OBS.flight`` and every instrumentation site already sits
behind the single ``OBS.enabled`` attribute check, so the obs-off hot
path is untouched.  With obs on but flight off, sites pay one extra
``enabled`` check; with both on, the per-query cost is one profile
object and one ring append — never per-tuple work.

Calibration: profiles carry both the planner's predicted latency and
the measured one.  :func:`calibration_report` reduces them to
per-engine relative-error residuals (mean/median), the summary the
``GET /debug/calibration`` endpoint and ``repro flight calibration``
expose — and the ground truth the future cost-based scheduler trains
on.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

#: Default capacity of the in-memory profile ring.
DEFAULT_RING_SIZE = 256

#: Default capacity of the in-memory slow-profile ring.
DEFAULT_SLOW_RING_SIZE = 64


@dataclass
class QueryProfile:
    """Everything recorded about one query's flight.

    Fields are filled progressively: :meth:`FlightRecorder.begin` stamps
    identity and start time, the engines thread their counters in while
    the profile is the thread's active one, and
    :meth:`FlightRecorder.finish` stamps the measured latency and lands
    the profile in the ring (and slow log, when over threshold).

    ``engine`` is the coarse plan choice (``exact`` / ``sampled``) the
    calibration report groups by; ``variant`` carries the exact
    algorithm's RC / RC+AR / RC+LR detail.
    """

    kind: str
    table: Optional[str] = None
    k: Optional[int] = None
    threshold: Optional[float] = None
    trace_id: Optional[str] = None
    unix_time: float = 0.0
    # planner vs clock
    engine: Optional[str] = None
    variant: Optional[str] = None
    estimated_seconds: Optional[float] = None
    actual_seconds: Optional[float] = None
    # exact-engine counters (AlgorithmStats, flushed once per query)
    scan_depth: Optional[int] = None
    tuples_evaluated: Optional[int] = None
    pruned_membership: Optional[int] = None
    pruned_same_rule: Optional[int] = None
    dp_extensions: Optional[int] = None
    stopped_by: Optional[str] = None
    # rule-compression counters (dominant-set scan)
    compression_units_independent: Optional[int] = None
    compression_units_rule: Optional[int] = None
    compression_rule_merges: Optional[int] = None
    # preparation
    prepare_hit: Optional[bool] = None
    # sampler
    sample_budget: Optional[int] = None
    sample_units: Optional[int] = None
    sample_converged: Optional[bool] = None
    avg_sample_length: Optional[float] = None
    wilson_halfwidth: Optional[float] = None
    # serving outcomes
    served: bool = False
    mode: Optional[str] = None
    degraded: Optional[bool] = None
    batch_size: Optional[int] = None
    deadline_remaining_ms: Optional[float] = None
    outcome: Optional[str] = None
    # batch scheduler trace: policy, queue_position, estimated_seconds,
    # decision, and (when applicable) checkpoint_depth/resumed_from_depth
    scheduler: Optional[Dict[str, Any]] = None
    # dynamic-index trace: deltas_applied, reads, fallbacks, and the
    # answering table's pending/index family (mode == "dynamic" only)
    dynamic: Optional[Dict[str, Any]] = None
    serve_flush_seconds: Optional[float] = None
    slow: bool = False
    # internal: perf_counter at begin (not exported)
    _started: float = field(default=0.0, repr=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        """A compact JSON-able dict; unset (``None``) fields are dropped."""
        out: Dict[str, Any] = {}
        for name in self.__dataclass_fields__:
            if name.startswith("_"):
                continue
            value = getattr(self, name)
            if value is None:
                continue
            out[name] = value
        return out


@dataclass
class JsonlScan:
    """Result of reading one JSONL log with torn-tail tolerance.

    :param records: decoded records of the valid prefix.
    :param good_bytes: length of the valid prefix.
    :param total_bytes: physical file length.
    :param problem: why reading stopped early, or ``None`` when clean.
    """

    records: List[Dict[str, Any]] = field(default_factory=list)
    good_bytes: int = 0
    total_bytes: int = 0
    problem: Optional[str] = None

    @property
    def torn_bytes(self) -> int:
        """Bytes past the valid prefix (0 for a clean log)."""
        return self.total_bytes - self.good_bytes


def read_jsonl(path: Union[str, Path]) -> JsonlScan:
    """Read a line-framed JSONL log, stopping at the first torn record.

    Mirrors :func:`repro.durable.wal.scan_segment`: never raises for
    on-disk damage.  A record only counts when its line is complete
    (newline-terminated) *and* parses as a JSON object — anything else
    ends the valid prefix, and everything after it is reported as torn
    bytes.
    """
    path = Path(path)
    scan = JsonlScan()
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        scan.problem = "missing"
        return scan
    scan.total_bytes = len(data)
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            scan.problem = "torn final record (no newline)"
            break
        line = data[offset:newline]
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            scan.problem = f"unparseable record: {error}"
            break
        if not isinstance(record, dict):
            scan.problem = f"record is not an object: {record!r}"
            break
        scan.records.append(record)
        offset = newline + 1
        scan.good_bytes = offset
    return scan


class FlightRecorder:
    """Bounded profile ring + threshold-gated slow-query JSONL log.

    All public methods are thread-safe; the active-profile stack is
    per-thread (mirroring the tracer), so the serving layer's executor
    threads each profile their own queries without coordination.

    The recorder is *configured* (ring size, slow log path, threshold)
    independently of being *enabled*, so tests and the server can point
    it at a directory before traffic starts.
    """

    def __init__(self, ring_size: int = DEFAULT_RING_SIZE) -> None:
        self.enabled = False
        self.slow_threshold_seconds: Optional[float] = None
        self.last_serve_flush_seconds: Optional[float] = None
        self._ring: "deque[QueryProfile]" = deque(maxlen=ring_size)
        self._slow_ring: "deque[QueryProfile]" = deque(
            maxlen=DEFAULT_SLOW_RING_SIZE
        )
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._slow_log_path: Optional[Path] = None
        self._slow_file = None
        self._profiles_recorded = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Configuration and lifecycle
    # ------------------------------------------------------------------
    def configure(
        self,
        ring_size: Optional[int] = None,
        slow_log_path: Optional[Union[str, Path]] = None,
        slow_threshold_ms: Optional[float] = None,
    ) -> None:
        """(Re)configure ring capacity and the slow-query log.

        ``slow_log_path=None`` keeps profiles in memory only; with a
        path, profiles whose measured latency exceeds
        ``slow_threshold_ms`` are appended there (one JSON line each).
        A threshold of 0 logs every profile — the CI smoke runs that
        way to exercise the full pipeline.
        """
        with self._lock:
            if ring_size is not None and ring_size != self._ring.maxlen:
                self._ring = deque(self._ring, maxlen=max(1, ring_size))
            if slow_threshold_ms is not None:
                self.slow_threshold_seconds = slow_threshold_ms / 1000.0
            if slow_log_path is not None:
                new_path = Path(slow_log_path)
                if new_path != self._slow_log_path:
                    self._close_slow_file_locked()
                    self._slow_log_path = new_path

    @property
    def slow_log_path(self) -> Optional[Path]:
        """Where slow profiles are appended, or ``None`` (memory only)."""
        return self._slow_log_path

    def enable(self) -> None:
        """Start recording profiles at the instrumented sites."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; collected profiles are retained."""
        self.enabled = False

    def reset(self) -> None:
        """Drop collected profiles (configuration and flag unchanged)."""
        with self._lock:
            self._ring.clear()
            self._slow_ring.clear()
            self._profiles_recorded = 0
            self._evictions = 0
            self.last_serve_flush_seconds = None

    def close(self) -> None:
        """Close the slow-log file handle (reopened lazily if needed)."""
        with self._lock:
            self._close_slow_file_locked()

    def unconfigure(self) -> None:
        """Forget the slow log and threshold (tests, server teardown)."""
        with self._lock:
            self._close_slow_file_locked()
            self._slow_log_path = None
            self.slow_threshold_seconds = None

    def _close_slow_file_locked(self) -> None:
        if self._slow_file is not None:
            try:
                self._slow_file.close()
            except OSError:  # pragma: no cover - close failures are benign
                pass
            self._slow_file = None

    # ------------------------------------------------------------------
    # Per-thread active profile
    # ------------------------------------------------------------------
    def _stack(self) -> List[QueryProfile]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def begin(
        self,
        kind: str,
        table: Optional[str] = None,
        k: Optional[int] = None,
        threshold: Optional[float] = None,
        **fields: Any,
    ) -> Optional[QueryProfile]:
        """Open a profile and make it this thread's active one.

        Returns ``None`` when the recorder is disabled, so call sites
        can keep a single ``profile is not None`` guard.
        """
        if not self.enabled:
            return None
        profile = QueryProfile(
            kind=kind,
            table=table,
            k=k,
            threshold=threshold,
            unix_time=time.time(),
            _started=time.perf_counter(),
        )
        for name, value in fields.items():
            setattr(profile, name, value)
        profile.trace_id = self._current_trace_id()
        self._stack().append(profile)
        return profile

    @staticmethod
    def _current_trace_id() -> Optional[str]:
        from repro.obs import OBS

        return OBS.tracer.current_trace_id()

    def current(self) -> Optional[QueryProfile]:
        """This thread's active (innermost unfinished) profile."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def finish(
        self, profile: QueryProfile, **fields: Any
    ) -> QueryProfile:
        """Close a profile: stamp the latency and record it.

        Keyword arguments overwrite profile fields (the serving layer
        passes its plan/degradation/batch outcomes here).
        """
        stack = getattr(self._tls, "stack", None)
        if stack and profile in stack:
            stack.remove(profile)
        for name, value in fields.items():
            setattr(profile, name, value)
        if profile.actual_seconds is None:
            profile.actual_seconds = time.perf_counter() - profile._started
        if profile.serve_flush_seconds is None and profile.served:
            profile.serve_flush_seconds = self.last_serve_flush_seconds
        self.record(profile)
        return profile

    # ------------------------------------------------------------------
    # Engine-side notes (called while a profile is active)
    # ------------------------------------------------------------------
    def note_prepare(self, hit: bool) -> None:
        """Record a prepare-cache outcome.

        When a profile is active on this thread the outcome lands on
        it; otherwise it is parked per-thread for the serving layer,
        whose batch-level ``PrepareCache.get`` runs *before* the
        per-item profiles open (see :meth:`consume_prepare`).
        """
        if not self.enabled:
            return
        profile = self.current()
        if profile is not None:
            profile.prepare_hit = hit
        else:
            self._tls.last_prepare = hit

    def consume_prepare(self) -> Optional[bool]:
        """Take (and clear) the parked prepare outcome for this thread."""
        hit = getattr(self._tls, "last_prepare", None)
        self._tls.last_prepare = None
        return hit

    def note_serve_flush(self, seconds: float) -> None:
        """Record the wall time of the latest serve-key WAL flush.

        Flushes run fire-and-forget *after* responses are sent, so the
        timing attaches to subsequently finished profiles as "the most
        recent flush" rather than to the requests that triggered it.
        """
        self.last_serve_flush_seconds = seconds

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, profile: QueryProfile) -> None:
        """Land one finished profile in the ring (and slow log)."""
        threshold = self.slow_threshold_seconds
        profile.slow = bool(
            threshold is not None
            and profile.actual_seconds is not None
            and profile.actual_seconds >= threshold
        )
        line: Optional[bytes] = None
        if profile.slow:
            line = (
                json.dumps(
                    profile.to_dict(), separators=(",", ":"), sort_keys=True
                )
                + "\n"
            ).encode("utf-8")
        with self._lock:
            evicted = len(self._ring) == self._ring.maxlen
            self._ring.append(profile)
            self._profiles_recorded += 1
            if evicted:
                self._evictions += 1
            if profile.slow:
                self._slow_ring.append(profile)
                if line is not None and self._slow_log_path is not None:
                    self._append_slow_locked(line)
        self._publish_metrics(profile, len(line) if line else 0)

    def _append_slow_locked(self, line: bytes) -> None:
        """One write + flush per record: a crash can only tear the tail."""
        if self._slow_file is None:
            self._slow_log_path.parent.mkdir(parents=True, exist_ok=True)
            self._slow_file = open(self._slow_log_path, "ab")
        self._slow_file.write(line)
        self._slow_file.flush()

    def _publish_metrics(self, profile: QueryProfile, slow_bytes: int) -> None:
        from repro.obs import OBS, catalogued

        if not OBS.enabled:
            return
        catalogued("repro_flight_profiles_total").inc(kind=profile.kind)
        if profile.slow:
            catalogued("repro_flight_slow_queries_total").inc()
        if slow_bytes:
            catalogued("repro_flight_slow_log_bytes_total").inc(slow_bytes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def recent(self, limit: int = 100) -> List[Dict[str, Any]]:
        """The newest profiles, newest first, as JSON-able dicts."""
        with self._lock:
            profiles = list(self._ring)[-limit:]
        return [p.to_dict() for p in reversed(profiles)]

    def slow_recent(self, limit: int = 100) -> List[Dict[str, Any]]:
        """The newest slow profiles, newest first."""
        with self._lock:
            profiles = list(self._slow_ring)[-limit:]
        return [p.to_dict() for p in reversed(profiles)]

    def stats(self) -> Dict[str, Any]:
        """Recorder counters for health endpoints and tests."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "recorded": self._profiles_recorded,
                "ring": len(self._ring),
                "ring_capacity": self._ring.maxlen,
                "evictions": self._evictions,
                "slow": len(self._slow_ring),
                "slow_threshold_ms": (
                    self.slow_threshold_seconds * 1000.0
                    if self.slow_threshold_seconds is not None
                    else None
                ),
                "slow_log_path": (
                    str(self._slow_log_path) if self._slow_log_path else None
                ),
            }

    def calibration(self) -> Dict[str, Any]:
        """Planner estimate-vs-actual residuals over the current ring."""
        with self._lock:
            profiles = [p.to_dict() for p in self._ring]
        return calibration_report(profiles)


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
def calibration_report(profiles: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-engine relative-error residuals of the planner's predictions.

    For every profile carrying both ``estimated_seconds`` and
    ``actual_seconds``, the signed relative error is
    ``(estimated - actual) / actual`` — positive means the planner
    over-estimated.  Residuals are grouped by ``engine`` (``exact`` /
    ``sampled``); the report carries mean, median, and mean absolute
    relative error per group, plus the profile counts that produced
    them.
    """
    residuals: Dict[str, List[float]] = {}
    considered = 0
    for profile in profiles:
        considered += 1
        estimated = profile.get("estimated_seconds")
        actual = profile.get("actual_seconds")
        engine = profile.get("engine")
        if estimated is None or actual is None or engine is None:
            continue
        if actual <= 0:
            continue
        residuals.setdefault(str(engine), []).append(
            (estimated - actual) / actual
        )
    engines: Dict[str, Any] = {}
    for engine, errors in sorted(residuals.items()):
        errors = sorted(errors)
        n = len(errors)
        mid = n // 2
        median = (
            errors[mid] if n % 2 else (errors[mid - 1] + errors[mid]) / 2.0
        )
        engines[engine] = {
            "count": n,
            "mean_relative_error": sum(errors) / n,
            "median_relative_error": median,
            "mean_abs_relative_error": sum(abs(e) for e in errors) / n,
        }
    return {
        "profiles": considered,
        "calibrated": sum(v["count"] for v in engines.values()),
        "engines": engines,
    }


# ----------------------------------------------------------------------
# Span-tree export
# ----------------------------------------------------------------------
def write_spans_jsonl(
    path: Union[str, Path],
    tracer=None,
    skip_trace_ids: Optional[set] = None,
) -> List[str]:
    """Append finished root span trees to a JSONL file.

    One line per root span (``Span.to_dict`` — the full tree with
    children and attributes).  ``skip_trace_ids`` lets a periodic
    exporter avoid re-writing trees it already exported; the trace ids
    written this call are returned so the caller can extend its set.
    """
    from repro.obs import OBS

    tracer = tracer if tracer is not None else OBS.tracer
    skip = skip_trace_ids or set()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    with open(path, "ab") as handle:
        for span in tracer.traces():
            if span.trace_id in skip:
                continue
            line = (
                json.dumps(
                    span.to_dict(), separators=(",", ":"), sort_keys=True
                )
                + "\n"
            ).encode("utf-8")
            handle.write(line)
            written.append(span.trace_id)
        handle.flush()
    return written


# ----------------------------------------------------------------------
# Offline summaries (the `repro flight` CLI)
# ----------------------------------------------------------------------
def summarize_profiles(profiles: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a profile list into the ``repro flight summary`` view."""
    by_kind: Dict[str, int] = {}
    by_engine: Dict[str, int] = {}
    latencies: List[float] = []
    slow = 0
    degraded = 0
    for profile in profiles:
        by_kind[profile.get("kind", "?")] = (
            by_kind.get(profile.get("kind", "?"), 0) + 1
        )
        engine = profile.get("engine")
        if engine:
            by_engine[engine] = by_engine.get(engine, 0) + 1
        actual = profile.get("actual_seconds")
        if actual is not None:
            latencies.append(float(actual))
        if profile.get("slow"):
            slow += 1
        if profile.get("degraded"):
            degraded += 1
    latencies.sort()

    def pct(q: float) -> Optional[float]:
        if not latencies:
            return None
        index = min(len(latencies) - 1, int(q * (len(latencies) - 1) + 0.5))
        return latencies[index]

    return {
        "profiles": len(profiles),
        "by_kind": dict(sorted(by_kind.items())),
        "by_engine": dict(sorted(by_engine.items())),
        "slow": slow,
        "degraded": degraded,
        "latency_seconds": {
            "mean": sum(latencies) / len(latencies) if latencies else None,
            "p50": pct(0.50),
            "p95": pct(0.95),
            "max": latencies[-1] if latencies else None,
        },
    }
