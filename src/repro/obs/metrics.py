"""Thread-safe metric primitives and the registry that owns them.

Four metric types cover everything the query engine needs to witness the
paper's cost claims at runtime:

* :class:`Counter` — monotonically increasing totals (tuples scanned,
  pruning fires, DP extensions).
* :class:`Gauge` — point-in-time values that move both ways (sample
  budget vs units actually drawn).
* :class:`Histogram` — distributions over fixed buckets (scan depth,
  dominant-set size, per-unit sample length).
* :class:`Timer` — accumulated wall-time with a call count and max
  (query latency, window-advance latency).

All metrics support optional labels, Prometheus style: a metric is
created with a fixed tuple of ``labelnames`` and every update supplies
one value per label (``counter.inc(1, theorem="membership")``).  Each
``(label values)`` combination is an independent sample series.

Metrics are obtained from a :class:`MetricsRegistry` with get-or-create
semantics; asking for an existing name with a conflicting type or label
set raises :class:`~repro.exceptions.ObservabilityError`.  Updates take
a per-metric lock, so concurrent queries on different threads may share
one registry.

Nothing in this module consults the global enable flag — gating lives at
the instrumentation sites (see :mod:`repro.obs`), which perform one
cheap attribute check before touching any metric.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ObservabilityError

#: Default histogram buckets: powers of two up to 64k, a good fit for
#: the count-like quantities (scan depth, unit counts, sample lengths)
#: this library observes.  Values above the last bound land in +Inf.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 2048, 4096, 8192, 16384, 65536,
)

#: Buckets for sub-second latencies (timers export these implicitly).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


#: Quantiles derived for every histogram/timer sample in JSON exports.
EXPORT_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def _bucket_quantile(
    bounds: Sequence[float], bucket_counts: Sequence[int], count: int, q: float
) -> float:
    """Estimate the ``q``-quantile from per-bucket counts.

    Prometheus ``histogram_quantile`` semantics: locate the bucket
    holding the rank ``q * count`` observation and interpolate linearly
    inside it (the lower edge of the first bucket is 0).  Observations
    in the ``+Inf`` bucket are reported as the last finite bound — the
    distribution's resolution simply ends there.
    """
    rank = q * count
    cumulative = 0
    for i, bound in enumerate(bounds):
        in_bucket = bucket_counts[i]
        if cumulative + in_bucket >= rank:
            if in_bucket == 0:
                return bound
            lower = bounds[i - 1] if i > 0 else 0.0
            fraction = (rank - cumulative) / in_bucket
            return lower + (bound - lower) * fraction
        cumulative += in_bucket
    return bounds[-1]


def _derive_quantiles(
    bounds: Sequence[float], bucket_counts: Sequence[int], count: int
) -> Dict[str, float]:
    """The ``{"p50": ..., "p95": ..., "p99": ...}`` export field."""
    return {
        name: _bucket_quantile(bounds, bucket_counts, count, q)
        for name, q in EXPORT_QUANTILES
    }


def _label_key(
    labelnames: Tuple[str, ...], labels: Mapping[str, Any]
) -> Tuple[str, ...]:
    """Validate and canonicalise one update's labels into a tuple key."""
    if len(labels) != len(labelnames) or any(
        name not in labels for name in labelnames
    ):
        raise ObservabilityError(
            f"expected labels {list(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Metric:
    """Common shape of every metric: name, help text, label names."""

    kind = "metric"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()

    def samples(self) -> List[Dict[str, Any]]:
        """Per-label-combination sample dicts (see subclasses)."""
        raise NotImplementedError  # pragma: no cover

    def describe(self) -> Dict[str, Any]:
        """JSON-able description: type, help, labels, and all samples."""
        return {
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": self.samples(),
        }

    def _labels_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))


class Counter(Metric):
    """A monotonically increasing total, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current total of the labelled series (0 when never updated)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {"labels": self._labels_dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]


class Gauge(Metric):
    """A value that can move in both directions."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {"labels": self._labels_dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # last slot is +Inf
        self.count = 0
        self.sum = 0.0


class Histogram(Metric):
    """A distribution over fixed, monotonically increasing buckets.

    Buckets are upper bounds (inclusive); an implicit ``+Inf`` bucket
    catches everything beyond the last bound.  Exported bucket counts
    are *cumulative*, matching Prometheus semantics.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be non-empty and increasing"
            )
        self.buckets = bounds
        self._series: Dict[Tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            series.bucket_counts[index] += 1
            series.count += 1
            series.sum += value

    def observe_many(self, values: Sequence[float], **labels: Any) -> None:
        """Record a batch of observations under one lock acquisition.

        Equivalent to calling :meth:`observe` per value; used by
        vectorised hot paths (the batched sampler) so per-unit metrics
        stay cheap when observability is on.
        """
        key = _label_key(self.labelnames, labels)
        bounds = self.buckets
        n_buckets = len(bounds)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(n_buckets)
            for value in values:
                index = n_buckets
                for i, bound in enumerate(bounds):
                    if value <= bound:
                        index = i
                        break
                series.bucket_counts[index] += 1
                series.count += 1
                series.sum += value

    def count(self, **labels: Any) -> int:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            return series.count if series else 0

    def sum(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            return series.sum if series else 0.0

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            out = []
            for key, series in sorted(self._series.items()):
                cumulative: Dict[str, int] = {}
                running = 0
                for bound, n in zip(self.buckets, series.bucket_counts):
                    running += n
                    cumulative[repr(bound)] = running
                cumulative["+Inf"] = series.count
                sample = {
                    "labels": self._labels_dict(key),
                    "count": series.count,
                    "sum": series.sum,
                    "buckets": cumulative,
                }
                if series.count:
                    sample["quantiles"] = _derive_quantiles(
                        self.buckets, series.bucket_counts, series.count
                    )
                out.append(sample)
            return out


class _TimerSeries:
    __slots__ = ("count", "total", "max", "bucket_counts")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        # Per-bucket counts over LATENCY_BUCKETS (+Inf last) so exports
        # can derive latency quantiles without keeping raw samples.
        self.bucket_counts = [0] * (len(LATENCY_BUCKETS) + 1)


class Timer(Metric):
    """Accumulated wall-time: total seconds, call count, max, quantiles.

    Durations are also counted into :data:`LATENCY_BUCKETS`, from which
    exports derive p50/p95/p99 estimates.

    Use as a context manager factory::

        with registry.timer("repro_query_seconds").time(semantics="ptk"):
            run_query()
    """

    kind = "timer"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._series: Dict[Tuple[str, ...], _TimerSeries] = {}

    def observe(self, seconds: float, **labels: Any) -> None:
        """Record one timed interval, in seconds."""
        if seconds < 0 or not math.isfinite(seconds):
            raise ObservabilityError(
                f"timer {self.name!r} observed invalid duration {seconds!r}"
            )
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _TimerSeries()
            series.count += 1
            series.total += seconds
            if seconds > series.max:
                series.max = seconds
            index = len(LATENCY_BUCKETS)
            for i, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    index = i
                    break
            series.bucket_counts[index] += 1

    def time(self, **labels: Any) -> "_TimerContext":
        """Context manager recording the elapsed wall time on exit."""
        return _TimerContext(self, labels)

    def count(self, **labels: Any) -> int:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            return series.count if series else 0

    def total_seconds(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            return series.total if series else 0.0

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            out = []
            for key, series in sorted(self._series.items()):
                sample = {
                    "labels": self._labels_dict(key),
                    "count": series.count,
                    "sum": series.total,
                    "max": series.max,
                }
                if series.count:
                    sample["quantiles"] = _derive_quantiles(
                        LATENCY_BUCKETS, series.bucket_counts, series.count
                    )
                out.append(sample)
            return out


class _TimerContext:
    __slots__ = ("_timer", "_labels", "_start")

    def __init__(self, timer: Timer, labels: Mapping[str, Any]) -> None:
        self._timer = timer
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        import time

        self._timer.observe(
            time.perf_counter() - self._start, **self._labels
        )


_KINDS = {
    Counter.kind: Counter,
    Gauge.kind: Gauge,
    Histogram.kind: Histogram,
    Timer.kind: Timer,
}


class MetricsRegistry:
    """Owns every metric; get-or-create by name with consistency checks.

    The registry itself is thread-safe: creation takes a registry lock,
    updates take the metric's own lock.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def _get_or_create(
        self, cls: type, name: str, help: str, labelnames: Sequence[str], **kwargs: Any
    ) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObservabilityError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ObservabilityError(
                        f"metric {name!r} already registered with labels "
                        f"{list(existing.labelnames)}, requested {list(labelnames)}"
                    )
                return existing
            metric = cls(name, help=help, labelnames=labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )  # type: ignore[return-value]

    def timer(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Timer:
        return self._get_or_create(Timer, name, help, labelnames)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        """The metric registered under ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        with self._lock:
            metrics = list(self._metrics.values())
        return iter(metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-able dump of every metric: name -> description + samples."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.describe() for name, metric in sorted(metrics)}

    def reset(self) -> None:
        """Drop every metric (tests and fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()
