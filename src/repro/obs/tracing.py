"""Lightweight query tracing: nested spans with query-scoped trace IDs.

A *span* is one timed phase of a query (ranking, scanning, sampling…).
Spans nest: entering a span while another is open makes it a child, so
one query produces a tree whose root carries a fresh *trace id* shared
by every descendant.  The per-thread span stack lives in a
``threading.local``, so concurrent queries on different threads produce
separate, correctly-parented traces.

Completed root spans are retained in a bounded ring (newest last); the
exporter serialises them as a nested timing tree.

The tracer never checks the global enable flag — the :func:`repro.obs.span`
helper returns a shared no-op context manager when observability is off,
so disabled code paths never construct a span at all.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional


class Span:
    """One timed phase; part of a tree rooted at a query-level span.

    :param name: phase name, dotted by convention (``query.ptk``,
        ``ptk.scan``).
    :param trace_id: id shared by every span of one query.
    :param parent: enclosing span, ``None`` for roots.
    :param attributes: free-form key/value annotations.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent",
        "attributes",
        "children",
        "start",
        "end",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent: Optional["Span"] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = uuid.uuid4().hex[:16]
        self.parent = parent
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        self.start = time.perf_counter()
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Elapsed seconds; measured up to *now* while still open."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set(self, **attributes: Any) -> "Span":
        """Attach annotations to the span; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """The span subtree as a JSON-able nested dict."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "duration_seconds": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def iter_spans(self) -> Iterator["Span"]:
        """Depth-first iteration over the subtree, self first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in the subtree (depth-first)."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"{self.duration * 1000:.3f}ms" if self.finished else "open"
        return f"Span<{self.name}:{state}:{len(self.children)} children>"


class _SpanContext:
    """Context manager pushing/popping one span on the thread's stack."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._push(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        assert self._span is not None
        if exc_type is not None:
            self._span.attributes.setdefault("error", repr(exc))
        self._tracer._pop(self._span)


class NoopSpan:
    """Shared do-nothing span: what instrumented code sees when obs is off.

    Supports the same surface as :class:`Span` within a ``with`` block so
    call sites need no branching beyond the context-manager expression.
    """

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attributes: Any) -> "NoopSpan":
        return self


#: The singleton no-op span; never allocate a new one.
NOOP_SPAN = NoopSpan()


class Tracer:
    """Owns the per-thread span stack and the ring of finished traces.

    :param max_traces: completed root spans retained (oldest dropped).
    """

    def __init__(self, max_traces: int = 64) -> None:
        self.max_traces = max_traces
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: Deque[Span] = deque(maxlen=max_traces)

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a span around a ``with`` block.

        ::

            with tracer.span("ptk.scan", k=5) as span:
                ...
                span.set(scan_depth=depth)
        """
        return _SpanContext(self, name, attributes)

    def _push(self, name: str, attributes: Dict[str, Any]) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        trace_id = parent.trace_id if parent else uuid.uuid4().hex[:16]
        span = Span(name, trace_id, parent=parent, attributes=attributes)
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        return span

    def _pop(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        # Tolerate exotic unwind orders: pop through to the given span.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if span.parent is None:
            with self._lock:
                self._finished.append(span)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_trace_id(self) -> Optional[str]:
        """Trace id of the current query, if a span is open."""
        span = self.current_span()
        return span.trace_id if span else None

    def traces(self) -> List[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def last_trace(self) -> Optional[Span]:
        """The most recently completed root span."""
        with self._lock:
            return self._finished[-1] if self._finished else None

    def reset(self) -> None:
        """Forget finished traces (open spans on live threads survive)."""
        with self._lock:
            self._finished.clear()
