"""Process-pool plumbing shared by the parallel execution paths.

One narrow contract: :func:`shard_map` applies a picklable task function
to a list of picklable tasks and returns the results **in task order** —
never in completion order — so every caller's merge step is independent
of process scheduling and results stay deterministic for a fixed task
list.

The pool prefers the ``fork`` start method where the platform offers it
(cheap worker start, no module re-import); otherwise the default start
method is used.  When a pool cannot be used at all — the platform
forbids subprocesses, or a task fails to pickle — execution falls back
to running the tasks inline in the calling process.  The fallback is
*not* a semantic change: task functions are pure functions of their
task, so inline and pooled runs produce identical results.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.exceptions import QueryError

Task = TypeVar("Task")
Result = TypeVar("Result")

#: Hard cap on worker processes, far above any sane fan-out.
MAX_WORKERS = 64


def available_cpus() -> int:
    """Usable CPU count (cgroup/affinity aware where the OS exposes it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(n_workers: Optional[int]) -> int:
    """Validate and resolve a worker count.

    ``None`` and ``0`` mean "one worker per available CPU"; explicit
    values are validated and capped at :data:`MAX_WORKERS`.
    """
    if n_workers is None or n_workers == 0:
        return min(MAX_WORKERS, available_cpus())
    if not isinstance(n_workers, int) or isinstance(n_workers, bool):
        raise QueryError(f"n_workers must be an integer, got {n_workers!r}")
    if n_workers < 0:
        raise QueryError(f"n_workers must be >= 0, got {n_workers}")
    return min(MAX_WORKERS, n_workers)


def _mp_context():
    """The cheapest available multiprocessing context."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def shard_map(
    fn: Callable[[Task], Result],
    tasks: Sequence[Task],
    n_workers: int,
    use_processes: bool = True,
) -> List[Result]:
    """Apply ``fn`` to every task, returning results in task order.

    :param fn: a module-level (picklable) pure function of one task.
    :param tasks: picklable task objects.
    :param n_workers: pool size; ``<= 1`` runs inline.
    :param use_processes: set False to force inline execution (tests and
        environments without subprocess support); results are identical.
    """
    if not tasks:
        return []
    if n_workers <= 1 or len(tasks) == 1 or not use_processes:
        return [fn(task) for task in tasks]
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(tasks)), mp_context=_mp_context()
        ) as executor:
            return list(executor.map(fn, tasks))
    except (OSError, BrokenProcessPool, pickle.PicklingError):
        # Pool unavailable (sandbox, fd limits, unpicklable task): the
        # inline path computes the same results, only without overlap.
        return [fn(task) for task in tasks]
