"""Sharded Monte-Carlo sampling: the unit budget split across workers.

The batched kernel (:meth:`repro.core.sampling.WorldSampler.sample_batch`)
made one unit cheap; past that, wall-clock only improves by drawing
units **concurrently**.  This module splits the unit budget into one
shard per worker, runs the batched kernel per shard in a process pool,
and merges the per-tuple inclusion counts.

The determinism contract
------------------------

For a fixed ``(seed, batch_size, n_workers)`` triple the merged
estimates are bit-identical across runs and across executors (process
pool or inline), because every source of randomness is pinned up front:

* shard PRNGs come from ``np.random.SeedSequence(seed).spawn(n)`` — the
  NumPy-recommended way to derive independent, reproducible child
  streams (shard ``i`` always receives child ``i``);
* shard budgets are a fixed split (``budget // n`` each, the remainder
  spread over the first shards);
* merging sums integer inclusion counts in shard order, which is
  order-insensitive anyway.

``n_workers=1`` does not spawn a child seed: it delegates to the
single-process :func:`repro.core.sampling.sampled_topk_probabilities`
and reproduces today's answers byte for byte.

Progressive stopping on merged snapshots
----------------------------------------

The ``(d, phi)`` rule needs *global* estimates, which no single shard
has.  Each shard therefore records cumulative count snapshots at a fixed
stride (``~d / n_workers`` units, so merged checkpoints keep the
single-process cadence of ``d`` merged units), and the parent replays
the rule over the **merged** snapshots: the earliest checkpoint at which
no merged estimate moved by more than ``phi`` — at or past
``min_samples`` merged units — becomes the stopping point, and counts,
units, and scan totals are truncated to it.  Shards still draw their
full budget (one round trip, no mid-flight coordination), so progressive
runs buy statistical honesty rather than wall-clock here; see
``docs/parallel.md`` for when that trade is worth it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.sampling import (
    SamplingConfig,
    SamplingResult,
    WorldSampler,
    sampled_topk_probabilities,
)
from repro.exceptions import SamplingError
from repro.model.rules import GenerationRule
from repro.model.table import UncertainTable
from repro.model.tuples import UncertainTuple
from repro.obs import OBS, catalogued, span as obs_span
from repro.parallel.pool import resolve_workers, shard_map
from repro.query.prepare import PrepareCache, PreparedRanking, resolve_prepared
from repro.query.topk import TopKQuery

#: Upper bound on snapshots recorded per shard: bounds the count matrix
#: shipped back to the parent (``snapshots * n_ranked * 8`` bytes).  Huge
#: budgets coarsen the merged checkpoint cadence instead of growing it.
MAX_SNAPSHOTS_PER_SHARD = 256


def shard_budgets(budget: int, n_workers: int) -> List[int]:
    """Split a unit budget into per-shard budgets, largest first.

    Every shard receives ``budget // n_workers`` units and the remainder
    is spread one unit each over the first shards; shards that would
    receive zero units are dropped (``budget < n_workers``).
    """
    if budget <= 0:
        raise SamplingError(f"budget must be positive, got {budget}")
    if n_workers <= 0:
        raise SamplingError(f"n_workers must be positive, got {n_workers}")
    base, remainder = divmod(budget, n_workers)
    budgets = [
        base + (1 if i < remainder else 0) for i in range(n_workers)
    ]
    return [b for b in budgets if b > 0]


def shard_seeds(
    seed: Optional[int], n_shards: int
) -> List[np.random.SeedSequence]:
    """Independent child seed sequences, one per shard.

    ``SeedSequence(seed).spawn(n)`` guarantees the children are
    statistically independent and reproducible: shard ``i`` of a run
    with the same ``(seed, n_shards)`` always sees the same stream.
    """
    return np.random.SeedSequence(seed).spawn(n_shards)


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs, picklable and self-contained."""

    index: int
    ranked: Tuple[UncertainTuple, ...]
    rule_of: Mapping[Any, GenerationRule]
    k: int
    lazy: bool
    budget: int
    batch_size: int
    snapshot_stride: int  # 0 = record no intermediate snapshots
    seed: np.random.SeedSequence


@dataclass
class _ShardSnapshot:
    """Cumulative state of one shard at a checkpoint boundary."""

    units: int
    counts: np.ndarray
    total_scanned: int


@dataclass
class _ShardResult:
    """What one shard sends back to the parent for merging."""

    index: int
    units: int
    counts: np.ndarray
    total_scanned: int
    batches: int
    seconds: float
    snapshots: List[_ShardSnapshot] = field(default_factory=list)


def _run_shard(task: _ShardTask) -> _ShardResult:
    """Draw one shard's units (module-level: must pickle for the pool)."""
    started = time.perf_counter()
    sampler = WorldSampler(
        task.ranked, task.rule_of, k=task.k, lazy=task.lazy
    )
    rng = np.random.default_rng(task.seed)
    n = len(task.ranked)
    counts = np.zeros(n, dtype=np.int64)
    total_scanned = 0
    drawn = 0
    batches = 0
    snapshots: List[_ShardSnapshot] = []
    stride = task.snapshot_stride
    while drawn < task.budget:
        step = min(task.batch_size, task.budget - drawn)
        if stride:
            # Align batches to snapshot boundaries so cumulative counts
            # exist exactly at each checkpoint.
            next_boundary = (drawn // stride + 1) * stride
            step = min(step, next_boundary - drawn)
        batch_counts, scanned = sampler.sample_batch(rng, step)
        counts += batch_counts
        total_scanned += int(scanned.sum())
        drawn += step
        batches += 1
        if stride and drawn % stride == 0 and drawn < task.budget:
            snapshots.append(
                _ShardSnapshot(
                    units=drawn,
                    counts=counts.copy(),
                    total_scanned=total_scanned,
                )
            )
    return _ShardResult(
        index=task.index,
        units=drawn,
        counts=counts,
        total_scanned=total_scanned,
        batches=batches,
        seconds=time.perf_counter() - started,
        snapshots=snapshots,
    )


def _snapshot_stride(
    config: SamplingConfig, n_shards: int, max_shard_budget: int
) -> int:
    """Units between per-shard snapshots (0 when not progressive).

    The base stride ``ceil(d / n_shards)`` keeps merged checkpoints at
    the single-process cadence of ``~d`` merged units; very large shard
    budgets coarsen it so no shard records more than
    :data:`MAX_SNAPSHOTS_PER_SHARD` snapshots.
    """
    if not config.progressive:
        return 0
    base = max(1, math.ceil(max(1, config.check_interval) / n_shards))
    cap = max(1, math.ceil(max_shard_budget / MAX_SNAPSHOTS_PER_SHARD))
    return max(base, cap)


def _merge_shards(
    results: Sequence[_ShardResult],
    n_ranked: int,
    config: SamplingConfig,
    budget: int,
) -> Tuple[SamplingResult, np.ndarray]:
    """Merge shard counts, replaying the (d, phi) rule on merged snapshots.

    :returns: the merged result (estimates not yet filled) and the merged
        per-position inclusion counts it was truncated to.
    """
    merged = SamplingResult(budget=budget)
    counts = np.zeros(n_ranked, dtype=np.int64)
    for result in results:
        counts += result.counts
    units = sum(result.units for result in results)
    total_scanned = sum(result.total_scanned for result in results)

    if config.progressive and results:
        n_checkpoints = min(len(result.snapshots) for result in results)
        previous: Optional[np.ndarray] = None
        for c in range(n_checkpoints):
            checkpoint_units = sum(
                result.snapshots[c].units for result in results
            )
            if checkpoint_units < config.min_samples:
                continue
            checkpoint_counts = np.zeros(n_ranked, dtype=np.int64)
            for result in results:
                checkpoint_counts += result.snapshots[c].counts
            estimates = checkpoint_counts / checkpoint_units
            if (
                previous is not None
                and previous.any()
                and np.all(np.abs(estimates - previous) <= config.tolerance)
            ):
                counts = checkpoint_counts
                units = checkpoint_units
                total_scanned = sum(
                    result.snapshots[c].total_scanned for result in results
                )
                merged.converged_early = True
                break
            previous = estimates

    merged.units_drawn = units
    merged.total_scanned = total_scanned
    return merged, counts


def parallel_sampled_topk_probabilities(
    table: UncertainTable,
    query: TopKQuery,
    config: Optional[SamplingConfig] = None,
    prepared: Optional[PreparedRanking] = None,
    cache: Optional[PrepareCache] = None,
    use_processes: bool = True,
) -> SamplingResult:
    """Estimate ``Pr^k`` with the unit budget sharded across workers.

    Semantically a drop-in for
    :func:`repro.core.sampling.sampled_topk_probabilities`: unbiased
    estimates, deterministic for a fixed ``(seed, batch_size,
    n_workers)`` triple, and byte-identical to the single-process path
    when ``config.n_workers == 1``.

    :param use_processes: set False to run the shards inline (identical
        results, no pool — useful in tests and constrained sandboxes).
    """
    config = config or SamplingConfig()
    n_workers = resolve_workers(config.n_workers)
    if n_workers <= 1:
        return sampled_topk_probabilities(
            table,
            query,
            config=_with_workers(config, 1),
            prepared=prepared,
            cache=cache,
        )

    with obs_span("sampling.prepare"):
        prepared = resolve_prepared(
            table, query, prepared=prepared, cache=cache
        )
    budget = config.resolved_sample_size()
    batch_size = config.resolved_batch_size()
    budgets = shard_budgets(budget, n_workers)
    seeds = shard_seeds(config.seed, len(budgets))
    stride = _snapshot_stride(config, len(budgets), max(budgets))
    ranked = tuple(prepared.ranked)
    tasks = [
        _ShardTask(
            index=i,
            ranked=ranked,
            rule_of=dict(prepared.rule_of),
            k=query.k,
            lazy=config.lazy,
            budget=shard_budget,
            batch_size=batch_size,
            snapshot_stride=stride,
            seed=seed,
        )
        for i, (shard_budget, seed) in enumerate(zip(budgets, seeds))
    ]

    with obs_span(
        "sampling.parallel_draw",
        k=query.k,
        budget=budget,
        workers=n_workers,
        shards=len(tasks),
    ) as draw_span:
        results = shard_map(
            _run_shard, tasks, n_workers, use_processes=use_processes
        )
        merge_started = time.perf_counter()
        with obs_span("sampling.merge", shards=len(results)):
            merged, counts = _merge_shards(results, len(ranked), config, budget)
        merge_seconds = time.perf_counter() - merge_started
        draw_span.set(
            units_drawn=merged.units_drawn,
            converged_early=merged.converged_early,
        )

    n = max(merged.units_drawn, 1)
    ids = [t.tid for t in ranked]
    merged.estimates = {
        ids[i]: int(counts[i]) / n for i in np.flatnonzero(counts)
    }

    if OBS.enabled:
        catalogued("repro_parallel_shards_total").inc(len(results))
        catalogued("repro_parallel_workers").set(n_workers)
        shard_units = catalogued("repro_parallel_shard_units")
        shard_seconds = catalogued("repro_parallel_shard_seconds")
        for result in results:
            shard_units.observe(result.units)
            shard_seconds.observe(result.seconds)
        catalogued("repro_parallel_merge_seconds").observe(merge_seconds)
        catalogued("repro_sampler_units_total").inc(merged.units_drawn)
        catalogued("repro_sampler_batches_total").inc(
            sum(result.batches for result in results)
        )
        catalogued("repro_sampler_convergence_stops_total").inc(
            1.0 if merged.converged_early else 0.0
        )
        catalogued("repro_sampler_budget_units").set(budget)
        catalogued("repro_sampler_achieved_units").set(merged.units_drawn)
    return merged


def _with_workers(config: SamplingConfig, n_workers: int) -> SamplingConfig:
    """A copy of ``config`` pinned to ``n_workers`` (avoids recursion)."""
    from dataclasses import replace

    if config.n_workers == n_workers:
        return config
    return replace(config, n_workers=n_workers)
