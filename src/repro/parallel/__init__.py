"""Parallel query execution: sharded sampling and multi-query fan-out.

Two independent axes of parallelism over the same process-pool plumbing
(:mod:`repro.parallel.pool`):

* **within one sampled query** — :mod:`repro.parallel.sharded` splits
  the Monte-Carlo unit budget across workers and merges inclusion
  counts, deterministic for a fixed ``(seed, batch_size, n_workers)``;
* **across many queries** — :mod:`repro.parallel.fanout` partitions
  independent PT-k requests across workers sharing one prepared ranking
  per table.

See ``docs/parallel.md`` for the worker model and determinism contract.
"""

from repro.parallel.fanout import (
    parallel_batch_ptk_queries,
    parallel_ptk_queries,
    strip_for_shipping,
)
from repro.parallel.pool import (
    MAX_WORKERS,
    available_cpus,
    resolve_workers,
    shard_map,
)
from repro.parallel.sharded import (
    parallel_sampled_topk_probabilities,
    shard_budgets,
    shard_seeds,
)

__all__ = [
    "MAX_WORKERS",
    "available_cpus",
    "parallel_batch_ptk_queries",
    "parallel_ptk_queries",
    "parallel_sampled_topk_probabilities",
    "resolve_workers",
    "shard_budgets",
    "shard_seeds",
    "shard_map",
    "strip_for_shipping",
]
