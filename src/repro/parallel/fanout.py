"""Multi-query fan-out: independent PT-k requests across a process pool.

Serving workloads rarely ask one query at a time: a dashboard refresh
issues dozens of independent ``(table, k, threshold)`` requests at once.
Each is answered by the exact engine — CPU-bound, no shared mutable
state — so they partition cleanly across workers.

The expensive shared part, query preparation (selection + ranking + rule
indexing), is **not** repeated per worker: the parent prepares each
table once (through its :class:`~repro.query.prepare.PrepareCache`,
warming it for later queries) and ships the prepared ranking to the
workers.  Predicate and ranking objects may close over lambdas, so the
shipped copy is stripped to the picklable parts the engines actually
consume (ranked tuples, rule index, rule probabilities).

Two entry points:

* :func:`parallel_ptk_queries` — arbitrary ``(table_key, k, threshold)``
  requests, each answered by :func:`repro.core.exact.exact_ptk_query`
  against its table's shared preparation.  Backs
  :meth:`repro.query.engine.UncertainDB.ptk_many`.
* :func:`parallel_batch_ptk_queries` — the parallel mode of
  :func:`repro.core.batch.batch_ptk_queries`: one table, requests
  partitioned round-robin, each worker running one shared profile scan
  for its partition.

Answers are returned in request order and are identical to the serial
paths (the exact engine is deterministic), whichever executor runs them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.batch import answers_from_profiles, validate_requests
from repro.core.exact import ExactVariant, exact_ptk_query
from repro.core.profile import topk_probability_profile
from repro.core.results import PTKAnswer
from repro.exceptions import QueryError
from repro.model.table import UncertainTable
from repro.obs import OBS, catalogued, span as obs_span
from repro.parallel.pool import resolve_workers, shard_map
from repro.query.prepare import PrepareCache, PreparedRanking, resolve_prepared
from repro.query.ranking import RankingFunction, by_score
from repro.query.topk import TopKQuery


def strip_for_shipping(prepared: PreparedRanking) -> PreparedRanking:
    """A copy of ``prepared`` safe to pickle into worker processes.

    Predicate and ranking objects may hold closures (``by_score`` does);
    the engines consuming a ready preparation never touch them, so the
    shipped copy carries ``None`` in their place.
    """
    if prepared.predicate is None and prepared.ranking is None:
        return prepared
    return replace(prepared, predicate=None, ranking=None)


@dataclass(frozen=True)
class _ExactChunk:
    """One worker's slice of a fan-out: requests plus their preparations."""

    items: Tuple[Tuple[int, str, int, float], ...]  # (position, key, k, p)
    prepared_of: Mapping[str, PreparedRanking]
    variant_value: str
    pruning: bool


def _run_exact_chunk(chunk: _ExactChunk) -> List[Tuple[int, PTKAnswer]]:
    """Answer one chunk's requests (module-level: must pickle)."""
    out: List[Tuple[int, PTKAnswer]] = []
    variant = ExactVariant(chunk.variant_value)
    for position, key, k, threshold in chunk.items:
        prepared = chunk.prepared_of[key]
        answer = exact_ptk_query(
            prepared.table,
            TopKQuery(k=k),
            threshold,
            variant=variant,
            pruning=chunk.pruning,
            prepared=prepared,
        )
        out.append((position, answer))
    return out


def parallel_ptk_queries(
    prepared_of: Mapping[str, PreparedRanking],
    requests: Sequence[Tuple[str, int, float]],
    n_workers: Optional[int] = None,
    variant: ExactVariant = ExactVariant.RC_LR,
    pruning: bool = True,
    use_processes: bool = True,
) -> List[PTKAnswer]:
    """Answer independent exact PT-k requests across a worker pool.

    :param prepared_of: table key -> prepared ranking; every key named in
        ``requests`` must be present.  Prepare once in the parent (see
        :meth:`UncertainDB.ptk_many`) — workers never re-prepare.
    :param requests: ``(table_key, k, threshold)`` triples.
    :param n_workers: pool size; ``None``/``0`` means one per CPU, ``1``
        answers serially in-process.
    :returns: answers in request order, identical to calling
        :func:`exact_ptk_query` per request.
    """
    if not requests:
        return []
    validate_requests([(k, threshold) for _, k, threshold in requests])
    missing = {key for key, _, _ in requests} - set(prepared_of)
    if missing:
        raise QueryError(
            f"no prepared ranking supplied for table(s) {sorted(missing)!r}"
        )
    workers = resolve_workers(n_workers)
    chunks = _partition_exact(requests, prepared_of, workers, variant, pruning)
    with obs_span(
        "query.fanout", mode="many", requests=len(requests), workers=workers
    ):
        chunk_results = shard_map(
            _run_exact_chunk, chunks, workers, use_processes=use_processes
        )
    answers: List[Optional[PTKAnswer]] = [None] * len(requests)
    for chunk_result in chunk_results:
        for position, answer in chunk_result:
            answers[position] = answer
    if OBS.enabled:
        catalogued("repro_parallel_fanout_queries_total").inc(
            len(requests), mode="many"
        )
        catalogued("repro_parallel_workers").set(workers)
    return answers  # type: ignore[return-value]


def _partition_exact(
    requests: Sequence[Tuple[str, int, float]],
    prepared_of: Mapping[str, PreparedRanking],
    workers: int,
    variant: ExactVariant,
    pruning: bool,
) -> List[_ExactChunk]:
    """Round-robin request partition; each chunk ships only what it needs."""
    n_chunks = max(1, min(workers, len(requests)))
    chunks: List[_ExactChunk] = []
    for c in range(n_chunks):
        items = tuple(
            (position, key, k, threshold)
            for position, (key, k, threshold) in enumerate(requests)
            if position % n_chunks == c
        )
        if not items:
            continue
        needed = {key for _, key, _, _ in items}
        chunks.append(
            _ExactChunk(
                items=items,
                prepared_of={
                    key: strip_for_shipping(prepared_of[key]) for key in needed
                },
                variant_value=variant.value,
                pruning=pruning,
            )
        )
    return chunks


# ----------------------------------------------------------------------
# Parallel mode of batch_ptk_queries: one table, shared profile per chunk
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _BatchChunk:
    """One worker's request partition over a single shared preparation."""

    items: Tuple[Tuple[int, int, float], ...]  # (position, k, threshold)
    prepared: PreparedRanking


def _run_batch_chunk(chunk: _BatchChunk) -> List[Tuple[int, PTKAnswer]]:
    """Answer one partition via a profile scan (module-level: must pickle)."""
    chunk_requests = [(k, threshold) for _, k, threshold in chunk.items]
    max_k = max(k for k, _ in chunk_requests)
    query = TopKQuery(k=max_k)
    profiles = topk_probability_profile(
        chunk.prepared.table, query, prepared=chunk.prepared
    )
    answers = answers_from_profiles(
        profiles, chunk.prepared.ranked, chunk_requests
    )
    return [
        (position, answer)
        for (position, _, _), answer in zip(chunk.items, answers)
    ]


def parallel_batch_ptk_queries(
    table: UncertainTable,
    requests: Sequence[Tuple[int, float]],
    ranking: RankingFunction | None = None,
    cache: Optional[PrepareCache] = None,
    n_workers: Optional[int] = None,
    use_processes: bool = True,
) -> List[PTKAnswer]:
    """The parallel mode of :func:`repro.core.batch.batch_ptk_queries`.

    The table is prepared once in the parent (through ``cache`` when
    given); requests are partitioned round-robin and every worker runs
    one shared profile scan capped at its partition's largest k.
    Answers match the serial batch path exactly.
    """
    if not requests:
        return []
    validate_requests(requests)
    workers = resolve_workers(n_workers)
    ranking = ranking or by_score()
    max_k = max(k for k, _ in requests)
    query = TopKQuery(k=max_k, ranking=ranking)
    prepared = strip_for_shipping(
        resolve_prepared(table, query, cache=cache)
    )
    n_chunks = max(1, min(workers, len(requests)))
    chunks = []
    for c in range(n_chunks):
        items = tuple(
            (position, k, threshold)
            for position, (k, threshold) in enumerate(requests)
            if position % n_chunks == c
        )
        if items:
            chunks.append(_BatchChunk(items=items, prepared=prepared))
    with obs_span(
        "query.fanout", mode="batch", requests=len(requests), workers=workers
    ):
        chunk_results = shard_map(
            _run_batch_chunk, chunks, workers, use_processes=use_processes
        )
    answers: List[Optional[PTKAnswer]] = [None] * len(requests)
    for chunk_result in chunk_results:
        for position, answer in chunk_result:
            answers[position] = answer
    if OBS.enabled:
        catalogued("repro_parallel_fanout_queries_total").inc(
            len(requests), mode="batch"
        )
        catalogued("repro_parallel_workers").set(workers)
    return answers  # type: ignore[return-value]
