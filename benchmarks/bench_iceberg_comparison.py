"""E2 — Section 6.1: PT-k vs U-TopK vs U-KRanks on iceberg sightings.

Runs the paper's real-data study on the simulated IIP table (4,231
tuples, 825 rules — scaled by REPRO_BENCH_SCALE) with k = 10, p = 0.5,
regenerating the Tables 5/6 views.

Shape assertions from the paper: every PT-k answer passes the
threshold; the U-TopK vector's probability is very low (the paper's was
0.0299 — "the low presence probability limits its usefulness"); and the
semantics genuinely disagree in the ways the paper highlights.
"""

import pytest

from benchmarks.conftest import bench_scale, emit
from repro.bench.comparison import iceberg_comparison, ukranks_table
from repro.datagen.iceberg import IcebergConfig, generate_iceberg_table

K = 10
THRESHOLD = 0.5


@pytest.fixture(scope="module")
def study():
    scale = bench_scale()
    config = IcebergConfig(
        n_tuples=max(300, int(4231 * scale)),
        n_rules=max(50, int(825 * scale)),
    )
    return iceberg_comparison(
        k=K, threshold=THRESHOLD, table=generate_iceberg_table(config)
    )


def test_tables5_and_6(benchmark, study):
    summary = benchmark.pedantic(
        lambda: study.answer_table, rounds=1, iterations=1
    )
    emit(summary, "iceberg_table6.txt")
    emit(ukranks_table(study), "iceberg_table5.txt")
    assert len(summary.rows) >= K


def test_ptk_answers_pass_threshold(study):
    ptk = study.comparison.ptk
    for tid in ptk.answers:
        assert ptk.probabilities[tid] >= THRESHOLD


def test_utopk_vector_probability_is_low(study):
    # the most probable vector has tiny absolute probability (paper: 0.0299)
    assert study.comparison.utopk.probability < 0.2


def test_semantics_disagree(study):
    comparison = study.comparison
    ptk_set = comparison.ptk.answer_set
    utopk_set = set(comparison.utopk.vector)
    ukranks_list = comparison.ukranks.tuple_ids
    # U-KRanks uses at most k distinct tuples and may duplicate some
    assert len(set(ukranks_list)) <= K
    # the three answers are not all identical (the paper's point)
    assert not (ptk_set == utopk_set == set(ukranks_list))


def test_ukranks_probabilities_decrease_roughly(study):
    # probability of being exactly at rank j decays with j overall
    winners = study.comparison.ukranks.winners
    first, last = winners[0][1], winners[-1][1]
    assert last <= first
