"""Columnar kernel vs scalar oracle on the full-scan path (standalone).

Measures ``exact_topk_probabilities`` — a PT-k query in full-scan mode —
with the vectorized columnar kernel against the retained scalar
reference loop, on the paper's synthetic workload shape.  This is the
headline number for the columnar refactor; the scalar side is O(n²) in
tuple count, so the large sizes take tens of minutes and the script is
run manually, not in CI (CI guards regressions through the calibrated
perf smoke instead; see ``check_bench_regression.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_columnar_scan.py [n ...]

writes ``benchmarks/results/columnar_scan.json`` (appending one record
per size) and prints a table.  Default sizes: 10_000 and 100_000.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core.exact import exact_topk_probabilities
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.query.prepare import prepare_ranking
from repro.query.topk import TopKQuery

RESULTS = Path(__file__).parent / "results" / "columnar_scan.json"
K = 100
SEED = 7


def measure(n: int) -> dict:
    table = generate_synthetic_table(
        SyntheticConfig(n_tuples=n, n_rules=n // 10, seed=SEED)
    )
    query = TopKQuery(k=K)
    prepared = prepare_ranking(table, query)
    prepared.columns  # materialise outside the timed region

    started = time.perf_counter()
    columnar = exact_topk_probabilities(
        table, query, prepared=prepared, columnar=True
    )
    columnar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    scalar = exact_topk_probabilities(
        table, query, prepared=prepared, columnar=False
    )
    scalar_seconds = time.perf_counter() - started

    worst = max(abs(columnar[tid] - scalar[tid]) for tid in columnar)
    return {
        "n_tuples": n,
        "n_rules": n // 10,
        "k": K,
        "seed": SEED,
        "columnar_seconds": round(columnar_seconds, 4),
        "scalar_seconds": round(scalar_seconds, 4),
        "speedup": round(scalar_seconds / columnar_seconds, 2),
        "max_abs_difference": worst,
    }


def main(argv: list[str]) -> None:
    sizes = [int(a.replace("_", "")) for a in argv] or [10_000, 100_000]
    records = []
    if RESULTS.exists():
        records = json.loads(RESULTS.read_text())
    for n in sizes:
        record = measure(n)
        print(
            f"n={record['n_tuples']}: columnar {record['columnar_seconds']}s "
            f"scalar {record['scalar_seconds']}s "
            f"speedup {record['speedup']}x "
            f"parity {record['max_abs_difference']:.2e}",
            flush=True,
        )
        records = [r for r in records if r["n_tuples"] != n] + [record]
        records.sort(key=lambda r: r["n_tuples"])
        RESULTS.parent.mkdir(exist_ok=True)
        RESULTS.write_text(json.dumps(records, indent=2) + "\n")


if __name__ == "__main__":
    main(sys.argv[1:])
