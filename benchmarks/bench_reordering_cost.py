"""E7 — Equation 5 ablation: aggressive vs lazy reordering cost.

The paper works Example 5 by hand (Cost_aggressive = 15, Cost_lazy = 12)
and claims "the lazy method is always better than the aggressive
method".  This benchmark asserts the hand-worked numbers exactly and
measures both strategies across rule-complexity sweeps.
"""

from benchmarks.conftest import bench_scale, emit
from repro.bench.ablation import example5_costs, reordering_cost_experiment


def test_example5_costs_exact(benchmark):
    costs = benchmark.pedantic(example5_costs, rounds=3, iterations=1)
    assert costs == {"aggressive": 15, "lazy": 12}


def test_lazy_never_worse_across_rule_sizes(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: reordering_cost_experiment(
            n_tuples=max(500, int(4000 * scale)),
            n_rules=max(50, int(400 * scale)),
            k=max(10, int(100 * scale)),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result, "reordering_cost.txt")
    for row in result.as_dicts():
        assert row["cost_lazy"] <= row["cost_aggressive"]
    # savings exist somewhere in the sweep (rules make prefixes fragile)
    assert any(row["lazy_savings"] > 0 for row in result.as_dicts())
