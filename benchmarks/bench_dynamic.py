"""Mixed read/write serving: delta refresh vs invalidate-and-re-prepare.

The point of :mod:`repro.dynamic`: under a write-heavy serve loop, a
mutation should cost one *suffix* re-evaluation of the maintained
``Pr^k`` state, not a cold re-prepare (sort + rule index + columnarise)
plus a full pruned scan on the next read.  This benchmark drives the
whole service stack — ``POST /mutate`` and ``POST /query`` through the
loopback transport — twice per workload mix:

* **invalidate** — ``dynamic`` off: every mutation bumps the table
  version, the next read's ``PrepareCache.get`` misses and re-prepares,
  and the answer is a fresh pruned scan (the pre-``repro.dynamic``
  behaviour);
* **delta-refresh** — ``dynamic`` on: the mutation enqueues a
  :class:`~repro.dynamic.delta.TableDelta`; the next read drains it
  into the incremental index (column surgery + clean-watermark drop)
  and answers from the maintained column, re-pricing lazily only to
  the Theorem-5 stop depth — byte-identical to a cold scan.  The
  ``invalidate`` arm additionally stubs the prepare-cache refresh hook
  so it measures the true pre-subsystem baseline.

Mixes: 90/10 (read-dominated dashboard refreshing under a trickle of
updates) and 50/50 (write-heavy ingestion).  Every answer in the
delta-refresh arm is cross-checked against a cold
:func:`~repro.core.exact.exact_ptk_query` *during* the loop — the
speedup is only admissible at zero diffs.

What to look for (committed results under ``results/dynamic_mixed*``):

* ``read_p99_ms`` — the delta-refresh arm stays near its p50 because a
  read after a write re-prices at most the top of the ranking (a
  mutation below the answer depth costs no DP work at all), while the
  invalidate arm pays re-prepare + pruned scan exactly on those reads
  (the p99 *is* the post-write read);
* ``prepare_misses`` — flat (0) with refresh on, roughly one per write
  without;
* ``write_p50_ms`` — the cost that moved: the delta arm's writes carry
  the prepare-surgery + enqueue work the baseline defers to reads;
* ``diffs`` — always 0.

Host caveats as in ``bench_serve.py``: loopback, GIL-bound Python —
shapes, not absolutes.
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import bench_scale, emit
from repro.bench.harness import ExperimentTable
from repro.core.exact import exact_ptk_query
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.query.engine import UncertainDB
from repro.query.topk import TopKQuery
from repro.serve import (
    LoopbackTransport,
    ServeApp,
    ServeClient,
    ServeConfig,
)

K = 10
THRESHOLD = 0.3
SEED = 31
TOTAL_OPS = 240
#: Cross-check every Nth dynamic answer against a cold exact scan.
ORACLE_EVERY = 16
MIXES = {"90/10": 0.10, "50/50": 0.50}


def _make_db():
    n_tuples = max(1_000, int(10_000 * bench_scale()))
    table = generate_synthetic_table(
        SyntheticConfig(
            n_tuples=n_tuples, n_rules=n_tuples // 10, seed=SEED
        )
    )
    db = UncertainDB()
    name = db.register(table)
    return db, name, n_tuples


def _percentile(sorted_values, fraction):
    index = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def _mixed_loop(write_fraction: float, dynamic: bool):
    """One single-client closed loop of TOTAL_OPS mixed operations.

    Returns (read latencies, write latencies, wall seconds,
    prepare misses, versions advanced, dynamic stats or None,
    oracle diffs).
    """
    db, name, n_tuples = _make_db()
    if not dynamic:
        # The true pre-repro.dynamic baseline: a mutation condemns warm
        # preparations (version keying purges them on the next get), so
        # every post-write read re-prepares.  Without this stub the
        # delta-refresh surgery — itself part of the subsystem under
        # test — would quietly keep the "invalidate" arm's cache warm.
        db.prepare_cache.refresh = lambda table, delta: 0
    app = ServeApp(
        db,
        ServeConfig(
            window_ms=0.0,
            max_inflight=1,
            enable_obs=False,
            dynamic=dynamic,
            dynamic_cap=K,
        ),
    )
    rng = random.Random(SEED)
    # Mutate only independent tuples: identical op sequences in both
    # arms, and probability updates never violate a rule's sum bound.
    table = db.table(name)
    free = [
        str(tup.tid) for tup in table.ranked_tuples()
        if table.is_independent(tup.tid)
    ]
    reads, writes, diffs = [], [], 0
    version_before = table.version
    with LoopbackTransport(app) as transport:
        client = ServeClient(transport)
        client.query(name, k=K, threshold=THRESHOLD)  # warm both arms
        misses_before = db.prepare_cache.stats().misses
        wall_start = time.perf_counter()
        for i in range(TOTAL_OPS):
            if rng.random() < write_fraction:
                tid = rng.choice(free)
                if rng.random() < 0.5:
                    payload = {
                        "op": "update", "table": name, "tid": tid,
                        "probability": rng.uniform(0.05, 0.95),
                    }
                else:
                    payload = {
                        "op": "score", "table": name, "tid": tid,
                        "score": rng.uniform(0.0, 1000.0),
                    }
                start = time.perf_counter()
                client.mutate(payload)
                writes.append(time.perf_counter() - start)
            else:
                start = time.perf_counter()
                response = client.query(name, k=K, threshold=THRESHOLD)
                reads.append(time.perf_counter() - start)
                if dynamic and i % ORACLE_EVERY == 0:
                    cold = exact_ptk_query(
                        db.table(name), TopKQuery(k=K), THRESHOLD
                    )
                    if response["answers"] != [
                        str(tid) for tid in cold.answers
                    ]:
                        diffs += 1
        wall = time.perf_counter() - wall_start
    misses = db.prepare_cache.stats().misses - misses_before
    versions = db.table(name).version - version_before
    stats = db.dynamic.stats() if dynamic else None
    return reads, writes, wall, misses, versions, stats, diffs, n_tuples


def test_dynamic_mixed_loops():
    result = ExperimentTable(
        title="Mixed read/write serving: delta refresh vs invalidate",
        columns=[
            "mix", "arm", "ops", "wall_s", "read_p50_ms", "read_p99_ms",
            "write_p50_ms", "prepare_misses", "versions", "deltas",
            "fallbacks", "diffs",
        ],
        notes=(
            f"k={K}, p={THRESHOLD}, seed={SEED}; single closed-loop "
            "client over the loopback transport; 'invalidate' serves "
            "post-write reads via re-prepare + pruned scan, "
            "'delta-refresh' via the incremental index (answers "
            "oracle-checked against cold exact scans: diffs must be 0)"
        ),
    )
    summary = {}
    for mix, write_fraction in MIXES.items():
        for arm, dynamic in (("invalidate", False), ("delta-refresh", True)):
            (reads, writes, wall, misses, versions,
             stats, diffs, n_tuples) = _mixed_loop(write_fraction, dynamic)
            ordered = sorted(reads)
            read_p99 = _percentile(ordered, 0.99)
            result.add_row(
                mix,
                arm,
                TOTAL_OPS,
                round(wall, 3),
                round(_percentile(ordered, 0.50) * 1000, 2),
                round(read_p99 * 1000, 2),
                round(_percentile(sorted(writes), 0.50) * 1000, 3),
                misses,
                versions,
                stats["deltas_applied"] if stats else "-",
                sum(stats["fallbacks"].values()) if stats else "-",
                diffs,
            )
            summary[(mix, arm)] = (read_p99, misses, versions, stats, diffs)

    for mix in MIXES:
        cold_p99, _, _, _, _ = summary[(mix, "invalidate")]
        warm_p99, misses, versions, stats, diffs = summary[
            (mix, "delta-refresh")
        ]
        # Zero diffs vs the oracle is the admissibility condition.
        assert diffs == 0, f"{mix}: {diffs} oracle mismatches"
        # Writes flowed as deltas, none fell back.
        assert versions > 0
        assert stats["deltas_applied"] > 0
        assert stats["fallbacks"] == {}
        # The refresh kept the prepare cache warm while versions
        # advanced (the invalidate arm misses once per post-write read).
        assert misses == 0, f"{mix}: {misses} re-prepares despite refresh"
        # The headline: post-write reads are cheaper than re-prepare +
        # full scan.  Asserted loosely (2x) to stay robust on noisy CI
        # hosts; committed results show the real margin.
        assert warm_p99 < cold_p99 * 2.0, (
            f"{mix}: delta-refresh p99 {warm_p99 * 1e3:.2f}ms vs "
            f"invalidate {cold_p99 * 1e3:.2f}ms"
        )

    emit(result, "dynamic_mixed.txt")
