"""Paper-reproduction benchmarks (pytest-benchmark harness).

One module per table/figure of the paper; see DESIGN.md's experiment
index.  Run with::

    pytest benchmarks/ --benchmark-only

Workload sizes scale with the REPRO_BENCH_SCALE environment variable
(default 0.5; use 1.0 for the paper's exact sizes).
"""
