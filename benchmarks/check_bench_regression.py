"""Calibrated perf-smoke gate over the core micro-benchmarks.

CI runs ``bench_core_micro.py`` at a small fixed scale with
``--benchmark-json`` and hands the output to this script, which
compares the medians of the gated benchmarks against the committed
baseline ``benchmarks/BENCH_core.json`` and fails when the exact-path
median regresses by more than the budget (default 25%).

Raw wall-clock medians are not comparable across machines, so both the
baseline and every check normalise by a machine calibration factor: the
median time of a fixed, dependency-free python + numpy workload
measured on the spot.  A check on hardware 2x slower than the baseline
machine sees its calibration double too, cancelling out.

Usage::

    # record / refresh the committed baseline
    python benchmarks/check_bench_regression.py --update bench.json

    # gate a fresh run against the committed baseline (exit 1 on fail)
    python benchmarks/check_bench_regression.py --check bench.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).parent / "BENCH_core.json"

#: Benchmarks whose regressions fail the gate.  Matched as substrings of
#: the pytest-benchmark name, so parametrised ids keep working.
GATED = (
    "test_exact_query_variants[RC+LR]",
    "test_full_scan_columnar",
    "test_subset_probability_thousand_extensions",
    "test_scheduler_cost_order",
    "test_dynamic_delta_refresh",
)

#: Allowed slowdown of a calibrated median before the gate fails.
BUDGET = 1.25


def calibrate(rounds: int = 7) -> float:
    """Median seconds of a fixed mixed python/numpy workload.

    Exercises the same cost classes the gated benchmarks do — python
    loop dispatch, ``math.fsum``, and vectorised float64 numpy ops — so
    machine-speed differences scale the calibration roughly the way
    they scale the benchmarks.
    """
    import numpy as np

    samples = []
    values = [0.1 + (i % 97) * 1e-4 for i in range(2000)]
    array = np.linspace(0.0, 1.0, 200_000)
    for round_index in range(rounds + 1):
        started = time.perf_counter()
        total = 0.0
        for _ in range(50):
            total += math.fsum(values)
        for _ in range(50):
            scratch = array * 0.5
            scratch += array
            total += float(scratch[-1])
        assert total > 0.0
        if round_index == 0:
            continue  # warm-up round: caches, numpy dispatch, turbo ramp
        samples.append(time.perf_counter() - started)
    # The minimum is the steadiest cross-machine speed estimate: it is
    # the least contaminated by scheduler noise and background load.
    return min(samples)


def load_medians(bench_json: Path) -> dict:
    data = json.loads(bench_json.read_text())
    return {
        bench["name"]: bench["stats"]["median"]
        for bench in data["benchmarks"]
    }


def gated_only(medians: dict) -> dict:
    out = {}
    for name, median in medians.items():
        if any(g in name for g in GATED):
            out[name] = median
    return out


def update(bench_json: Path) -> int:
    medians = gated_only(load_medians(bench_json))
    if not medians:
        print("no gated benchmarks found in", bench_json, file=sys.stderr)
        return 1
    payload = {
        "calibration_seconds": calibrate(),
        "budget": BUDGET,
        "medians": medians,
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BASELINE_PATH} ({len(medians)} gated benchmarks)")
    return 0


def check(bench_json: Path) -> int:
    if not BASELINE_PATH.exists():
        print(f"missing baseline {BASELINE_PATH}", file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    budget = float(baseline.get("budget", BUDGET))
    machine_factor = calibrate() / float(baseline["calibration_seconds"])
    print(f"machine calibration factor: {machine_factor:.3f}x baseline")
    medians = gated_only(load_medians(bench_json))
    failures = []
    for name, recorded in sorted(baseline["medians"].items()):
        current = medians.get(name)
        if current is None:
            failures.append(f"{name}: benchmark missing from this run")
            continue
        allowed = float(recorded) * machine_factor * budget
        verdict = "ok" if current <= allowed else "REGRESSED"
        print(
            f"  {name}: {current * 1e3:.2f}ms "
            f"(allowed {allowed * 1e3:.2f}ms) {verdict}"
        )
        if current > allowed:
            failures.append(
                f"{name}: median {current:.4f}s exceeds calibrated "
                f"budget {allowed:.4f}s (baseline {recorded:.4f}s)"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--update", metavar="BENCH_JSON", type=Path)
    group.add_argument("--check", metavar="BENCH_JSON", type=Path)
    args = parser.parse_args()
    if args.update is not None:
        return update(args.update)
    return check(args.check)


if __name__ == "__main__":
    sys.exit(main())
