"""Replication: WAL ship/apply throughput and read scaling with replicas.

Two experiments:

* **Ship/apply throughput** (in-process): a primary ``DurableDB``
  accumulates journalled mutations; a :class:`ReplicaApplier` drains
  them through :meth:`ReplicationServer.handle_fetch` at several batch
  sizes (``max_records``).  The table shows how record batching
  amortises per-fetch overhead (cursor location, pin bookkeeping, the
  pending-lag probe) — throughput should rise steeply from
  ``max_records=1`` and flatten once the fetch overhead is amortised.

* **Read scaling** (multi-process, the acceptance experiment): a real
  ``repro replicate primary`` process plus 0/1/2 ``repro replicate
  follow`` processes on localhost TCP, with closed-loop client threads
  round-robining exact PT-k queries across every serving endpoint.
  Each node is its own Python process with its own GIL.  Two numbers
  are reported per replica count:

  - ``capacity_qps`` — the cluster's aggregate service capacity,
    ``sum(1 / mean service time)`` over endpoints, with each
    endpoint's service time calibrated by serial queries in isolation
    (server-side ``elapsed_ms``, so client/HTTP overhead is excluded).
    This is the measured scaling of the replicated architecture and is
    asserted to grow with every added replica on any host.
  - ``qps`` — wall-clock closed-loop throughput.  This tracks
    ``capacity_qps`` only when the host has cores for the node
    processes to spread over; on a single-core host every node
    time-shares one CPU and wall throughput *cannot* scale (it dips
    slightly from scheduler overhead), so the monotonicity assertion
    on ``qps`` is gated on ``available_cpus() >= 2``.

Host caveats: absolute numbers depend on the machine; the scaling
experiment spends ~1–2 s per node on process startup and catch-up,
which is excluded from the timed window.  The calibration pass doubles
as per-endpoint cache warm-up, so the timed window sees warm prepare
caches on every node.

Scaling: ``REPRO_BENCH_SCALE`` scales the table size and mutation
count; request counts are pinned so percentiles stay comparable.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from benchmarks.conftest import bench_scale, emit
from repro.bench.harness import ExperimentTable
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.durable import DurableDB
from repro.io.jsonio import write_table_json
from repro.parallel import available_cpus
from repro.replication import ReplicaApplier, ReplicationServer
from repro.serve.client import ServeClient, ServeClientError

SEED = 31
K = 10
THRESHOLD = 0.3
SHIP_BATCHES = (1, 8, 64, 512)
REPLICA_COUNTS = (0, 1, 2)
READ_CLIENTS = 6
READ_REQUESTS = 180  # divisible by READ_CLIENTS


# ----------------------------------------------------------------------
# Experiment 1: ship/apply throughput vs fetch batch size
# ----------------------------------------------------------------------
def test_ship_apply_throughput(tmp_path):
    n_mutations = max(500, int(4_000 * bench_scale()))
    db = DurableDB(tmp_path / "primary", fsync="off")
    table = generate_synthetic_table(
        SyntheticConfig(n_tuples=200, n_rules=20, seed=SEED)
    )
    db.register(table, name="bench")
    for i in range(n_mutations):
        db.add("bench", f"m{i}", float(i % 97), 0.25)

    result = ExperimentTable(
        title="WAL ship/apply throughput vs fetch batch size",
        columns=[
            "max_records", "records", "fetches",
            "ship_s", "records_per_s", "shipped_kb",
        ],
        notes=(
            f"{n_mutations} journalled mutations, in-process server and "
            f"applier (no transport); each fetch pays cursor location, "
            f"retention-pin upkeep, and the pending-lag probe"
        ),
    )
    for max_records in SHIP_BATCHES:
        server = ReplicationServer(db)
        applier = ReplicaApplier()  # fresh state: replays from the origin
        fetches = applied = 0
        start = time.perf_counter()
        while True:
            payload = server.handle_fetch(
                applier.replica_id,
                applier.cursor.encode(),
                max_records=max_records,
            )
            fetches += 1
            applier.apply_batch(payload)
            applied += len(payload["records"])
            if payload["caught_up"] and not payload["records"]:
                break
        elapsed = time.perf_counter() - start
        result.add_row(
            max_records,
            applied,
            fetches,
            round(elapsed, 3),
            round(applied / max(elapsed, 1e-9), 1),
            round(db.wal.appended_bytes / 1024, 1),
        )
        server.forget(applier.replica_id)
    db.close()
    emit(result, "replication_ship_apply.txt")


# ----------------------------------------------------------------------
# Experiment 2: read throughput scaling with replica count (TCP)
# ----------------------------------------------------------------------
def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _wait_healthy(port: int, timeout: float = 30.0) -> ServeClient:
    client = ServeClient.connect("127.0.0.1", port, timeout=5.0)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return client
        except (OSError, ServeClientError):
            time.sleep(0.1)
    raise RuntimeError(f"node on port {port} never became healthy")


def _spawn(args, cwd) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _calibrate(client, table_name, probes=12):
    """Mean server-side service time (s) from serial isolated queries.

    Also warms the endpoint's prepare cache, so the closed-loop window
    that follows never pays cold-start inside the timed region.
    """
    samples = []
    for _ in range(probes):
        response = client.query(
            table_name, k=K, threshold=THRESHOLD, mode="exact"
        )
        samples.append(response["elapsed_ms"] / 1000.0)
    # Drop the slowest third: cold-cache and scheduler outliers.
    samples.sort()
    kept = samples[: max(1, (2 * len(samples)) // 3)]
    return sum(kept) / len(kept)


def _closed_loop(clients, table_name):
    """READ_CLIENTS threads round-robin exact queries over ``clients``."""
    per_client = READ_REQUESTS // READ_CLIENTS
    latencies = []
    lock = threading.Lock()
    barrier = threading.Barrier(READ_CLIENTS + 1)

    def worker(index):
        local = []
        for i in range(per_client):
            endpoint = clients[(index + i) % len(clients)]
            start = time.perf_counter()
            endpoint.query(
                table_name, k=K, threshold=THRESHOLD, mode="exact"
            )
            local.append(time.perf_counter() - start)
        with lock:
            latencies.extend(local)

    threads = []
    for index in range(READ_CLIENTS):

        def run(index=index):
            barrier.wait()
            worker(index)

        threads.append(threading.Thread(target=run))
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    return latencies, wall


def test_read_scaling_with_replicas():
    n_tuples = max(2_000, int(8_000 * bench_scale()))
    table = generate_synthetic_table(
        SyntheticConfig(n_tuples=n_tuples, n_rules=n_tuples // 10, seed=SEED)
    )
    result = ExperimentTable(
        title="Read throughput scaling with replica count (TCP, multi-process)",
        columns=[
            "replicas", "endpoints", "requests", "wall_s", "qps",
            "p50_ms", "capacity_qps",
        ],
        notes=(
            f"n={n_tuples}, k={K}, p={THRESHOLD}, seed={SEED}; "
            f"{READ_CLIENTS} closed-loop clients round-robin over "
            f"primary + replicas, each node its own process; "
            f"{available_cpus()} usable core(s) — wall qps can only "
            f"track capacity_qps when nodes have cores to spread over; "
            f"capacity_qps = sum over endpoints of 1/mean service time, "
            f"calibrated serially in isolation (server elapsed_ms)"
        ),
    )
    processes = []
    clients = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        tables_dir = root / "tables"
        tables_dir.mkdir()
        write_table_json(table, tables_dir / "bench.json")

        primary_port = _free_port()
        processes.append(
            _spawn(
                [
                    "replicate", "primary", str(root / "state"),
                    "--tables", str(tables_dir),
                    "--port", str(primary_port),
                    "--window-ms", "0",
                ],
                root,
            )
        )
        try:
            primary = _wait_healthy(primary_port)
            clients.append(primary)
            name = primary.tables()[0]["name"]
            target_version = primary.healthz()["table_versions"][name][
                "version"
            ]

            qps_by_level = {}
            capacity_by_level = {}
            service_times = {}
            for replicas in REPLICA_COUNTS:
                while len(clients) - 1 < replicas:
                    port = _free_port()
                    index = len(clients)
                    processes.append(
                        _spawn(
                            [
                                "replicate", "follow",
                                str(root / f"state-r{index}"),
                                "--primary", f"127.0.0.1:{primary_port}",
                                "--port", str(port),
                                "--window-ms", "0",
                                "--poll-ms", "20",
                            ],
                            root,
                        )
                    )
                    replica = _wait_healthy(port)
                    deadline = time.monotonic() + 30
                    while time.monotonic() < deadline:
                        meta = replica.healthz()["table_versions"].get(
                            name, {}
                        )
                        if meta.get("version", -1) >= target_version:
                            break
                        time.sleep(0.1)
                    clients.append(replica)
                for endpoint in clients:
                    if id(endpoint) not in service_times:
                        service_times[id(endpoint)] = _calibrate(
                            endpoint, name
                        )
                capacity = sum(
                    1.0 / max(service_times[id(endpoint)], 1e-9)
                    for endpoint in clients
                )
                latencies, wall = _closed_loop(clients, name)
                assert len(latencies) == READ_REQUESTS
                ordered = sorted(latencies)
                qps = READ_REQUESTS / max(wall, 1e-9)
                qps_by_level[replicas] = qps
                capacity_by_level[replicas] = capacity
                result.add_row(
                    replicas,
                    len(clients),
                    READ_REQUESTS,
                    round(wall, 3),
                    round(qps, 1),
                    round(ordered[len(ordered) // 2] * 1000, 2),
                    round(capacity, 1),
                )
        finally:
            for process in processes:
                process.send_signal(signal.SIGTERM)
            for process in processes:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    process.kill()
    # The acceptance shape: every replica adds measured service
    # capacity (calibrated per-endpoint, so this holds on any host) —
    # and where the host has cores for the nodes to spread over, the
    # wall-clock closed-loop throughput must scale too.
    levels = sorted(capacity_by_level)
    for lower, higher in zip(levels, levels[1:]):
        assert capacity_by_level[higher] > capacity_by_level[lower], (
            "aggregate service capacity did not grow with replicas: "
            f"{ {k: round(v, 1) for k, v in capacity_by_level.items()} }"
        )
    if available_cpus() >= 2:
        assert qps_by_level[max(REPLICA_COUNTS)] > qps_by_level[0], (
            "read throughput did not scale with replicas: "
            f"{ {k: round(v, 1) for k, v in qps_by_level.items()} }"
        )
    emit(result, "replication_read_scaling.txt")
