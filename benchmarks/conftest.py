"""Shared plumbing for the paper-reproduction benchmarks.

Every benchmark prints its experiment table and also writes it under
``benchmarks/results/`` so the numbers survive the pytest run.

Scale: the environment variable ``REPRO_BENCH_SCALE`` (default ``0.5``)
uniformly shrinks workload sizes and k.  ``REPRO_BENCH_SCALE=1.0``
reproduces the paper's exact workload sizes (20,000 tuples, k = 200,
etc.); the default halves them so the full suite finishes in a couple of
minutes while preserving every qualitative shape.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.reporting import render_table
from repro.bench.sweeps import SweepSettings, sweep_axis

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """The global workload scale factor (see module docstring)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def emit(table: ExperimentTable, filename: str) -> None:
    """Print an experiment table and persist it under results/."""
    text = render_table(table)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    with open(path, "a") as handle:
        handle.write(text + "\n\n")


def emit_chart(table: ExperimentTable, x: str, series, filename: str,
               log_y: bool = False) -> None:
    """Print an ASCII chart of selected series and persist it."""
    from repro.bench.charts import render_chart

    text = render_chart(table, x=x, series=list(series), log_y=log_y)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / filename, "a") as handle:
        handle.write(text + "\n\n")


@pytest.fixture(scope="session")
def sweep_settings() -> SweepSettings:
    """The Figure 4/5 sweep settings at the configured scale."""
    return SweepSettings(scale=bench_scale())


_SWEEP_CACHE: Dict[str, ExperimentTable] = {}


@pytest.fixture(scope="session")
def sweep_cache(sweep_settings):
    """Axis -> sweep table, computed once and shared by Fig 4 and Fig 5."""

    def get(axis: str) -> ExperimentTable:
        if axis not in _SWEEP_CACHE:
            _SWEEP_CACHE[axis] = sweep_axis(axis, settings=sweep_settings)
        return _SWEEP_CACHE[axis]

    return get
