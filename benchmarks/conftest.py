"""Shared plumbing for the paper-reproduction benchmarks.

Every benchmark prints its experiment table and also writes it under
``benchmarks/results/`` — both the original free-form text file and a
structured ``<stem>.metrics.json`` companion that carries the table's
rows plus a snapshot of the observability registry, so downstream
tooling never has to scrape text.

Scale: the environment variable ``REPRO_BENCH_SCALE`` (default ``0.5``)
uniformly shrinks workload sizes and k.  ``REPRO_BENCH_SCALE=1.0``
reproduces the paper's exact workload sizes (20,000 tuples, k = 200,
etc.); the default halves them so the full suite finishes in a couple of
minutes while preserving every qualitative shape.

Observability: set ``REPRO_BENCH_OBS=1`` to run every benchmark with the
:mod:`repro.obs` layer enabled, populating the per-run metric snapshots
with engine counters (pruning fires, DP extensions, sample lengths…).
It defaults to off so timing benchmarks measure the uninstrumented hot
path.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

import pytest

from repro import obs
from repro.bench.harness import ExperimentTable
from repro.bench.reporting import render_table
from repro.bench.sweeps import SweepSettings, sweep_axis
from repro.obs import export as obs_export

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """The global workload scale factor (see module docstring)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def bench_obs_enabled() -> bool:
    """True when bench runs should collect engine metrics."""
    return os.environ.get("REPRO_BENCH_OBS", "0") not in ("", "0", "false")


@pytest.fixture(scope="session", autouse=True)
def _bench_observability():
    """Enable the obs layer for the whole bench session when asked to."""
    if not bench_obs_enabled():
        yield
        return
    obs.enable(fresh=True)
    try:
        yield
    finally:
        obs.disable()


def _metrics_json_path(filename: str) -> Path:
    return RESULTS_DIR / (Path(filename).stem + ".metrics.json")


def emit(table: ExperimentTable, filename: str) -> None:
    """Print an experiment table and persist it under results/.

    Writes the legacy text file (appended, as before) and a structured
    JSON companion holding the table rows and the current observability
    snapshot.
    """
    text = render_table(table)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    with open(path, "a") as handle:
        handle.write(text + "\n\n")
    payload = {
        "title": table.title,
        "columns": table.columns,
        "rows": table.rows,
        "notes": table.notes,
        "scale": bench_scale(),
        "obs": obs_export.snapshot(),
    }
    with open(_metrics_json_path(filename), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


def emit_chart(table: ExperimentTable, x: str, series, filename: str,
               log_y: bool = False) -> None:
    """Print an ASCII chart of selected series and persist it."""
    from repro.bench.charts import render_chart

    text = render_chart(table, x=x, series=list(series), log_y=log_y)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / filename, "a") as handle:
        handle.write(text + "\n\n")


@pytest.fixture(scope="session")
def sweep_settings() -> SweepSettings:
    """The Figure 4/5 sweep settings at the configured scale."""
    return SweepSettings(scale=bench_scale())


_SWEEP_CACHE: Dict[str, ExperimentTable] = {}


@pytest.fixture(scope="session")
def sweep_cache(sweep_settings):
    """Axis -> sweep table, computed once and shared by Fig 4 and Fig 5."""

    def get(axis: str) -> ExperimentTable:
        if axis not in _SWEEP_CACHE:
            _SWEEP_CACHE[axis] = sweep_axis(axis, settings=sweep_settings)
        return _SWEEP_CACHE[axis]

    return get
