"""E10 — I/O view of pruning: index pages read vs table size.

The scan-depth savings of Figure 4/7 only matter because retrieval has
a per-page cost in a disk-resident system.  This benchmark runs the
PT-k query through the paged ranked index and reports index pages read
with pruning on, versus the pages a full scan would read — the I/O
translation of "only a very small portion of the tuples are retrieved".
"""

from benchmarks.conftest import bench_scale, emit
from repro.bench.harness import ExperimentTable
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.storage import RankedIndex
from repro.storage.index import ptk_query_over_index


def test_pages_read_vs_table_size(benchmark):
    scale = bench_scale()
    k = max(10, int(200 * scale))

    def run() -> ExperimentTable:
        result = ExperimentTable(
            title=f"Index pages read by the pruned PT-k scan (k={k}, p=0.3)",
            columns=[
                "n_tuples",
                "total_pages",
                "pages_read",
                "fraction_read",
                "scan_depth",
            ],
            notes="page capacity 64 tuples; rules at 10% of tuples",
        )
        for n in (5_000, 10_000, 20_000, 40_000):
            n_scaled = max(500, int(n * scale))
            table = generate_synthetic_table(
                SyntheticConfig(
                    n_tuples=n_scaled, n_rules=n_scaled // 10, seed=7
                )
            )
            index = RankedIndex(table, page_capacity=64)
            answer, pages = ptk_query_over_index(
                index, k=k, threshold=0.3, table=table
            )
            result.add_row(
                n_scaled,
                index.page_count,
                pages,
                pages / index.page_count,
                answer.stats.scan_depth,
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, "io_pages.txt")
    rows = result.as_dicts()
    # absolute pages read is governed by k, not by table size
    pages = [row["pages_read"] for row in rows]
    assert max(pages) <= 2 * min(pages)
    # and the fraction read shrinks as tables grow
    fractions = [row["fraction_read"] for row in rows]
    assert fractions[-1] < fractions[0]
    # pruning reads well under half of any of these tables
    assert all(f < 0.5 for f in fractions)
