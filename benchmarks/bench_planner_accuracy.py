"""E11 — planner accuracy: predicted vs measured scan depth.

Quantifies the "scan depth ≈ (k + z√k)/μ" planning model against the
real algorithm across k and membership-probability sweeps.  Accuracy
within a small constant factor is what a cost-based optimizer needs to
choose between the exact algorithm and the sampler.
"""

from benchmarks.conftest import bench_scale, emit
from repro.bench.harness import ExperimentTable
from repro.core.exact import exact_ptk_query
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.query.planner import estimate_scan_depth, estimate_scan_depth_exactish
from repro.query.topk import TopKQuery


def test_estimate_tracks_measured_depth(benchmark):
    scale = bench_scale()
    n = max(1000, int(20_000 * scale))

    def run() -> ExperimentTable:
        result = ExperimentTable(
            title="Planner accuracy: predicted vs measured scan depth (p=0.3)",
            columns=[
                "k",
                "mu",
                "measured",
                "estimate",
                "estimate_refined",
                "ratio",
            ],
            notes=f"n={n}, rules=10%",
        )
        for mu in (0.3, 0.5, 0.7):
            table = generate_synthetic_table(
                SyntheticConfig(
                    n_tuples=n,
                    n_rules=n // 10,
                    independent_prob_mean=mu,
                    seed=7,
                )
            )
            for k in (
                max(5, int(50 * scale)),
                max(10, int(200 * scale)),
                max(20, int(800 * scale)),
            ):
                query = TopKQuery(k=k)
                measured = exact_ptk_query(table, query, 0.3).stats.scan_depth
                coarse = estimate_scan_depth(table, k, 0.3)
                refined = estimate_scan_depth_exactish(table, k, 0.3)
                result.add_row(
                    k,
                    mu,
                    measured,
                    coarse.depth,
                    refined.depth,
                    coarse.depth / max(measured, 1),
                )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, "planner_accuracy.txt")
    # the closed form stays within a factor of 2.5 of reality everywhere
    for row in result.as_dicts():
        assert 0.4 <= row["ratio"] <= 2.5
