"""Parallel execution layer: sharded sampling speedup and fan-out.

Two experiments beyond the paper's figures:

1. **Sharded sampling speedup** — wall-clock of
   :func:`parallel_sampled_topk_probabilities` at 1 vs 4 workers on the
   acceptance workload (n = 10,000 tuples, 50,000-unit budget).  Shard
   streams come from independent ``SeedSequence`` children, so the
   merged estimates are a fresh (equally valid) draw of the same
   estimator; the check asserts every merged estimate lies inside the
   99.9% Wilson interval of the single-process run.  The >= 2x speedup
   assertion is gated on the host actually having >= 4 usable cores —
   on smaller machines the honest numbers are still recorded, with the
   core count in the notes.

2. **Multi-query fan-out** — ``ptk_many`` over a batch of independent
   exact PT-k requests, 1 worker vs 4, sharing one prepared ranking.

Scaling: these experiments pin the acceptance sizes rather than using
``REPRO_BENCH_SCALE`` — the speedup claim is about a fixed workload.
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.bench.harness import ExperimentTable
from repro.core.sampling import SamplingConfig
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.parallel import available_cpus, parallel_sampled_topk_probabilities
from repro.query.engine import UncertainDB
from repro.query.topk import TopKQuery
from repro.stats.intervals import wilson_interval

N_TUPLES = 10_000
BUDGET = 50_000
K = 100
SEED = 17
WORKERS = 4


@pytest.fixture(scope="module")
def table():
    return generate_synthetic_table(
        SyntheticConfig(n_tuples=N_TUPLES, n_rules=1_000, seed=SEED)
    )


def _run(table, n_workers):
    config = SamplingConfig(
        sample_size=BUDGET,
        progressive=False,
        seed=SEED,
        n_workers=n_workers,
    )
    start = time.perf_counter()
    result = parallel_sampled_topk_probabilities(
        table, TopKQuery(k=K), config=config
    )
    return result, time.perf_counter() - start


def test_sharded_sampling_speedup(benchmark, table):
    cores = available_cpus()
    benchmark.pedantic(lambda: _run(table, WORKERS), rounds=1, iterations=1)

    serial, serial_seconds = _run(table, 1)
    parallel, parallel_seconds = _run(table, WORKERS)
    speedup = serial_seconds / max(parallel_seconds, 1e-9)

    result = ExperimentTable(
        title="Sharded sampling: 1 vs 4 workers, same budget",
        columns=[
            "n", "k", "budget", "workers", "serial_s", "parallel_s", "speedup",
        ],
        notes=(
            f"seed={SEED}; host has {cores} usable core(s); "
            "speedup assertion gated on >= 4 cores"
        ),
    )
    result.add_row(
        N_TUPLES, K, BUDGET, WORKERS,
        round(serial_seconds, 4), round(parallel_seconds, 4),
        round(speedup, 2),
    )
    emit(result, "parallel_sharded_speedup.txt")

    # Quality gate runs everywhere: the parallel run is an independent
    # draw of the same estimator, so every merged estimate must land in
    # the (slightly padded) 99.9% Wilson interval of the serial one.
    assert serial.units_drawn == parallel.units_drawn == BUDGET
    pad = 0.01
    for tid, p_serial in serial.estimates.items():
        low, high = wilson_interval(
            p_serial * BUDGET, BUDGET, confidence=0.999
        )
        got = parallel.estimates.get(tid, 0.0)
        assert low - pad <= got <= high + pad, (tid, got, (low, high))

    if cores >= WORKERS:
        assert speedup >= 2.0, (
            f"sharded sampling only {speedup:.2f}x faster with "
            f"{WORKERS} workers on {cores} cores"
        )


def test_fanout_many_queries(benchmark, table):
    cores = available_cpus()
    db = UncertainDB()
    name = db.register(table)
    requests = [
        (name, k, threshold)
        for k in (25, 50, 100)
        for threshold in (0.2, 0.4, 0.6, 0.8)
    ]

    # Warm the prepare cache so both timings measure query execution,
    # not the shared one-off preparation.
    db.ptk(name, k=K, threshold=0.5)

    start = time.perf_counter()
    serial = db.ptk_many(requests, n_workers=1)
    serial_seconds = time.perf_counter() - start

    benchmark.pedantic(
        lambda: db.ptk_many(requests, n_workers=WORKERS),
        rounds=1,
        iterations=1,
    )
    start = time.perf_counter()
    parallel = db.ptk_many(requests, n_workers=WORKERS)
    parallel_seconds = time.perf_counter() - start
    speedup = serial_seconds / max(parallel_seconds, 1e-9)

    result = ExperimentTable(
        title="Multi-query fan-out: independent exact PT-k requests",
        columns=[
            "n", "requests", "workers", "serial_s", "parallel_s", "speedup",
        ],
        notes=f"host has {cores} usable core(s); one shared preparation",
    )
    result.add_row(
        N_TUPLES, len(requests), WORKERS,
        round(serial_seconds, 4), round(parallel_seconds, 4),
        round(speedup, 2),
    )
    emit(result, "parallel_fanout.txt")

    # The exact engine is deterministic: answers must match exactly.
    for a, b in zip(parallel, serial):
        assert a.answers == b.answers
        assert a.probabilities == b.probabilities
