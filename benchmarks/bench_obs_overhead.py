"""Observability overhead guardrail on the exact PT-k hot path.

Not a paper figure: this pins the cost of the instrumentation layer at
its three settings —

* **obs off** — the shipping default; instrumented sites pay one
  ``OBS.enabled`` attribute check and nothing else,
* **obs on** — metrics registry + span tree per query,
* **obs on + flight** — additionally one :class:`QueryProfile` per
  query landing in the flight recorder's ring.

The workload is a fixed 10k-tuple synthetic table queried through the
:class:`UncertainDB` facade (so the ``query_scope`` wiring is part of
what is measured), with the prepare cache warmed first — steady-state
query cost, not preparation.  The acceptance bar: obs-off must stay
within a few percent of the uninstrumented baseline, and the flight
recorder must add no measurable step over plain obs-on.
"""

import statistics
import time

import pytest

from benchmarks.conftest import emit
from repro import obs
from repro.bench.harness import ExperimentTable
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.obs import OBS
from repro.query.engine import UncertainDB

N_TUPLES = 10_000
N_RULES = 1_000
K = 100
THRESHOLD = 0.3
ROUNDS = 7


@pytest.fixture(scope="module")
def db():
    table = generate_synthetic_table(
        SyntheticConfig(n_tuples=N_TUPLES, n_rules=N_RULES, seed=7)
    )
    engine = UncertainDB()
    engine.register(table, name="overhead")
    # Warm the prepare cache so every timed round is steady-state.
    engine.ptk("overhead", k=K, threshold=THRESHOLD)
    return engine


def _median_seconds(engine: UncertainDB) -> float:
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        engine.ptk("overhead", k=K, threshold=THRESHOLD)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_obs_overhead_states(db):
    """Median exact-query latency per observability state."""
    was_enabled = OBS.enabled
    try:
        obs.disable()
        OBS.flight.disable()
        off = _median_seconds(db)

        obs.enable(fresh=True)
        OBS.flight.disable()
        on = _median_seconds(db)

        OBS.flight.enable()
        on_flight = _median_seconds(db)
    finally:
        OBS.flight.disable()
        OBS.flight.reset()
        if was_enabled:
            obs.enable()
        else:
            obs.disable()
            obs.reset()

    table = ExperimentTable(
        title=(
            f"Observability overhead, exact PT-k "
            f"(n={N_TUPLES}, k={K}, p={THRESHOLD}, median of {ROUNDS})"
        ),
        columns=[
            "state",
            "median_seconds",
            "overhead_vs_off_pct",
        ],
        notes=(
            "queries through UncertainDB.ptk with a warm prepare cache; "
            "flight = per-query QueryProfile into the in-memory ring "
            "(no slow log configured)"
        ),
    )
    for state, seconds in (
        ("obs-off", off),
        ("obs-on", on),
        ("obs-on+flight", on_flight),
    ):
        table.add_row(
            state,
            round(seconds, 6),
            round(100.0 * (seconds / off - 1.0), 2),
        )
    emit(table, "obs_overhead.txt")

    # Generous sanity bars (CI machines are noisy); the committed
    # results file carries the precise numbers.
    assert on_flight < off * 3.0
    assert on < off * 3.0
