"""E6 — Figure 7: scalability with database size and rule count.

Panel (a/b): tuples swept 20k -> 100k with rules at 10% of tuples;
panel (c/d): rules swept 500 -> 2,500 at 20k tuples.  k = 200, p = 0.3
(all scaled by REPRO_BENCH_SCALE).

Shape assertions from the paper: runtime and scan depth grow only
mildly with the number of tuples (depth is governed by k, not n), and
runtime grows with the number of rules but remains scalable.
"""

from benchmarks.conftest import bench_scale, emit
from repro.bench.scalability import scalability_vs_rules, scalability_vs_tuples


def test_fig7ab_tuples(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: scalability_vs_tuples(scale=scale), rounds=1, iterations=1
    )
    emit(result, "fig7_tuples.txt")
    depths = result.column("scan_depth")
    # scan depth is insensitive to n: 5x more tuples, < 2x more depth
    assert max(depths) < 2 * min(depths)
    # runtime grows sublinearly in the data growth (the pruned scan is
    # k-bound; what grows is the ranked-list sort).  Compare growth
    # factors rather than absolute times, with a 50 ms floor so the
    # assertion only bites once wall-clock dominates noise.
    runtimes = result.column("runtime_rc_lr")
    sizes = result.column("n_tuples")
    runtime_growth = max(runtimes) / max(runtimes[0], 0.05)
    size_growth = sizes[-1] / sizes[0]
    assert runtime_growth < size_growth


def test_fig7cd_rules(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: scalability_vs_rules(scale=scale), rounds=1, iterations=1
    )
    emit(result, "fig7_rules.txt")
    depths = result.column("scan_depth")
    # more rules -> lower member probabilities -> deeper scans
    assert depths[-1] >= depths[0]
