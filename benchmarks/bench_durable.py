"""Durable storage: WAL append throughput and recovery time.

Three experiments beyond the paper's figures, characterising the
`repro.durable` subsystem (docs/persistence.md):

1. **WAL append throughput per fsync policy** — records/s and MB/s of
   journalling a representative ``add`` mutation under ``off``,
   ``interval``, and ``always``.  The gap between ``interval`` and
   ``always`` is the price of per-append power-loss durability; the gap
   between ``off`` and ``interval`` is near zero by design (both flush,
   fsync is amortised).

2. **Recovery time vs table size** — wall-clock of
   :func:`repro.durable.recover.recover_state` when the state is (a) a
   pure WAL journal of n appends and (b) a columnar snapshot + empty
   WAL suffix of the same table.  The ratio is what snapshotting buys
   at restart.

3. **Bulk tuple removal** — time to ``remove_tuple`` half the table
   through :class:`~repro.durable.db.DurableDB`.  Micro-benchmark note:
   ``UncertainTable`` keeps its tuple order in an insertion-ordered
   dict, so each removal is O(1); with the previous ``list.remove``
   this sweep was O(n) per removal — O(n^2) for the bulk sweep — and
   WAL replay of large deletion batches went quadratic.  At n = 20,000
   (scale 1.0) the sweep runs in well under a second; the old
   list-based order took tens of seconds.

Scaling: sizes follow ``REPRO_BENCH_SCALE`` like the paper benchmarks.
"""

import time

from benchmarks.conftest import bench_scale, emit
from repro.bench.harness import ExperimentTable
from repro.durable import DurableDB, recover_state
from repro.durable.wal import WriteAheadLog, encode_record

SEED = 23


def _scaled(n: int) -> int:
    return max(100, int(n * bench_scale()))


def _add_record(i: int) -> dict:
    return {
        "op": "add",
        "table": "bench",
        "version": i + 1,
        "tid": f"t{i}",
        "score": float(i % 997),
        "probability": 0.25,
        "attributes": {},
    }


def test_wal_append_throughput(benchmark, tmp_path):
    n = _scaled(20_000)
    payload_bytes = len(encode_record(_add_record(0)))

    result = ExperimentTable(
        title="WAL append throughput by fsync policy",
        columns=[
            "policy", "records", "record_bytes", "seconds",
            "records_per_s", "mb_per_s",
        ],
        notes=(
            "one framed add-mutation per append; 'interval' is the "
            "serving default (fsync <= 1/50ms), 'always' pays one "
            "fsync per append"
        ),
    )

    def run(policy: str) -> float:
        wal = WriteAheadLog(tmp_path / policy, fsync=policy)
        start = time.perf_counter()
        for i in range(n):
            wal.append(_add_record(i))
        elapsed = time.perf_counter() - start
        wal.close()
        return elapsed

    benchmark.pedantic(lambda: run("off"), rounds=1, iterations=1)
    for policy in ("off", "interval", "always"):
        # 'always' fsyncs n times; keep its n small enough to finish.
        n_policy = n if policy != "always" else min(n, _scaled(2_000))
        wal = WriteAheadLog(tmp_path / f"{policy}-run", fsync=policy)
        start = time.perf_counter()
        for i in range(n_policy):
            wal.append(_add_record(i))
        elapsed = time.perf_counter() - start
        wal.close()
        result.add_row(
            policy, n_policy, payload_bytes, round(elapsed, 4),
            int(n_policy / max(elapsed, 1e-9)),
            round(n_policy * payload_bytes / max(elapsed, 1e-9) / 1e6, 2),
        )
    emit(result, "durable_wal_throughput.txt")


def _build_state(directory, n: int, snapshot: bool) -> None:
    db = DurableDB(directory, fsync="off")
    from repro.model.table import UncertainTable

    db.register(UncertainTable(name="bench"), name="bench")
    for i in range(n):
        db.add("bench", f"t{i}", float(i % 997), 0.25)
    rule_every = 50
    for r in range(n // rule_every):
        a, b = f"t{r * rule_every}", f"t{r * rule_every + 1}"
        db.add_exclusive("bench", f"r{r}", a, b)
    if snapshot:
        db.snapshot()
    db.close()


def test_recovery_time_vs_table_size(benchmark, tmp_path):
    sizes = [_scaled(2_000), _scaled(10_000), _scaled(20_000)]
    result = ExperimentTable(
        title="Recovery time: WAL replay vs snapshot, by table size",
        columns=[
            "tuples", "records", "wal_replay_s", "snapshot_load_s", "ratio",
        ],
        notes=(
            "same table recovered from (a) the mutation journal alone "
            "and (b) a columnar snapshot with a compacted WAL; ratio = "
            "replay / snapshot load"
        ),
    )

    def recover(directory) -> float:
        start = time.perf_counter()
        tables, report = recover_state(directory)
        elapsed = time.perf_counter() - start
        assert "bench" in tables
        return elapsed, report

    benchmark.pedantic(
        lambda: _build_state(tmp_path / "warmup", _scaled(1_000), False),
        rounds=1, iterations=1,
    )
    for n in sizes:
        wal_dir = tmp_path / f"wal-{n}"
        snap_dir = tmp_path / f"snap-{n}"
        _build_state(wal_dir, n, snapshot=False)
        _build_state(snap_dir, n, snapshot=True)
        replay_seconds, report = recover(wal_dir)
        snapshot_seconds, snap_report = recover(snap_dir)
        assert snap_report.replayed == 0
        result.add_row(
            n, report.replayed, round(replay_seconds, 4),
            round(snapshot_seconds, 4),
            round(replay_seconds / max(snapshot_seconds, 1e-9), 1),
        )
    emit(result, "durable_recovery_time.txt")


def test_bulk_removal_is_linear(benchmark, tmp_path):
    n = _scaled(20_000)
    directory = tmp_path / "removal"
    _build_state(directory, n, snapshot=False)
    db = DurableDB(directory, fsync="off")
    victims = [f"t{i}" for i in range(0, n, 2) if f"t{i}" in db.table("bench")]

    result = ExperimentTable(
        title="Bulk tuple removal through DurableDB (journalled)",
        columns=["tuples", "removed", "seconds", "removals_per_s"],
        notes=(
            "insertion-ordered dict makes each removal O(1); the "
            "previous list-based order made this sweep O(n^2)"
        ),
    )

    def run():
        start = time.perf_counter()
        for tid in victims:
            db.remove_tuple("bench", tid)
        return time.perf_counter() - start

    # pedantic returns the function's result for a single round.
    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    result.add_row(
        n, len(victims), round(elapsed, 4),
        int(len(victims) / max(elapsed, 1e-9)),
    )
    db.close()
    emit(result, "durable_bulk_removal.txt")
