"""Batched sampler throughput and prepare-cache amortisation.

Two experiments beyond the paper's figures:

1. **Batch speedup** — wall-clock of the vectorised batch sampler
   (:meth:`WorldSampler.sample_batch` driving
   :func:`sampled_topk_probabilities`) against the per-unit reference
   path (:meth:`WorldSampler.sample_unit` in a Python loop) on the
   synthetic workload.  The batch kernel draws coins lazily, so the
   estimates agree statistically (within Monte-Carlo error) rather
   than coin-for-coin; the batched path must be at least ~3x faster
   at budgets of 10k+ units.

2. **Prepare-cache amortisation** — repeated PT-k queries through
   :class:`UncertainDB` on an unchanged table: the first pays for
   selection/ranking/rule indexing, the rest hit the prepared-ranking
   cache.  With ``REPRO_BENCH_OBS=1`` the emitted metrics snapshot
   carries ``repro_prepare_cache_hits_total`` /
   ``repro_prepare_cache_misses_total`` (the CI smoke job asserts so).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import bench_scale, emit
from repro.bench.harness import ExperimentTable
from repro.core.rule_compression import rule_index_of_table
from repro.core.sampling import (
    SamplingConfig,
    WorldSampler,
    sampled_topk_probabilities,
)
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.query.engine import UncertainDB
from repro.query.topk import TopKQuery


@pytest.fixture(scope="module")
def workload():
    scale = bench_scale()
    config = SyntheticConfig(
        n_tuples=max(500, int(20_000 * scale)),
        n_rules=max(50, int(2_000 * scale)),
        seed=23,
    )
    k = max(5, int(200 * scale))
    budget = max(2_000, int(20_000 * scale))
    return generate_synthetic_table(config), k, budget


def _per_unit_reference(table, k, budget, seed):
    """The pre-batching sampler loop, kept as the timing baseline."""
    query = TopKQuery(k=k)
    selected = query.selected(table)
    ranked = query.ranking.rank_table(selected)
    sampler = WorldSampler(ranked, rule_index_of_table(selected), k=k)
    rng = np.random.default_rng(seed)
    counts = {}
    for _ in range(budget):
        top, _ = sampler.sample_unit(rng)
        for tid in top:
            counts[tid] = counts.get(tid, 0) + 1
    return {tid: c / budget for tid, c in counts.items()}


def test_batch_sampler_speedup(benchmark, workload):
    table, k, budget = workload
    seed = 31
    config = SamplingConfig(sample_size=budget, progressive=False, seed=seed)

    start = time.perf_counter()
    reference = _per_unit_reference(table, k, budget, seed)
    per_unit_seconds = time.perf_counter() - start

    batched_result = benchmark.pedantic(
        lambda: sampled_topk_probabilities(table, TopKQuery(k=k), config),
        rounds=1,
        iterations=1,
    )
    start = time.perf_counter()
    sampled_topk_probabilities(table, TopKQuery(k=k), config)
    batched_seconds = time.perf_counter() - start

    speedup = per_unit_seconds / max(batched_seconds, 1e-9)
    result = ExperimentTable(
        title="Batched vs per-unit sampling (same budget, same quality)",
        columns=[
            "budget", "k", "per_unit_s", "batched_s", "speedup",
        ],
        notes=f"n={len(table)}, seed={seed}",
    )
    result.add_row(
        budget, k, round(per_unit_seconds, 4), round(batched_seconds, 4),
        round(speedup, 2),
    )
    emit(result, "sampling_batch_speedup.txt")

    # Same quality: every estimate within Monte-Carlo error of the
    # per-unit reference.  Both runs are independent draws of the same
    # estimator, so the difference has variance 2 p(1-p)/budget; a
    # 5-sigma band keeps the whole-table check deterministic-safe.
    for tid in set(batched_result.estimates) | set(reference):
        got = batched_result.estimates.get(tid, 0.0)
        want = reference.get(tid, 0.0)
        p = max((got + want) / 2, 2.0 / budget)
        band = 5.0 * (2.0 * p * (1.0 - p) / budget) ** 0.5
        assert abs(got - want) <= band, (tid, got, want, band)
    if budget >= 10_000:
        assert speedup >= 3.0, f"batched sampler only {speedup:.1f}x faster"
    else:
        assert speedup >= 1.0, f"batched sampler slower ({speedup:.2f}x)"


def test_prepare_cache_amortisation(benchmark, workload):
    table, k, _ = workload
    db = UncertainDB()
    name = db.register(table)
    threshold = 0.3
    repeats = 8

    start = time.perf_counter()
    first = db.ptk(name, k=k, threshold=threshold)
    first_seconds = time.perf_counter() - start

    def cached_round():
        return db.ptk(name, k=k, threshold=threshold)

    benchmark.pedantic(cached_round, rounds=1, iterations=1)
    start = time.perf_counter()
    for _ in range(repeats):
        answer = cached_round()
    warm_seconds = (time.perf_counter() - start) / repeats

    stats = db.prepare_cache.stats()
    result = ExperimentTable(
        title="Prepare-cache amortisation (repeated PT-k, unchanged table)",
        columns=[
            "n", "k", "first_query_s", "warm_query_s",
            "cache_hits", "cache_misses",
        ],
        notes=f"threshold={threshold}, repeats={repeats}",
    )
    result.add_row(
        len(table), k, round(first_seconds, 4), round(warm_seconds, 4),
        stats.hits, stats.misses,
    )
    emit(result, "sampling_batch_prepare_cache.txt")

    assert answer.answers == first.answers
    assert answer.probabilities == first.probabilities
    assert stats.misses == 1
    assert stats.hits >= repeats
