"""E3 — Figure 4: scan depth, sample length and answer size.

Four panels, one per swept parameter: expected membership probability,
rule complexity, k, and the probability threshold p.  For each panel the
series are the exact algorithm's scan depth, the sampler's average
sample length, and the answer-set size — the same series the paper
plots.

Shape assertions encode the paper's qualitative findings (Section 6.2):
scan depth is a small fraction of the table; the answer set peaks at
membership probability ~0.5; depth and answers grow with k; answers
shrink sharply with p while depth shrinks slower.
"""

from benchmarks.conftest import emit, emit_chart
from repro.bench.sweeps import figure4_view


def _panel(benchmark, sweep_cache, axis: str):
    sweep = benchmark.pedantic(
        lambda: sweep_cache(axis), rounds=1, iterations=1
    )
    view = figure4_view(sweep)
    emit(view, f"fig4_{axis}.txt")
    emit_chart(
        sweep,
        x=axis,
        series=["scan_depth", "sample_length", "answer_size"],
        filename=f"fig4_{axis}.txt",
    )
    return sweep


def test_fig4a_membership_probability(benchmark, sweep_cache, sweep_settings):
    sweep = _panel(benchmark, sweep_cache, "membership")
    rows = sweep.as_dicts()
    n = sweep_settings.scaled(sweep_settings.n_tuples)
    # pruning keeps the scan shallow everywhere
    assert all(row["scan_depth"] < n / 2 for row in rows)
    # the answer set is largest at maximum uncertainty (mu ~ 0.5) and
    # smallest when tuples are near-certain (paper Fig 4a)
    by_mu = {row["membership"]: row["answer_size"] for row in rows}
    assert by_mu[0.5] >= by_mu[0.9]


def test_fig4b_rule_complexity(benchmark, sweep_cache):
    sweep = _panel(benchmark, sweep_cache, "rule_complexity")
    rows = sweep.as_dicts()
    # longer rules -> smaller member probabilities -> deeper scans
    assert rows[-1]["scan_depth"] >= rows[0]["scan_depth"] * 0.8


def test_fig4c_k(benchmark, sweep_cache):
    sweep = _panel(benchmark, sweep_cache, "k")
    depths = [row["scan_depth"] for row in sweep.as_dicts()]
    answers = [row["answer_size"] for row in sweep.as_dicts()]
    # both grow (roughly linearly) with k
    assert depths == sorted(depths)
    assert answers == sorted(answers)
    # sample length tracks scan depth closely (paper's observation)
    for row in sweep.as_dicts():
        assert row["sample_length"] < 3 * row["scan_depth"] + 50


def test_fig4d_threshold(benchmark, sweep_cache):
    sweep = _panel(benchmark, sweep_cache, "threshold")
    rows = sweep.as_dicts()
    answers = [row["answer_size"] for row in rows]
    depths = [row["scan_depth"] for row in rows]
    # answer size drops sharply as p grows
    assert answers == sorted(answers, reverse=True)
    assert answers[-1] < answers[0]
    # scan depth decreases slower than the answer set (paper Fig 4d)
    if answers[0] > 0 and answers[-1] > 0 and depths[0] > 0:
        answer_drop = answers[0] / max(answers[-1], 1)
        depth_drop = depths[0] / max(depths[-1], 1)
        assert depth_drop <= answer_drop + 1e-9
