"""E4 — Figure 5: runtime of RC / RC+AR / RC+LR / sampling.

Same four sweeps as Figure 4 (the underlying measurements are shared
through the session cache), projected onto the runtime columns.

Shape assertions: reordering helps (RC+LR never materially slower than
RC), lazy beats aggressive in DP-extension cost everywhere, sampling's
runtime is comparatively flat, and at large k sampling overtakes the
exact algorithm (the paper's crossover justifying both algorithms).
"""

import pytest

from benchmarks.conftest import bench_scale, emit, emit_chart
from repro.bench.sweeps import figure5_view

#: Runtime-shape assertions need workloads big enough that wall-clock
#: differences dominate noise; below this scale only the (deterministic)
#: extension-count ordering is asserted.
MIN_SCALE_FOR_RUNTIME_SHAPES = 0.25


def _panel(benchmark, sweep_cache, axis: str):
    sweep = benchmark.pedantic(
        lambda: sweep_cache(axis), rounds=1, iterations=1
    )
    emit(figure5_view(sweep), f"fig5_{axis}.txt")
    emit_chart(
        sweep,
        x=axis,
        series=[
            "runtime_rc",
            "runtime_rc_ar",
            "runtime_rc_lr",
            "runtime_sampling",
        ],
        filename=f"fig5_{axis}.txt",
        log_y=True,
    )
    return sweep


def _assert_reordering_extension_ordering(sweep):
    for row in sweep.as_dicts():
        assert row["ext_rc_lr"] <= row["ext_rc_ar"] <= row["ext_rc"]


def test_fig5a_membership_probability(benchmark, sweep_cache):
    sweep = _panel(benchmark, sweep_cache, "membership")
    _assert_reordering_extension_ordering(sweep)


def test_fig5b_rule_complexity(benchmark, sweep_cache):
    sweep = _panel(benchmark, sweep_cache, "rule_complexity")
    _assert_reordering_extension_ordering(sweep)


def test_fig5c_k(benchmark, sweep_cache):
    sweep = _panel(benchmark, sweep_cache, "k")
    _assert_reordering_extension_ordering(sweep)
    if bench_scale() < MIN_SCALE_FOR_RUNTIME_SHAPES:
        pytest.skip("runtime shapes need REPRO_BENCH_SCALE >= 0.25")
    rows = sweep.as_dicts()
    # paper: exact (RC+LR) wins at small k, sampling wins at large k
    small, large = rows[0], rows[-1]
    assert small["runtime_rc_lr"] < small["runtime_sampling"]
    assert large["runtime_sampling"] < large["runtime_rc"]
    # sampling runtime is the most stable across the sweep
    lr = [row["runtime_rc_lr"] for row in rows]
    sampling = [row["runtime_sampling"] for row in rows]
    assert (max(sampling) / max(min(sampling), 1e-9)) < (
        max(lr) / max(min(lr), 1e-9)
    )


def test_fig5d_threshold(benchmark, sweep_cache):
    sweep = _panel(benchmark, sweep_cache, "threshold")
    _assert_reordering_extension_ordering(sweep)
