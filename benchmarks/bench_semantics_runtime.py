"""E9 — Challenge 2: PT-k's O(k) state vs rank-sensitive materialization.

The paper motivates the PT-k algorithms by arguing that U-TopK /
U-KRanks-style processing must materialize a number of *states*
exponential in the scan depth, while PT-k only ever keeps a (k+1)-entry
subset-probability vector.  This benchmark makes that argument
quantitative on one workload:

* the state-materializing U-TopK scan's peak live-state count,
* the PT-k engine's state (k+1) and its total DP extensions,
* wall-clock for PT-k, best-first U-TopK, and U-KRanks.
"""

import pytest

from benchmarks.conftest import bench_scale, emit
from repro.bench.harness import ExperimentTable, measure
from repro.core.exact import exact_ptk_query
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.query.topk import TopKQuery
from repro.semantics.statespace import utopk_by_state_scan
from repro.semantics.ukranks import ukranks_query
from repro.semantics.utopk import utopk_query


@pytest.fixture(scope="module")
def workload():
    scale = max(bench_scale(), 0.1)
    return generate_synthetic_table(
        SyntheticConfig(
            n_tuples=max(300, int(4_000 * scale)),
            n_rules=max(30, int(400 * scale)),
            seed=23,
        )
    )


def test_state_materialization_vs_ptk(benchmark, workload):
    def run() -> ExperimentTable:
        result = ExperimentTable(
            title="Challenge 2: state materialization vs PT-k's O(k) state",
            columns=[
                "k",
                "utopk_peak_states",
                "ptk_state_size",
                "ptk_extensions",
                "runtime_ptk",
                "runtime_utopk",
                "runtime_ukranks",
            ],
            notes=f"table={workload.name}, n={len(workload)}",
        )
        for k in (2, 4, 8, 16):
            query = TopKQuery(k=k)
            ptk, ptk_seconds = measure(
                lambda q=query: exact_ptk_query(workload, q, 0.3)
            )
            scan = utopk_by_state_scan(workload, query)
            _, utopk_seconds = measure(lambda q=query: utopk_query(workload, q))
            _, ukranks_seconds = measure(
                lambda q=query: ukranks_query(workload, q)
            )
            result.add_row(
                k,
                scan.peak_states,
                k + 1,
                ptk.stats.subset_extensions,
                ptk_seconds,
                utopk_seconds,
                ukranks_seconds,
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, "semantics_states.txt")
    rows = result.as_dicts()
    # the gap widens with k (the exponential-vs-linear separation) ...
    ratios = [
        row["utopk_peak_states"] / row["ptk_state_size"] for row in rows
    ]
    assert ratios[-1] > ratios[0]
    # ... and at the largest k the frontier dwarfs PT-k's state
    assert rows[-1]["utopk_peak_states"] > 100 * rows[-1]["ptk_state_size"]


def test_consistency_of_all_semantics(workload):
    # sanity: both U-TopK implementations agree on this workload
    query = TopKQuery(k=8)
    scan = utopk_by_state_scan(workload, query)
    best_first = utopk_query(workload, query)
    assert scan.answer.probability == pytest.approx(
        best_first.probability, rel=1e-9
    )
