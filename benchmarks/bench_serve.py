"""Serving layer: closed-loop throughput/latency, coalescing on vs off.

Drives the *entire* service stack — routing, admission control, the
request coalescer, and the batch executor — through the in-process
:class:`~repro.serve.client.LoopbackTransport` (no sockets), with 1, 8,
and 32 closed-loop clients issuing mixed-k PT-k queries against one
table.  Each concurrency level runs twice: coalescing window on (2 ms)
and off (0 ms, every request dispatches solo), so the table isolates
what micro-batching buys.

What to look for:

* ``mean_batch`` — without a window it pins at 1.0; with one it grows
  with concurrency (the whole burst shares one prepared ranking).
* ``prepare_misses`` — stays at 1 per run either way (the
  ``PrepareCache`` absorbs repeat prepares even without coalescing);
  the window's win is batching the *scans*, not just the prepares.
* p50 vs p99 under load — admission keeps the queue bounded, so p99
  grows with concurrency but stays finite.

Host caveats (as in ``bench_parallel.py``): absolute numbers depend on
the machine and the GIL — the executor threads run CPU-bound Python, so
throughput does not scale linearly with ``max_inflight``; the committed
results were produced on a shared CI-class host and are indicative of
*shape*, not of a tuned deployment.

Scaling: ``REPRO_BENCH_SCALE`` scales the table size; the request count
per concurrency level is pinned so percentiles stay comparable.
"""

from __future__ import annotations

import threading
import time

import pytest

from benchmarks.conftest import bench_scale, emit
from repro import obs
from repro.bench.harness import ExperimentTable
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.obs import OBS, catalogued
from repro.parallel import available_cpus
from repro.query.engine import UncertainDB
from repro.serve import (
    LoopbackTransport,
    ServeApp,
    ServeClient,
    ServeClientError,
    ServeConfig,
)

K_BASE = 20
THRESHOLD = 0.3
SEED = 23
CLIENT_COUNTS = (1, 8, 32)
TOTAL_REQUESTS = 192  # divisible by every client count


def _make_db():
    n_tuples = max(1_000, int(10_000 * bench_scale()))
    table = generate_synthetic_table(
        SyntheticConfig(
            n_tuples=n_tuples, n_rules=n_tuples // 10, seed=SEED
        )
    )
    db = UncertainDB()
    name = db.register(table)
    return db, name, n_tuples


def _percentile(sorted_values, fraction):
    index = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def _closed_loop(db, name, window_ms, n_clients):
    """Run one closed loop; returns (latencies, wall, batch/cache stats)."""
    per_client = TOTAL_REQUESTS // n_clients
    app = ServeApp(
        db,
        ServeConfig(
            window_ms=window_ms,
            max_batch=64,
            max_inflight=4,
            max_queue=256,  # the closed loop must never see a 429
            enable_obs=False,
        ),
    )
    misses_before = db.prepare_cache.stats().misses
    latencies = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients + 1)

    with LoopbackTransport(app) as transport:
        client = ServeClient(transport)

        def worker(worker_index):
            local = []
            barrier.wait()
            for i in range(per_client):
                k = K_BASE + ((worker_index + i) % 4)  # mixed-k batches
                start = time.perf_counter()
                client.query(name, k=k, threshold=THRESHOLD)
                local.append(time.perf_counter() - start)
            with lock:
                latencies.extend(local)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        wall_start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        coalescer = app.coalescer.stats()

    misses = db.prepare_cache.stats().misses - misses_before
    return latencies, wall, coalescer, misses


@pytest.mark.parametrize("window_ms", [2.0, 0.0], ids=["coalesce", "solo"])
def test_serve_closed_loop(window_ms):
    db, name, n_tuples = _make_db()
    db.ptk(name, k=K_BASE, threshold=THRESHOLD)  # warm the prepare cache

    result = ExperimentTable(
        title=(
            "Serving closed loop: "
            + ("coalescing window 2 ms" if window_ms else "coalescing off")
        ),
        columns=[
            "clients", "requests", "wall_s", "qps",
            "p50_ms", "p99_ms", "mean_batch", "prepare_misses",
        ],
        notes=(
            f"n={n_tuples}, k={K_BASE}..{K_BASE + 3}, p={THRESHOLD}, "
            f"seed={SEED}; loopback transport (no sockets), "
            f"max_inflight=4 on {available_cpus()} usable core(s); "
            "CPU-bound Python under the GIL — shapes, not absolutes"
        ),
    )
    for n_clients in CLIENT_COUNTS:
        latencies, wall, coalescer, misses = _closed_loop(
            db, name, window_ms, n_clients
        )
        assert len(latencies) == TOTAL_REQUESTS
        ordered = sorted(latencies)
        result.add_row(
            n_clients,
            TOTAL_REQUESTS,
            round(wall, 3),
            round(TOTAL_REQUESTS / max(wall, 1e-9), 1),
            round(_percentile(ordered, 0.50) * 1000, 2),
            round(_percentile(ordered, 0.99) * 1000, 2),
            round(coalescer["mean_batch_size"], 2),
            misses,
        )
        # The prepare cache was warmed above: no run re-prepares.
        assert misses == 0, f"{misses} unexpected prepares"
        if window_ms == 0.0:
            assert coalescer["mean_batch_size"] == 1.0

    emit(
        result,
        "serve_closed_loop_"
        + ("coalesce" if window_ms else "solo")
        + ".txt",
    )


# ----------------------------------------------------------------------
# Skewed-cost closed loop: FIFO vs cost-ordered scheduling
# ----------------------------------------------------------------------
SKEW_CLIENTS = 12
SKEW_ROUNDS = 8
SKEW_HEAVY_EVERY = 6  # 2 of the 12 clients issue a heavy scan per round
SKEW_CHEAP_K = 5
#: Cheap-query deadline: comfortably covers the cheap work in a batch,
#: but one in-batch heavy scan ahead of a cheap item blows it.
SKEW_DEADLINE_MS = 200.0


def _skewed_loop(db, name, scheduler, heavy_k):
    """Lockstep closed loop: each round, all clients issue together and
    the coalescer forms one mixed batch (2 heavy scans without
    deadlines, 10 cheap scans with tight ones).  Every client waits for
    its response before the next round, so the queue is empty between
    rounds and the measured latencies isolate exactly what the
    scheduler controls — the execution order *within* a batch."""
    app = ServeApp(
        db,
        ServeConfig(
            window_ms=20.0,  # wide enough to coalesce the whole round
            max_batch=64,
            max_inflight=1,
            max_queue=256,
            scheduler=scheduler,
            flight_ring=512,
            slow_ms=10_000.0,  # keep the slow log quiet for timing
        ),
    )
    OBS.flight.reset()
    degraded_before = catalogued("repro_serve_degraded_preexec_total").value()
    cheap_latencies, heavy_latencies = [], []
    expired = [0]
    lock = threading.Lock()
    round_barrier = threading.Barrier(SKEW_CLIENTS)

    with LoopbackTransport(app) as transport:
        client = ServeClient(transport)

        def worker(worker_index):
            local_cheap, local_heavy, local_expired = [], [], 0
            for round_index in range(SKEW_ROUNDS):
                round_barrier.wait()
                # the heavy role rotates through the clients
                heavy = (
                    (worker_index + round_index) % SKEW_HEAVY_EVERY == 0
                )
                start = time.perf_counter()
                try:
                    if heavy:
                        client.query(name, k=heavy_k, threshold=THRESHOLD)
                    else:
                        client.query(
                            name, k=SKEW_CHEAP_K, threshold=THRESHOLD,
                            deadline_ms=SKEW_DEADLINE_MS,
                        )
                except ServeClientError as exc:
                    if exc.status != 504:
                        raise
                    local_expired += 1
                elapsed = time.perf_counter() - start
                (local_heavy if heavy else local_cheap).append(elapsed)
            with lock:
                cheap_latencies.extend(local_cheap)
                heavy_latencies.extend(local_heavy)
                expired[0] += local_expired

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(SKEW_CLIENTS)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        profiles = OBS.flight.recent(limit=512)

    degraded = (
        catalogued("repro_serve_degraded_preexec_total").value()
        - degraded_before
    )
    return {
        "cheap": sorted(cheap_latencies),
        "heavy": sorted(heavy_latencies),
        "expired": expired[0],
        "degraded_preexec": int(degraded),
        "wall": wall,
        "profiles": profiles,
    }


def _post_deadline_exact(profiles):
    """Exact executions that started or ran past their deadline."""
    late = []
    for profile in profiles:
        remaining = profile.get("deadline_remaining_ms")
        if profile.get("mode") != "exact" or remaining is None:
            continue
        if profile.get("outcome") == "deadline-expired":
            continue  # failed fast, never executed
        if remaining < 0 or profile["actual_seconds"] * 1000.0 > remaining:
            late.append(profile)
    return late


def test_serve_skewed_cost_scheduler():
    """FIFO vs cost-ordered dispatch under a skewed-cost closed loop.

    Each batch mixes two expensive exact scans (no deadline) with ten
    cheap scans carrying a tight deadline.  Under FIFO the cheap
    queries execute behind the expensive head-of-line scans — after
    their deadline has already passed; the cost scheduler reorders them
    ahead and re-checks each deadline pre-execution, so no exact scan
    ever starts (or runs) past its deadline.
    """
    db, name, n_tuples = _make_db()
    heavy_k = max(130, int(400 * bench_scale()))
    db.ptk(name, k=heavy_k, threshold=THRESHOLD)  # warm the prepare cache

    result = ExperimentTable(
        title="Skewed-cost closed loop: FIFO vs cost-ordered scheduling",
        columns=[
            "scheduler", "cheap_p50_ms", "cheap_p99_ms", "heavy_p99_ms",
            "expired_504", "degraded_preexec", "late_exact", "wall_s",
        ],
        notes=(
            f"n={n_tuples}, heavy k={heavy_k} (2 per batch of "
            f"{SKEW_CLIENTS}), cheap k={SKEW_CHEAP_K} with "
            f"{SKEW_DEADLINE_MS:.0f} ms deadline, p={THRESHOLD}, "
            f"{SKEW_CLIENTS} lockstep closed-loop clients x "
            f"{SKEW_ROUNDS} rounds; loopback transport, max_inflight=1 "
            f"on {available_cpus()} usable core(s); late_exact = exact "
            "executions started/run past deadline (flight profiles)"
        ),
    )
    runs = {}
    try:
        for scheduler in ("fifo", "cost"):
            run = _skewed_loop(db, name, scheduler, heavy_k)
            runs[scheduler] = run
            late = _post_deadline_exact(run["profiles"])
            result.add_row(
                scheduler,
                round(_percentile(run["cheap"], 0.50) * 1000, 2),
                round(_percentile(run["cheap"], 0.99) * 1000, 2),
                round(_percentile(run["heavy"], 0.99) * 1000, 2),
                run["expired"],
                run["degraded_preexec"],
                len(late),
                round(run["wall"], 3),
            )
    finally:
        obs.disable()
        obs.reset()
        OBS.flight.disable()
        OBS.flight.reset()

    # The tentpole claims, asserted: the cost scheduler never executes
    # an exact scan past its deadline, FIFO demonstrably does, and the
    # reordering improves cheap-query tail latency.
    assert not _post_deadline_exact(runs["cost"]["profiles"])
    assert _post_deadline_exact(runs["fifo"]["profiles"])
    fifo_p99 = _percentile(runs["fifo"]["cheap"], 0.99)
    cost_p99 = _percentile(runs["cost"]["cheap"], 0.99)
    assert cost_p99 < fifo_p99, (
        f"cost p99 {cost_p99 * 1000:.1f} ms not better than "
        f"FIFO p99 {fifo_p99 * 1000:.1f} ms"
    )

    emit(result, "serve_scheduler_skew.txt")
