"""Serving layer: closed-loop throughput/latency, coalescing on vs off.

Drives the *entire* service stack — routing, admission control, the
request coalescer, and the batch executor — through the in-process
:class:`~repro.serve.client.LoopbackTransport` (no sockets), with 1, 8,
and 32 closed-loop clients issuing mixed-k PT-k queries against one
table.  Each concurrency level runs twice: coalescing window on (2 ms)
and off (0 ms, every request dispatches solo), so the table isolates
what micro-batching buys.

What to look for:

* ``mean_batch`` — without a window it pins at 1.0; with one it grows
  with concurrency (the whole burst shares one prepared ranking).
* ``prepare_misses`` — stays at 1 per run either way (the
  ``PrepareCache`` absorbs repeat prepares even without coalescing);
  the window's win is batching the *scans*, not just the prepares.
* p50 vs p99 under load — admission keeps the queue bounded, so p99
  grows with concurrency but stays finite.

Host caveats (as in ``bench_parallel.py``): absolute numbers depend on
the machine and the GIL — the executor threads run CPU-bound Python, so
throughput does not scale linearly with ``max_inflight``; the committed
results were produced on a shared CI-class host and are indicative of
*shape*, not of a tuned deployment.

Scaling: ``REPRO_BENCH_SCALE`` scales the table size; the request count
per concurrency level is pinned so percentiles stay comparable.
"""

from __future__ import annotations

import threading
import time

import pytest

from benchmarks.conftest import bench_scale, emit
from repro.bench.harness import ExperimentTable
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.parallel import available_cpus
from repro.query.engine import UncertainDB
from repro.serve import LoopbackTransport, ServeApp, ServeClient, ServeConfig

K_BASE = 20
THRESHOLD = 0.3
SEED = 23
CLIENT_COUNTS = (1, 8, 32)
TOTAL_REQUESTS = 192  # divisible by every client count


def _make_db():
    n_tuples = max(1_000, int(10_000 * bench_scale()))
    table = generate_synthetic_table(
        SyntheticConfig(
            n_tuples=n_tuples, n_rules=n_tuples // 10, seed=SEED
        )
    )
    db = UncertainDB()
    name = db.register(table)
    return db, name, n_tuples


def _percentile(sorted_values, fraction):
    index = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def _closed_loop(db, name, window_ms, n_clients):
    """Run one closed loop; returns (latencies, wall, batch/cache stats)."""
    per_client = TOTAL_REQUESTS // n_clients
    app = ServeApp(
        db,
        ServeConfig(
            window_ms=window_ms,
            max_batch=64,
            max_inflight=4,
            max_queue=256,  # the closed loop must never see a 429
            enable_obs=False,
        ),
    )
    misses_before = db.prepare_cache.stats().misses
    latencies = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients + 1)

    with LoopbackTransport(app) as transport:
        client = ServeClient(transport)

        def worker(worker_index):
            local = []
            barrier.wait()
            for i in range(per_client):
                k = K_BASE + ((worker_index + i) % 4)  # mixed-k batches
                start = time.perf_counter()
                client.query(name, k=k, threshold=THRESHOLD)
                local.append(time.perf_counter() - start)
            with lock:
                latencies.extend(local)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        wall_start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        coalescer = app.coalescer.stats()

    misses = db.prepare_cache.stats().misses - misses_before
    return latencies, wall, coalescer, misses


@pytest.mark.parametrize("window_ms", [2.0, 0.0], ids=["coalesce", "solo"])
def test_serve_closed_loop(window_ms):
    db, name, n_tuples = _make_db()
    db.ptk(name, k=K_BASE, threshold=THRESHOLD)  # warm the prepare cache

    result = ExperimentTable(
        title=(
            "Serving closed loop: "
            + ("coalescing window 2 ms" if window_ms else "coalescing off")
        ),
        columns=[
            "clients", "requests", "wall_s", "qps",
            "p50_ms", "p99_ms", "mean_batch", "prepare_misses",
        ],
        notes=(
            f"n={n_tuples}, k={K_BASE}..{K_BASE + 3}, p={THRESHOLD}, "
            f"seed={SEED}; loopback transport (no sockets), "
            f"max_inflight=4 on {available_cpus()} usable core(s); "
            "CPU-bound Python under the GIL — shapes, not absolutes"
        ),
    )
    for n_clients in CLIENT_COUNTS:
        latencies, wall, coalescer, misses = _closed_loop(
            db, name, window_ms, n_clients
        )
        assert len(latencies) == TOTAL_REQUESTS
        ordered = sorted(latencies)
        result.add_row(
            n_clients,
            TOTAL_REQUESTS,
            round(wall, 3),
            round(TOTAL_REQUESTS / max(wall, 1e-9), 1),
            round(_percentile(ordered, 0.50) * 1000, 2),
            round(_percentile(ordered, 0.99) * 1000, 2),
            round(coalescer["mean_batch_size"], 2),
            misses,
        )
        # The prepare cache was warmed above: no run re-prepares.
        assert misses == 0, f"{misses} unexpected prepares"
        if window_ms == 0.0:
            assert coalescer["mean_batch_size"] == 1.0

    emit(
        result,
        "serve_closed_loop_"
        + ("coalesce" if window_ms else "solo")
        + ".txt",
    )
