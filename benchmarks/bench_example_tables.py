"""E1 — Tables 2 and 3 of the paper: the panda running example.

Regenerates the possible-world table and the exact top-2 probabilities,
and asserts the values the paper prints (this benchmark doubles as a
hard regression gate on the worked example).
"""

import pytest

from benchmarks.conftest import emit
from repro.bench.comparison import panda_probabilities_table, panda_worlds_table
from repro.datagen.sensors import PANDA_TOP2_PROBABILITIES, panda_table
from repro.core.exact import exact_ptk_query
from repro.query.topk import TopKQuery


def test_table2_possible_worlds(benchmark):
    table = benchmark.pedantic(panda_worlds_table, rounds=1, iterations=1)
    emit(table, "table2_worlds.txt")
    assert len(table.rows) == 12
    assert sum(row[1] for row in table.rows) == pytest.approx(1.0)


def test_table3_top2_probabilities(benchmark):
    table = benchmark.pedantic(
        panda_probabilities_table, rounds=1, iterations=1
    )
    emit(table, "table3_probabilities.txt")
    values = dict(table.rows)
    for tid, expected in PANDA_TOP2_PROBABILITIES.items():
        assert values[tid] == pytest.approx(expected, abs=1e-9)


def test_example1_pt2_query(benchmark):
    answer = benchmark.pedantic(
        lambda: exact_ptk_query(panda_table(), TopKQuery(k=2), 0.35),
        rounds=5,
        iterations=1,
    )
    assert answer.answer_set == {"R2", "R3", "R5"}
