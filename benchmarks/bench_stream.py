"""E13 — streaming PT-k: per-arrival latency over sliding windows.

Measures the monitored sliding window on the tracking stream: arrivals
per second for growing window sizes, plus answer churn.  The per-arrival
cost is one pruned PT-k evaluation over the window, so it should track
k (the pruned scan depth), not the window size — the streaming analogue
of Figure 7.
"""

from benchmarks.conftest import bench_scale, emit
from repro.bench.harness import ExperimentTable, measure
from repro.datagen.tracking import TrackingConfig, detection_stream
from repro.stream import PTKMonitor, SlidingWindowPTK


def test_streaming_throughput(benchmark):
    scale = max(bench_scale(), 0.2)
    config = TrackingConfig(
        n_objects=int(30 * scale) + 5,
        n_ticks=int(120 * scale) + 20,
        seed=8,
    )
    arrivals = list(detection_stream(config))
    k = 5

    def run() -> ExperimentTable:
        result = ExperimentTable(
            title=f"Streaming PT-k latency (k={k}, p=0.45)",
            columns=[
                "window_size",
                "arrivals",
                "arrivals_per_second",
                "answer_churn",
                "final_answer_size",
            ],
            notes=f"tracking stream: {len(arrivals)} detections",
        )
        for window_size in (100, 200, 400, 800):
            window = SlidingWindowPTK(
                k=k, threshold=0.45, window_size=window_size
            )
            monitor = PTKMonitor(window)

            def feed():
                for detection, tag in arrivals:
                    monitor.observe(detection, rule_tag=tag)

            _, seconds = measure(feed)
            result.add_row(
                window_size,
                len(arrivals),
                len(arrivals) / max(seconds, 1e-9),
                monitor.churn(),
                len(monitor.current_answer),
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, "stream_throughput.txt")
    rows = result.as_dicts()
    # the per-arrival cost is k-bound: throughput degrades far less than
    # the 8x window growth
    rates = [row["arrivals_per_second"] for row in rows]
    assert min(rates) > max(rates) / 8
    # every configuration sustains a usable rate
    assert all(rate > 50 for rate in rates)
