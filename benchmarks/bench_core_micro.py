"""Micro-benchmarks of the core primitives (proper pytest-benchmark use).

Not a paper figure: these track the per-operation costs that the macro
experiments are built from — one DP extension, one sample unit, one full
PT-k query at the default configuration — so performance regressions in
the primitives are caught independently of workload shape.
"""

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.core.exact import (
    ExactVariant,
    exact_ptk_query,
    exact_topk_probabilities,
)
from repro.query.planner import LatencyEstimate
from repro.query.prepare import prepare_ranking
from repro.core.rule_compression import rule_index_of_table
from repro.core.sampling import WorldSampler
from repro.core.subset_probability import SubsetProbabilityVector
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.query.topk import TopKQuery
from repro.serve.scheduler import CostScheduler, ExactTask


@pytest.fixture(scope="module")
def workload():
    scale = bench_scale()
    table = generate_synthetic_table(
        SyntheticConfig(
            n_tuples=max(500, int(20_000 * scale)),
            n_rules=max(50, int(2_000 * scale)),
            seed=7,
        )
    )
    k = max(10, int(200 * scale))
    return table, k


def test_subset_probability_extension(benchmark):
    vector = SubsetProbabilityVector(201)
    benchmark(vector.extend, 0.5)


def test_subset_probability_thousand_extensions(benchmark):
    def run():
        vector = SubsetProbabilityVector(201)
        for _ in range(1000):
            vector.extend(0.5)

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_sample_unit_generation(benchmark, workload):
    table, k = workload
    query = TopKQuery(k=k)
    ranked = query.ranking.rank_table(table)
    sampler = WorldSampler(ranked, rule_index_of_table(table), k=k)
    rng = np.random.default_rng(0)
    benchmark(sampler.sample_unit, rng)


@pytest.mark.parametrize("variant", list(ExactVariant), ids=lambda v: v.value)
def test_exact_query_variants(benchmark, workload, variant):
    table, k = workload
    query = TopKQuery(k=k)
    benchmark.pedantic(
        lambda: exact_ptk_query(table, query, 0.3, variant=variant),
        rounds=3,
        iterations=1,
    )


def test_full_scan_columnar(benchmark, workload):
    """Full-scan mode on the vectorized columnar kernel."""
    table, k = workload
    query = TopKQuery(k=k)
    prepared = prepare_ranking(table, query)
    prepared.columns  # columnarisation is cached; time only the scan
    benchmark.pedantic(
        lambda: exact_topk_probabilities(
            table, query, prepared=prepared, columnar=True
        ),
        rounds=3,
        iterations=1,
    )


def test_full_scan_scalar(benchmark, workload):
    """Full-scan mode on the retained scalar oracle (the old path)."""
    table, k = workload
    query = TopKQuery(k=k)
    prepared = prepare_ranking(table, query)
    benchmark.pedantic(
        lambda: exact_topk_probabilities(
            table, query, prepared=prepared, columnar=False
        ),
        rounds=3,
        iterations=1,
    )


def test_scheduler_cost_order(benchmark):
    """Order + pre-execution re-check of one large mixed-cost batch.

    The scheduler sits on the serving hot path in front of every exact
    scan; this pins the pure-python cost of sorting a 512-item batch by
    predicted cost and re-deciding each item against its deadline.
    """
    rng = np.random.default_rng(13)
    seconds = rng.gamma(shape=0.8, scale=0.02, size=512)
    tasks = [
        ExactTask(
            position=i,
            estimate=LatencyEstimate(
                depth=50 + i,
                exact_seconds=float(seconds[i]),
                sampled_seconds_per_unit=1e-6,
                expected_unit_length=10.0,
            ),
        )
        for i in range(512)
    ]
    scheduler = CostScheduler()

    def run():
        runnable = 0
        for task in scheduler.order(tasks):
            decision = scheduler.decide(
                0.050, task.estimate.exact_seconds, 0.5
            )
            if decision == "run":
                runnable += 1
        return runnable

    assert run() > 0
    benchmark(run)


def test_dynamic_delta_refresh(benchmark):
    """One write→read cycle of the incremental PT-k index.

    The repro.dynamic serving hot path: apply one probability-update
    delta (column surgery + clean-watermark drop) and serve the
    prune-bounded answer (Theorem-5 stop depth).  The mutated tuple
    sits deep in the ranking — the common case — so the read re-prices
    only the answer prefix, never the mutation's suffix.
    """
    from repro.dynamic import DynamicIndex
    from repro.dynamic.delta import TableDelta

    scale = bench_scale()
    table = generate_synthetic_table(
        SyntheticConfig(
            n_tuples=max(500, int(20_000 * scale)),
            n_rules=max(50, int(2_000 * scale)),
            seed=23,
        )
    )
    k = max(10, int(200 * scale))
    index = DynamicIndex.build("bench", table, cap=k)
    index.scan_answer(k, 0.3)  # settle the lazy build once
    tid = next(
        t.tid
        for t in reversed(table.ranked_tuples())
        if table.is_independent(t.tid)
    )
    state = {"probability": 0.4}

    def cycle():
        state["probability"] = 1.0 - state["probability"]
        previous = table.version
        table.update_probability(tid, state["probability"])
        index.apply(
            TableDelta(
                table="bench",
                op="update",
                previous_version=previous,
                version=table.version,
                tid=tid,
                probability=state["probability"],
            )
        )
        return index.scan_answer(k, 0.3)

    benchmark.pedantic(cycle, rounds=30, iterations=1)
