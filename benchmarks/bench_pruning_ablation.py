"""E8 — Section 4.4 ablation: contribution of each pruning rule.

Runs the default PT-k query with pruning rules enabled incrementally
(none -> T3 -> T3+T4 -> T3+T4+T5 -> all) and reports scan depth,
evaluated tuples and runtime for each step.

Shape assertions: the answer set never changes (pruning is sound), the
fully pruned run scans a small fraction of the table (the paper's "only
a very small portion of the tuples ... are retrieved"), and adding
rules never increases the evaluated-tuple count.
"""

from benchmarks.conftest import bench_scale, emit
from repro.bench.ablation import pruning_ablation
from repro.datagen.synthetic import SyntheticConfig


def test_pruning_ablation(benchmark):
    scale = bench_scale()
    config = SyntheticConfig(
        n_tuples=max(500, int(20_000 * scale)),
        n_rules=max(50, int(2_000 * scale)),
        seed=7,
    )
    k = max(10, int(200 * scale))
    result = benchmark.pedantic(
        lambda: pruning_ablation(config=config, k=k, threshold=0.3),
        rounds=1,
        iterations=1,
    )
    emit(result, "pruning_ablation.txt")
    rows = {row["rules_enabled"]: row for row in result.as_dicts()}

    # soundness: identical answers whatever the pruning configuration
    assert len({row["answer_size"] for row in result.as_dicts()}) == 1

    # retrieval-stopping rules shrink the scan dramatically
    assert rows["all (+tail)"]["scan_depth"] < rows["none"]["scan_depth"] / 3

    # T3/T4 shrink evaluations even before any stop rule fires
    assert rows["T3+T4"]["evaluated"] <= rows["none"]["evaluated"]

    # enabling more rules never increases evaluations
    order = ["none", "T3 only", "T3+T4", "T3+T4+T5", "all (+tail)"]
    evaluated = [rows[label]["evaluated"] for label in order]
    assert all(a >= b for a, b in zip(evaluated, evaluated[1:]))
