"""E12 — Chernoff-prefilter effectiveness across k and thresholds.

How many tuples the mean-only bounds decide without running the DP, and
the hard guarantee that the filtered answer equals the exact one.
"""

import pytest

from benchmarks.conftest import bench_scale, emit
from repro.bench.harness import ExperimentTable, measure
from repro.core.approx import ptk_with_prefilter
from repro.core.exact import exact_ptk_query
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table
from repro.query.topk import TopKQuery


@pytest.fixture(scope="module")
def workload():
    scale = bench_scale()
    return generate_synthetic_table(
        SyntheticConfig(
            n_tuples=max(1000, int(20_000 * scale)),
            n_rules=max(100, int(2_000 * scale)),
            seed=7,
        )
    )


def test_prefilter_effectiveness(benchmark, workload):
    scale = bench_scale()

    def run() -> ExperimentTable:
        result = ExperimentTable(
            title="Chernoff prefilter: tuples decided without the DP",
            columns=[
                "k",
                "threshold",
                "decided_fraction",
                "dp_evaluated",
                "runtime_prefilter",
                "runtime_exact_fullscan",
                "answers_match",
            ],
            notes=f"n={len(workload)}, full-scan comparison (no retrieval pruning)",
        )
        for k in (max(5, int(50 * scale)), max(10, int(200 * scale))):
            for threshold in (0.3,):
                query = TopKQuery(k=k)
                (answer, stats), seconds = measure(
                    lambda q=query, t=threshold: ptk_with_prefilter(
                        workload, q, t
                    )
                )
                exact, exact_seconds = measure(
                    lambda q=query, t=threshold: exact_ptk_query(
                        workload, q, t, pruning=False
                    )
                )
                result.add_row(
                    k,
                    threshold,
                    stats.decided_fraction,
                    stats.evaluated,
                    seconds,
                    exact_seconds,
                    answer.answer_set == exact.answer_set,
                )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, "prefilter.txt")
    rows = result.as_dicts()
    assert all(row["answers_match"] for row in rows)
    assert all(row["decided_fraction"] > 0.8 for row in rows)
