"""E5 — Figure 6: approximation quality of the sampling method.

Panels (a)/(b): average relative error of estimated top-k probabilities
vs sample size for two k values, with the Chernoff–Hoeffding bound as
the reference curve.  Panels (c)/(d): precision and recall of the
sampled answer set.

Shape assertions from the paper: the measured error is far below the
theoretical bound, error decreases with sample size, larger k needs more
samples for the same error, and precision/recall are high (the paper
reports > 97% at its sample sizes).
"""

import pytest

from benchmarks.conftest import bench_scale, emit
from repro.bench.quality import convergence_experiment, quality_experiment
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_table


@pytest.fixture(scope="module")
def workload():
    scale = bench_scale()
    config = SyntheticConfig(
        n_tuples=max(500, int(20_000 * scale)),
        n_rules=max(50, int(2_000 * scale)),
        seed=11,
    )
    k_small = max(5, int(200 * scale))
    k_large = max(20, int(1_000 * scale))
    return generate_synthetic_table(config), k_small, k_large


def test_fig6_error_rate_small_k(benchmark, workload):
    table, k_small, _ = workload
    result = benchmark.pedantic(
        lambda: quality_experiment(k=k_small, table=table),
        rounds=1,
        iterations=1,
    )
    emit(result, "fig6_error_small_k.txt")
    errors = result.column("error_rate")
    bounds = result.column("ch_bound")
    # measured error is well under the Chernoff-Hoeffding bound
    assert all(e < b for e, b in zip(errors, bounds))
    # error shrinks as the sample grows (allow small monte-carlo noise)
    assert errors[-1] < errors[0] + 0.01


def test_fig6_error_rate_large_k(benchmark, workload):
    table, k_small, k_large = workload
    result = benchmark.pedantic(
        lambda: quality_experiment(k=k_large, table=table),
        rounds=1,
        iterations=1,
    )
    emit(result, "fig6_error_large_k.txt")
    small = quality_experiment(k=k_small, table=table)
    # at the same (small) sample size, larger k has larger error
    assert (
        result.column("error_rate")[0] >= small.column("error_rate")[0] - 0.02
    )


def test_fig6_precision_recall(benchmark, workload):
    table, k_small, _ = workload
    result = benchmark.pedantic(
        lambda: quality_experiment(k=k_small, table=table),
        rounds=1,
        iterations=1,
    )
    # at the largest sample size both precision and recall are high
    assert result.column("precision")[-1] > 0.93
    assert result.column("recall")[-1] > 0.93


def test_fig6_progressive_convergence(benchmark, workload):
    table, k_small, _ = workload
    result = benchmark.pedantic(
        lambda: convergence_experiment(k=k_small, seed=11, table=table),
        rounds=1,
        iterations=1,
    )
    emit(result, "fig6_progressive.txt")
    drawn = result.column("units_drawn")
    # a tighter phi can only need more (or equal) samples
    assert drawn == sorted(drawn)
