"""Tests for prefix-sharing reordering and the Equation-5 cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.ablation import example5_costs, unit_orders
from repro.core.reordering import (
    AggressiveReordering,
    CanonicalOrder,
    FreshDP,
    LazyReordering,
    PrefixSharedDP,
    reordering_cost,
    strategy_by_name,
)
from repro.core.rule_compression import rule_index_of_table
from repro.core.subset_probability import subset_probabilities
from repro.datagen.sensors import example5_table
from repro.query.topk import TopKQuery
from tests.conftest import uncertain_tables


def order_names(order):
    """Readable form: sorted member names per unit."""
    return [",".join(sorted(str(m) for m in u.members)) for u in order]


class TestPaperExample5:
    """Figure 2 of the paper, reproduced unit-for-unit."""

    def orders(self, strategy):
        return unit_orders(example5_table(), TopKQuery(k=3), strategy)

    def test_aggressive_orders_match_figure2(self):
        orders = self.orders(AggressiveReordering())
        expected = [
            [],
            [],
            ["t1,t2"],
            ["t3", "t1,t2"],
            ["t3", "t1,t2"],
            ["t3", "t4,t5", "t1,t2"],
            ["t3", "t6", "t4,t5", "t1,t2"],
            ["t3", "t6", "t7", "t4,t5"],
            ["t3", "t6", "t7", "t1,t2,t8", "t4,t5"],
            ["t3", "t6", "t7", "t9", "t1,t2,t8"],
            ["t3", "t6", "t7", "t9", "t10,t4,t5"],
        ]
        assert [order_names(o) for o in orders] == expected

    def test_lazy_orders_match_figure2(self):
        orders = self.orders(LazyReordering())
        expected = [
            [],
            [],
            ["t1,t2"],
            ["t1,t2", "t3"],
            ["t1,t2", "t3"],
            ["t1,t2", "t3", "t4,t5"],
            ["t1,t2", "t3", "t4,t5", "t6"],
            ["t3", "t6", "t7", "t4,t5"],
            ["t3", "t6", "t7", "t4,t5", "t1,t2,t8"],
            ["t3", "t6", "t7", "t9", "t1,t2,t8"],
            ["t3", "t6", "t7", "t9", "t10,t4,t5"],
        ]
        assert [order_names(o) for o in orders] == expected

    def test_equation5_costs_match_paper(self):
        costs = example5_costs()
        assert costs["aggressive"] == 15
        assert costs["lazy"] == 12


class TestStrategies:
    def test_strategy_by_name(self):
        assert isinstance(strategy_by_name("lazy"), LazyReordering)
        assert isinstance(strategy_by_name("aggressive"), AggressiveReordering)
        assert isinstance(strategy_by_name("canonical"), CanonicalOrder)

    def test_strategy_by_name_rejects_unknown(self):
        with pytest.raises(ValueError):
            strategy_by_name("eager")

    @given(uncertain_tables(max_tuples=10))
    @settings(max_examples=30, deadline=None)
    def test_strategies_are_permutations_of_each_other(self, table):
        query = TopKQuery(k=3)
        lazy = unit_orders(table, query, LazyReordering())
        aggressive = unit_orders(table, query, AggressiveReordering())
        for lazy_order, aggressive_order in zip(lazy, aggressive):
            assert {u.members for u in lazy_order} == {
                u.members for u in aggressive_order
            }

    @given(uncertain_tables(max_tuples=10))
    @settings(max_examples=30, deadline=None)
    def test_lazy_never_costs_more_than_aggressive(self, table):
        # the paper's claim: the lazy method is always at least as good
        query = TopKQuery(k=3)
        lazy = reordering_cost(unit_orders(table, query, LazyReordering()))
        aggressive = reordering_cost(
            unit_orders(table, query, AggressiveReordering())
        )
        assert lazy <= aggressive


class TestReorderingCost:
    def test_empty(self):
        assert reordering_cost([]) == 0

    def test_single_order_counts_fully(self):
        table = example5_table()
        orders = unit_orders(table, TopKQuery(k=3), LazyReordering())
        assert reordering_cost([orders[-1]]) == len(orders[-1])

    def test_identical_consecutive_orders_are_free(self):
        table = example5_table()
        orders = unit_orders(table, TopKQuery(k=3), LazyReordering())
        last = orders[-1]
        assert reordering_cost([last, last, last]) == len(last)


class TestPrefixSharedDP:
    def test_matches_direct_dp(self):
        table = example5_table()
        query = TopKQuery(k=3)
        orders = unit_orders(table, query, LazyReordering())
        dp = PrefixSharedDP(cap=4)
        for order in orders:
            got = dp.vector_for(order)
            expected = subset_probabilities([u.probability for u in order], 4)
            np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_extension_count_equals_equation5_cost(self):
        table = example5_table()
        query = TopKQuery(k=3)
        orders = unit_orders(table, query, LazyReordering())
        dp = PrefixSharedDP(cap=4)
        for order in orders:
            dp.vector_for(order)
        assert dp.extensions == reordering_cost(orders) == 12

    def test_cache_truncation_on_divergence(self):
        table = example5_table()
        query = TopKQuery(k=3)
        orders = unit_orders(table, query, LazyReordering())
        dp = PrefixSharedDP(cap=4)
        dp.vector_for(orders[-1])
        assert dp.depth == len(orders[-1])
        dp.vector_for(orders[2])  # unrelated earlier order: cache shrinks
        assert dp.depth == len(orders[2])

    def test_fresh_dp_counts_full_recompute(self):
        table = example5_table()
        query = TopKQuery(k=3)
        orders = unit_orders(table, query, CanonicalOrder())
        dp = FreshDP(cap=4)
        for order in orders:
            dp.vector_for(order)
        assert dp.extensions == sum(len(o) for o in orders)

    @given(uncertain_tables(max_tuples=9), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_shared_and_fresh_agree(self, table, k):
        query = TopKQuery(k=k)
        orders = unit_orders(table, query, LazyReordering())
        shared = PrefixSharedDP(cap=k + 1)
        fresh = FreshDP(cap=k + 1)
        for order in orders:
            np.testing.assert_allclose(
                shared.vector_for(order), fresh.vector_for(order), atol=1e-12
            )
