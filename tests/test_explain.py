"""Tests for explanations and sensitivity analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_topk_probabilities
from repro.core.explain import (
    deconvolve_unit,
    explain_tuple,
    format_explanation,
)
from repro.core.subset_probability import subset_probabilities
from repro.datagen.sensors import panda_table
from repro.exceptions import UnknownTupleError
from repro.model.table import UncertainTable
from repro.query.predicates import ScoreAbove
from repro.query.topk import TopKQuery
from tests.conftest import build_table, uncertain_tables

probs = st.lists(st.floats(0.05, 0.95), min_size=1, max_size=8)


class TestDeconvolution:
    @given(probs, st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_inverts_extension(self, probabilities, cap):
        full = subset_probabilities(probabilities, cap)
        without_last = subset_probabilities(probabilities[:-1], cap)
        recovered = deconvolve_unit(np.asarray(full), probabilities[-1])
        np.testing.assert_allclose(recovered, without_last, atol=1e-9)

    @given(probs)
    @settings(max_examples=30, deadline=None)
    def test_removal_order_irrelevant(self, probabilities):
        if len(probabilities) < 2:
            return
        cap = 4
        full = np.asarray(subset_probabilities(probabilities, cap))
        a_then_b = deconvolve_unit(
            deconvolve_unit(full, probabilities[0]), probabilities[1]
        )
        b_then_a = deconvolve_unit(
            deconvolve_unit(full, probabilities[1]), probabilities[0]
        )
        np.testing.assert_allclose(a_then_b, b_then_a, atol=1e-8)

    def test_certain_unit_shifts(self):
        full = np.asarray(subset_probabilities([1.0, 0.5], cap=3))
        recovered = deconvolve_unit(full, 1.0)
        expected = subset_probabilities([0.5], cap=3)
        np.testing.assert_allclose(recovered[:2], expected[:2], atol=1e-12)


class TestExplanationValues:
    def test_topk_probability_matches_exact(self):
        table = panda_table()
        query = TopKQuery(k=2)
        truth = exact_topk_probabilities(table, query)
        for tup in table:
            explanation = explain_tuple(table, query, tup.tid)
            assert explanation.topk_probability == pytest.approx(
                truth[tup.tid], abs=1e-9
            )

    def test_position_distribution_sums_to_topk(self):
        table = panda_table()
        query = TopKQuery(k=2)
        explanation = explain_tuple(table, query, "R5")
        assert sum(explanation.position_distribution) == pytest.approx(
            explanation.topk_probability, abs=1e-9
        )

    def test_rule_mates_listed(self):
        table = panda_table()
        explanation = explain_tuple(table, TopKQuery(k=2), "R3")
        assert explanation.excluded_rule_mates == ("R2",)

    def test_unknown_tuple_raises(self):
        with pytest.raises(UnknownTupleError):
            explain_tuple(panda_table(), TopKQuery(k=2), "R99")

    def test_predicate_failure_raises(self):
        query = TopKQuery(k=2, predicate=ScoreAbove(100))
        with pytest.raises(UnknownTupleError):
            explain_tuple(panda_table(), query, "R1")


class TestInfluence:
    def test_influence_matches_brute_force_removal(self):
        # removing the strongest suppressor and re-running exactly
        # reproduces the predicted gain
        table = build_table([0.8, 0.7, 0.6, 0.5], rule_groups=[])
        query = TopKQuery(k=2)
        explanation = explain_tuple(table, query, "t3")
        truth_before = exact_topk_probabilities(table, query)["t3"]
        for ui in explanation.influences:
            (removed,) = ui.unit.members
            reduced = table.filter(lambda t, r=removed: t.tid != r)
            truth_after = exact_topk_probabilities(reduced, query)["t3"]
            assert truth_after - truth_before == pytest.approx(
                ui.influence, abs=1e-9
            )

    @given(uncertain_tables(max_tuples=8), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_influences_nonnegative_and_bounded(self, table, k):
        query = TopKQuery(k=k)
        ranked = query.ranking.rank_table(table)
        if not ranked:
            return
        target = ranked[-1]
        explanation = explain_tuple(table, query, target.tid)
        for ui in explanation.influences:
            assert ui.influence >= 0.0
            # removing a unit cannot push Pr^k above Pr(t)
            assert (
                explanation.topk_probability + ui.influence
                <= explanation.membership_probability + 1e-9
            )

    def test_influence_of_rule_unit_matches_removal(self):
        # removing a whole rule (both members) reproduces the rule-tuple
        # unit's predicted influence
        table = build_table(
            [0.5, 0.45, 0.9, 0.6], rule_groups=[[0, 1]]
        )
        query = TopKQuery(k=1)
        explanation = explain_tuple(table, query, "t3")
        rule_influence = next(
            ui
            for ui in explanation.influences
            if ui.unit.members == frozenset({"t0", "t1"})
        )
        reduced = table.filter(lambda t: t.tid not in ("t0", "t1"))
        before = exact_topk_probabilities(table, query)["t3"]
        after = exact_topk_probabilities(reduced, query)["t3"]
        assert after - before == pytest.approx(
            rule_influence.influence, abs=1e-9
        )


class TestFormatting:
    def test_format_contains_key_facts(self):
        table = panda_table()
        explanation = explain_tuple(table, TopKQuery(k=2), "R4")
        text = format_explanation(explanation)
        assert "Pr^2(R4)" in text
        assert "suppressors" in text

    def test_mode_rank(self):
        table = build_table([0.9, 0.5], rule_groups=[])
        explanation = explain_tuple(table, TopKQuery(k=2), "t1")
        # t0 very likely present, so t1 most likely lands at rank 2
        assert explanation.rank_if_present_mode == 2
