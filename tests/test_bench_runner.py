"""Tests for the run-everything experiment runner (tiny scale)."""

from pathlib import Path

from repro.bench.runner import main, run_all, write_report


class TestRunAll:
    def test_tiny_scale_produces_all_tables(self):
        tables = run_all(scale=0.02)
        # E1 (2) + E2 (2) + E3/E4 (8) + E5 (2) + E6 (2) + E7 (2) + E8 (1)
        assert len(tables) == 19
        titles = [t.title for t in tables]
        assert any("Table 2" in t for t in titles)
        assert any("Figure 4" in t for t in titles)
        assert any("Figure 5" in t for t in titles)
        assert any("Figure 6" in t for t in titles)
        assert any("Figure 7" in t for t in titles)
        assert any("Pruning ablation" in t for t in titles)
        assert any("Example 5" in t for t in titles)

    def test_report_written(self, tmp_path):
        tables = run_all(scale=0.02)
        out = tmp_path / "report.md"
        write_report(tables, out, scale=0.02, elapsed=1.0)
        text = out.read_text()
        assert "# Experiment report" in text
        assert text.count("```") == 2 * len(tables)

    def test_cli_entry(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["--scale", "0.02", "--out", str(out)]) == 0
        assert out.exists()
        assert "19 experiment tables" in capsys.readouterr().out
